"""Per-run trace trees, scoped through :mod:`contextvars`.

A trace is a tree of :class:`Span` objects rooted at one request:
``discover`` → ``prepare`` → per-round ``round`` marks → ``query``
evaluations and cache/store/lock operations.  The tree serializes into
the run's JSON record (:meth:`Span.to_record`), so every persisted run
carries its own timeline.

Usage is two-layered:

* The *owner* of a request opens the root with
  ``with tracer.trace("discover", run_id=...) as root:`` — the root is
  installed in a :mod:`contextvars` context variable for the duration.
* Any code on that call path (query engine, store, locks) marks work
  with the module-level ``with span("query", index=3):`` — it attaches
  to whatever root is active, or does nothing at all when none is.

The "nothing at all" path is the design center: ``span()`` returns one
shared null context manager when no trace is active, so instrumented
code costs a single ContextVar read when tracing is off.  Spans cap
their children at :data:`MAX_CHILDREN` (the drop count is recorded), so
a pathological run cannot balloon its own record.
"""

from __future__ import annotations

import time
from contextvars import ContextVar, Token
from typing import Any, Dict, List, Optional

#: Children per span before further ones are dropped (and counted).
MAX_CHILDREN = 256

_ACTIVE: ContextVar[Optional["Span"]] = ContextVar(
    "repro_active_span", default=None
)


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "start", "end", "dropped")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.dropped = 0

    @property
    def duration(self) -> float:
        """Seconds spent in the span (up to now if still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - (
            self.start
        )

    def child(self, name: str, attrs: Optional[dict] = None) -> Optional[Span]:
        """Attach a child span, or ``None`` when the cap is reached."""
        if len(self.children) >= MAX_CHILDREN:
            self.dropped += 1
            return None
        node = Span(name, attrs)
        self.children.append(node)
        return node

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    def to_record(self, _origin: Optional[float] = None) -> dict:
        """JSON-safe tree: millisecond offsets from the root's start."""
        origin = self.start if _origin is None else _origin
        end = self.end if self.end is not None else time.perf_counter()
        record = {
            "name": self.name,
            "start_ms": round((self.start - origin) * 1000.0, 3),
            "duration_ms": round((end - self.start) * 1000.0, 3),
        }
        if self.attrs:
            record["attrs"] = {key: _safe(value) for key, value in self.attrs.items()}
        if self.children:
            record["children"] = [c.to_record(origin) for c in self.children]
        if self.dropped:
            record["dropped_children"] = self.dropped
        return record


def _safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NullSpanCtx:
    """The shared do-nothing span (no active trace, or children full)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL = _NullSpanCtx()


class _SpanCtx:
    """Context manager for one child span on the active trace."""

    __slots__ = ("_name", "_attrs", "_span", "_token")

    def __init__(self, name: str, attrs: dict, parent: Span) -> None:
        self._name = name
        self._attrs = attrs
        self._span = parent.child(name, attrs)
        self._token: Optional[Token] = None

    def __enter__(self):
        if self._span is not None:
            self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if self._span is not None and self._token is not None:
            if exc_type is not None:
                self._span.annotate(error=exc_type.__name__)
            self._span.finish()
            _ACTIVE.reset(self._token)
        return False


def span(name: str, **attrs):
    """Mark a timed operation on the active trace (no-op when none)."""
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL
    ctx = _SpanCtx(name, attrs, parent)
    if ctx._span is None:  # parent's children are full; drop counted
        return _NULL
    return ctx


def mark(name: str, **attrs) -> None:
    """Record an instantaneous (zero-duration) event on the active trace."""
    parent = _ACTIVE.get()
    if parent is None:
        return
    node = parent.child(name, attrs)
    if node is not None:
        node.finish()


def active_span() -> Optional[Span]:
    """The innermost open span, or ``None`` when no trace is active."""
    return _ACTIVE.get()


class _RootCtx:
    __slots__ = ("_root", "_token")

    def __init__(self, root: Optional[Span]) -> None:
        self._root = root
        self._token: Optional[Token] = None

    def __enter__(self):
        if self._root is not None:
            self._token = _ACTIVE.set(self._root)
        return self._root

    def __exit__(self, exc_type, exc, tb):
        if self._root is not None and self._token is not None:
            if exc_type is not None:
                self._root.annotate(error=exc_type.__name__)
            self._root.finish()
            _ACTIVE.reset(self._token)
        return False


class Tracer:
    """Factory for trace roots; ``Tracer(enabled=False)`` yields ``None``
    roots and every downstream ``span()`` stays on the null path."""

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)

    def trace(self, name: str, **attrs):
        """Open a trace root: ``with tracer.trace("discover") as root:``.

        Yields the root :class:`Span` (or ``None`` when disabled); the
        caller keeps the reference and serializes ``root.to_record()``
        after the block exits.
        """
        return _RootCtx(Span(name, attrs) if self.enabled else None)
