"""A zero-dependency, thread-safe metrics registry.

Three instrument kinds, modeled on the Prometheus data model:

:class:`Counter`
    A monotone float (``inc``); negative increments are rejected.
:class:`Gauge`
    A float that goes both ways (``set``/``inc``/``dec``).
:class:`Histogram`
    Fixed upper-bound buckets, plus ``sum`` and ``count``; quantiles are
    estimated from the bucket counts (``quantile(0.99)`` returns the
    upper bound of the bucket holding the requested rank — the standard
    fixed-bucket estimate, exact enough for dashboards and stats()).

Instruments are created through a :class:`MetricsRegistry` as *families*
with a fixed label-name tuple; ``family.labels(x="a")`` returns (and
memoizes) the child instrument for that label set.  Label-less families
proxy ``inc``/``set``/``observe`` straight to their single child.

Cardinality guardrail: each family holds at most
``registry.max_series_per_metric`` distinct label sets.  Beyond that,
new label sets collapse into one shared overflow series (every label
value ``"_other_"``) and the family's ``overflowed`` count rises — an
unbounded label (say, a table name) degrades gracefully instead of
growing the registry without limit.

Everything is safe under concurrent writers: each child guards its own
state with a lock, and :meth:`MetricsRegistry.snapshot` reads a
consistent copy of every series.  :data:`NULL_REGISTRY` is a shared
no-op registry for callers that want instrumentation compiled out
(``DiscoveryEngine(metrics=False)`` uses it).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, List, Optional, Tuple


class MetricsError(ValueError):
    """Invalid metric/label name, kind mismatch, or bad value."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-oriented, Prometheus-style).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Label value every overflowed series collapses into.
OVERFLOW_LABEL = "_other_"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution of observed values."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise MetricsError(f"duplicate histogram bucket bounds: {buckets}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise MetricsError("bucket bounds must be finite (+Inf is implicit)")
        self._lock = threading.Lock()
        self._bounds = bounds
        # One slot per finite bound plus the implicit +Inf overflow slot;
        # counts are per-bucket (non-cumulative) internally.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self):
        """``with histogram.time():`` observes the block's wall time."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def state(self):
        """Consistent ``(bounds, per-bucket counts, sum, count)`` copy."""
        with self._lock:
            return self._bounds, list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Bucket-based quantile estimate (0.0 when nothing observed).

        Returns the upper bound of the bucket containing the requested
        rank; observations beyond the last finite bound report that
        bound (the estimate saturates, it never invents +Inf).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        bounds, counts, _total, count = self.state()
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for i, bound in enumerate(bounds):
            cumulative += counts[i]
            if cumulative >= rank:
                return bound
        return bounds[-1]


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self):
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        import time

        self._histogram.observe(time.perf_counter() - self._start)
        return False


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label-name tuple and N children."""

    def __init__(self, registry, name, kind, help_text, label_names, buckets):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self._buckets = buckets
        self._lock = threading.Lock()
        # label-value tuple -> instrument
        self._children: Dict[Tuple[str, ...], Any] = {}
        self.overflowed = 0  # label sets collapsed into the overflow series
        if not self.label_names:
            # Label-less families always expose their single series, so
            # exposition covers every registered metric even before the
            # first write.
            self.labels()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **labels):
        """The child instrument for one label set (created on demand)."""
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if (
                    self.label_names
                    and len(self._children) >= self.registry.max_series_per_metric
                ):
                    # Cardinality guardrail: collapse into one shared
                    # overflow series instead of growing without bound.
                    self.overflowed += 1
                    overflow = (OVERFLOW_LABEL,) * len(self.label_names)
                    child = self._children.get(overflow)
                    if child is None:
                        child = self._children[overflow] = self._make()
                    return child
                child = self._children[key] = self._make()
            return child

    # Label-less convenience: the family is its own single instrument.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def time(self):
        return self.labels().time()

    @property
    def value(self) -> float:
        return self.labels().value

    def quantile(self, q: float) -> float:
        return self.labels().quantile(q)

    def state(self):
        return self.labels().state()

    def series(self):
        """``[(label-value tuple, instrument)]`` snapshot, sorted."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (and raises
    :class:`MetricsError` if the kind or labels differ — one name, one
    meaning).  ``max_series_per_metric`` caps per-family label
    cardinality (see module docstring).
    """

    def __init__(self, max_series_per_metric: int = 256):
        if max_series_per_metric < 1:
            raise MetricsError(
                f"max_series_per_metric must be >= 1, got {max_series_per_metric}"
            )
        self.max_series_per_metric = int(max_series_per_metric)
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(self, name, kind, help_text, labels, buckets=None):
        if not _NAME_RE.match(name or ""):
            raise MetricsError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label or ""):
                raise MetricsError(f"invalid label name {label!r} on {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != labels:
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {list(family.label_names)}"
                    )
                return family
            family = MetricFamily(self, name, kind, help_text, labels, buckets)
            self._families[name] = family
            return family

    def counter(self, name, help="", labels=()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name, help="", labels=()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self, name, help="", labels=(), buckets=DEFAULT_BUCKETS
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def names(self) -> list:
        with self._lock:
            return sorted(self._families)

    def value(self, name, **labels) -> float:
        """Current value of one counter/gauge series (0.0 when the
        family or series does not exist — absent means never touched)."""
        family = self.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels.get(n, "")) for n in family.label_names)
        for values, instrument in family.series():
            if values == key:
                return instrument.value
        return 0.0

    def snapshot(self) -> dict:
        """JSON-safe view of every family and series.

        Histogram series carry cumulative bucket counts plus ``p50``,
        ``p95``, and ``p99`` bucket-estimates, so consumers (and
        ``engine.stats()``) never re-derive quantiles.
        """
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, Any] = {}
        for family in sorted(families, key=lambda f: f.name):
            series: List[Dict[str, Any]] = []
            for values, instrument in family.series():
                labels = dict(zip(family.label_names, values, strict=True))
                if family.kind == "histogram":
                    bounds, counts, total, count = instrument.state()
                    cumulative: Dict[str, int] = {}
                    running = 0
                    for bound, bucket_count in zip(bounds, counts, strict=False):
                        running += bucket_count
                        cumulative[_format_bound(bound)] = running
                    cumulative["+Inf"] = count
                    series.append(
                        {
                            "labels": labels,
                            "count": count,
                            "sum": total,
                            "buckets": cumulative,
                            "p50": instrument.quantile(0.50),
                            "p95": instrument.quantile(0.95),
                            "p99": instrument.quantile(0.99),
                        }
                    )
                else:
                    series.append({"labels": labels, "value": instrument.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "overflowed": family.overflowed,
                "series": series,
            }
        return out

    def to_json(self, indent=None) -> str:
        """The :meth:`snapshot` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every family."""
        lines: List[str] = []
        for name, family in sorted(self.snapshot().items()):
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['type']}")
            for series in family["series"]:
                labels = series["labels"]
                if family["type"] == "histogram":
                    for bound, count in series["buckets"].items():
                        lines.append(
                            f"{name}_bucket"
                            f"{_label_text({**labels, 'le': bound})} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_label_text(labels)} "
                        f"{_format_value(series['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_label_text(labels)} {series['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_text(labels)} "
                        f"{_format_value(series['value'])}"
                    )
        return "\n".join(lines) + "\n"


def _format_bound(bound: float) -> str:
    """Bucket bound as Prometheus writes it (integral bounds bare)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# The no-op registry (instrumentation compiled out)
# ----------------------------------------------------------------------
class _NullInstrument:
    """Accepts every instrument call and records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels):
        return self

    def time(self):
        return _NULL_TIMER

    def quantile(self, q: float) -> float:
        return 0.0

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


class _NullTimerCtx:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_TIMER = _NullTimerCtx()
_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A :class:`MetricsRegistry` look-alike that records nothing.

    Used when instrumentation is explicitly disabled; every accessor
    returns the shared no-op instrument, and the exports are empty.
    """

    max_series_per_metric = 0

    def counter(self, name, help="", labels=()):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def get(self, name):
        return None

    def names(self) -> list:
        return []

    def value(self, name, **labels) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}

    def to_json(self, indent=None) -> str:
        return "{}"

    def to_prometheus(self) -> str:
        return ""


#: Shared no-op registry (``DiscoveryEngine(metrics=False)``).
NULL_REGISTRY = NullRegistry()
