"""Telemetry: metrics registry, per-run trace trees, structured logs.

Zero external dependencies.  The three pillars:

- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labeled
  counters/gauges/histograms with Prometheus-text and JSON exposition.
- :mod:`repro.obs.tracing` — :class:`Tracer`/:class:`Span` trace trees
  scoped through contextvars; ``span()`` is free when no trace is live.
- :mod:`repro.obs.logcfg` — structured logging with ambient run/session
  context and text/JSON formatters.
"""

from repro.obs.logcfg import (
    JsonFormatter,
    StructuredLogger,
    TextFormatter,
    configure_logging,
    context_fields,
    get_logger,
    log_context,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import MAX_CHILDREN, Span, Tracer, active_span, mark, span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MAX_CHILDREN",
    "MetricsError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "StructuredLogger",
    "TextFormatter",
    "Tracer",
    "active_span",
    "configure_logging",
    "context_fields",
    "get_logger",
    "log_context",
    "mark",
    "span",
]
