"""Structured logging for the ``repro`` tree.

Every module logs through :func:`get_logger`, which returns a
:class:`StructuredLogger` — a thin wrapper over :mod:`logging` whose
methods accept keyword fields (``log.info("run finished", run_id=...,
seconds=1.2)``).  Fields merge with the ambient :func:`log_context`
(a :mod:`contextvars` stack the engine populates with run/session ids),
so a debug line deep in the query engine automatically carries the run
that triggered it.

Two formatters:

* ``text`` (default) — ``level: message [k=v ...]`` on stderr, which is
  what the CLI's users and tests expect (``error: ...`` lines keep
  their exact shape).
* ``json`` — one JSON object per line (``ts``/``level``/``logger``/
  ``msg`` plus the merged fields), for machine consumption.

:func:`configure_logging` is idempotent and replaceable: it tags its
handler and swaps any previous one, so repeated CLI invocations in one
process (the test suite calls ``main()`` dozens of times) never stack
duplicate handlers.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from contextvars import ContextVar, Token
from typing import Optional, Tuple

ROOT_LOGGER = "repro"
_HANDLER_TAG = "_repro_structured_handler"

_CONTEXT: ContextVar[Tuple] = ContextVar("repro_log_context", default=())


class log_context:
    """Bind fields to every log line emitted inside the block::

        with log_context(run_id=run_id, session=name):
            ...
    """

    __slots__ = ("_fields", "_token")

    def __init__(self, **fields):
        self._fields = tuple(fields.items())
        self._token: Optional[Token] = None

    def __enter__(self):
        self._token = _CONTEXT.set(_CONTEXT.get() + self._fields)
        return self

    def __exit__(self, *exc_info):
        if self._token is not None:
            _CONTEXT.reset(self._token)
        return False


def context_fields() -> dict:
    """The ambient field dict (later bindings win)."""
    return dict(_CONTEXT.get())


class StructuredLogger:
    """``logging.Logger`` facade taking keyword fields per call."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    def _log(self, level, msg, fields, exc_info=False):
        if not self._logger.isEnabledFor(level):
            return
        merged = dict(_CONTEXT.get())
        merged.update(fields)
        self._logger.log(
            level, msg, extra={"fields": merged}, exc_info=exc_info
        )

    def debug(self, msg, **fields):
        self._log(logging.DEBUG, msg, fields)

    def info(self, msg, **fields):
        self._log(logging.INFO, msg, fields)

    def warning(self, msg, **fields):
        self._log(logging.WARNING, msg, fields)

    def error(self, msg, **fields):
        self._log(logging.ERROR, msg, fields)

    def exception(self, msg, **fields):
        self._log(logging.ERROR, msg, fields, exc_info=True)

    def isEnabledFor(self, level) -> bool:
        return self._logger.isEnabledFor(level)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for a module (``get_logger(__name__)``)."""
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(name))


class JsonFormatter(logging.Formatter):
    """One JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class TextFormatter(logging.Formatter):
    """``level: message [k=v ...]`` — the CLI's human-facing shape."""

    def format(self, record: logging.LogRecord) -> str:
        line = f"{record.levelname.lower()}: {record.getMessage()}"
        fields = getattr(record, "fields", None)
        if fields:
            suffix = " ".join(f"{k}={v}" for k, v in fields.items())
            line = f"{line} [{suffix}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class _CurrentStderr:
    """File-like proxy that resolves ``sys.stderr`` at *write* time.

    The default handler must follow stderr redirections that happen
    after configuration (pytest's capture fixtures swap ``sys.stderr``
    per test; the CLI is re-entered many times per process), so binding
    the stream once at configure time would strand log lines on a dead
    buffer."""

    def write(self, data):
        return sys.stderr.write(data)

    def flush(self):
        stream = sys.stderr
        if hasattr(stream, "flush"):
            stream.flush()


def configure_logging(level="warning", stream=None, fmt="text") -> logging.Logger:
    """(Re)configure the ``repro`` logger tree.

    Installs exactly one tagged handler on the root ``repro`` logger —
    calling again replaces it (new level/stream/format), so the CLI can
    be re-entered freely.  ``fmt`` is ``"text"`` or ``"json"``;
    ``stream`` defaults to whatever ``sys.stderr`` is at emit time.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(
        stream if stream is not None else _CurrentStderr()
    )
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    return logger


def _ensure_default_handler() -> None:
    """Attach the default text handler if nothing configured it yet, so
    library warnings surface even outside the CLI — without clobbering
    an explicit :func:`configure_logging` call."""
    logger = logging.getLogger(ROOT_LOGGER)
    if not logger.handlers:
        configure_logging("warning")


# Stamp a wall-clock helper modules can share for log payloads.
now = time.time
