"""Search result shared by METAM and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchResult:
    """Outcome of a goal-oriented discovery run.

    Attributes
    ----------
    searcher:
        Name of the strategy that produced this result.
    selected:
        Augmentation ids of the final (minimal, if enabled) solution.
    utility:
        Utility of ``Din`` augmented with ``selected``.
    base_utility:
        Utility of the unaugmented input.
    queries:
        Total utility-function queries spent.
    trace:
        ``(query_index, best_utility_so_far)`` pairs — the figure axes.
    extras:
        Searcher-specific diagnostics (profile weights, cluster counts…).
    """

    searcher: str
    selected: list
    utility: float
    base_utility: float
    queries: int
    trace: list = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def gain(self) -> float:
        """Utility improvement over the unaugmented input."""
        return self.utility - self.base_utility

    def utility_at(self, n_queries: int) -> float:
        """Best utility within the first ``n_queries`` queries."""
        best = self.base_utility
        for step, value in self.trace:
            if step > n_queries:
                break
            best = max(best, value)
        return best

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.searcher}: utility {self.base_utility:.3f} → "
            f"{self.utility:.3f} with {len(self.selected)} augmentation(s) "
            f"in {self.queries} queries"
        )
