"""IDENTIFY-GROUP: Thompson sampling over clusters (§IV-B).

Each cluster is a Beta-Bernoulli arm; the reward is whether a group query
containing a member of the cluster improved utility.  Sampling a size-``t``
group draws ``t`` clusters by posterior sample and picks a random
not-yet-used augmentation from each.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clusters
from repro.utils.rng import ensure_rng


class ThompsonGroupSelector:
    """Beta-Bernoulli Thompson sampling over cluster arms."""

    def __init__(self, clusters: Clusters, seed=None, uniform: bool = False):
        self.clusters = clusters
        self.rng = ensure_rng(seed)
        self.uniform = uniform
        n = clusters.n_clusters
        self._alpha = np.ones(n)
        self._beta = np.ones(n)

    def posterior_samples(self) -> np.ndarray:
        """One Thompson draw per cluster (uniform draw in the Eq variant)."""
        if self.uniform:
            return self.rng.uniform(size=self.clusters.n_clusters)
        return self.rng.beta(self._alpha, self._beta)

    def sample_group(self, size: int, available, member_score=None) -> list:
        """A group of up to ``size`` augmentation indices.

        ``available`` is the set of candidate indices still eligible.
        Clusters are ranked by posterior sample; one available member is
        taken per cluster until the group is full — a random one, or the
        best-scoring one when ``member_score`` (index → float) is given
        (explore across clusters, exploit within).
        """
        available = set(available)
        if not available or size < 1:
            return []
        draws = self.posterior_samples()
        order = np.argsort(-draws)
        group = []
        for cluster_id in order:
            members = [
                m for m in self.clusters.members(int(cluster_id)) if m in available
            ]
            if not members:
                continue
            if member_score is None:
                pick = members[int(self.rng.integers(0, len(members)))]
            else:
                pick = max(members, key=member_score)
            group.append(pick)
            available.discard(pick)
            if len(group) >= size:
                break
        return group

    def reward(self, indices, success: bool) -> None:
        """Update the posterior of every cluster involved in a group."""
        involved = {self.clusters.cluster_of(i) for i in indices}
        for cluster_id in involved:
            if success:
                self._alpha[cluster_id] += 1.0
            else:
                self._beta[cluster_id] += 1.0

    def posterior_mean(self, cluster_id: int) -> float:
        """Current success-probability estimate of a cluster arm."""
        a = self._alpha[cluster_id]
        b = self._beta[cluster_id]
        return float(a / (a + b))
