"""CLUSTER-PARTITION (Algorithm 2): ε-cover via greedy k-center.

Distance between augmentations is the Chebyshev (max-coordinate) distance
over profile vectors, per the paper's d(P1,P2) = max_i d(r1_i, r2_i).
Centers are added greedily (Gonzalez) until every augmentation lies within
ε of its center.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def chebyshev(a: np.ndarray, b: np.ndarray) -> float:
    """Max-coordinate distance between two profile vectors."""
    return float(np.max(np.abs(np.asarray(a, float) - np.asarray(b, float))))


class Clusters:
    """Result of CLUSTER-PARTITION over ``n`` augmentations.

    Attributes
    ----------
    assignment:
        ``assignment[i]`` is the cluster id of augmentation ``i``.
    centers:
        ``centers[c]`` is the index of cluster ``c``'s representative.
    """

    def __init__(self, vectors: np.ndarray, centers, assignment):
        self.vectors = vectors
        self.centers = list(centers)
        self.assignment = np.asarray(assignment, dtype=int)
        self._members = {}
        for i, c in enumerate(self.assignment):
            self._members.setdefault(int(c), []).append(i)

    @property
    def n_clusters(self) -> int:
        return len(self.centers)

    def members(self, cluster_id: int) -> list:
        """Indices of augmentations in a cluster."""
        return list(self._members.get(cluster_id, []))

    def cluster_of(self, index: int) -> int:
        return int(self.assignment[index])

    def distance(self, i: int, j: int) -> float:
        """Chebyshev distance between augmentations ``i`` and ``j``."""
        return chebyshev(self.vectors[i], self.vectors[j])

    def radius(self, cluster_id: int) -> float:
        """Max distance from a member to the cluster's center."""
        center = self.centers[cluster_id]
        return max(
            (self.distance(center, m) for m in self.members(cluster_id)),
            default=0.0,
        )

    def dissolve(self, cluster_id: int) -> "Clusters":
        """Split a cluster into singletons (the P2-violation fallback)."""
        new_centers = list(self.centers)
        assignment = self.assignment.copy()
        members = self.members(cluster_id)
        center_index = self.centers[cluster_id]
        for m in members:
            if m == center_index:
                continue
            assignment[m] = len(new_centers)
            new_centers.append(m)
        return Clusters(self.vectors, new_centers, assignment)


def cluster_partition(vectors: np.ndarray, epsilon: float, seed=None) -> Clusters:
    """Greedy k-center ε-cover of profile vectors (Algorithm 2)."""
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2 or len(vectors) == 0:
        raise ValueError(f"vectors must be a non-empty 2-D array, got {vectors.shape}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    rng = ensure_rng(seed)
    n = len(vectors)

    centers = [int(rng.integers(0, n))]
    # dist_to_center[i] = Chebyshev distance from i to its nearest center.
    dist = np.max(np.abs(vectors - vectors[centers[0]]), axis=1)
    assignment = np.zeros(n, dtype=int)

    while True:
        farthest = int(np.argmax(dist))
        if dist[farthest] <= epsilon:
            break
        centers.append(farthest)
        new_dist = np.max(np.abs(vectors - vectors[farthest]), axis=1)
        closer = new_dist < dist
        assignment[closer] = len(centers) - 1
        dist = np.where(closer, new_dist, dist)
    return Clusters(vectors, centers, assignment)


def singleton_clusters(vectors: np.ndarray) -> Clusters:
    """Every augmentation its own cluster — the *Nc* variant."""
    vectors = np.asarray(vectors, dtype=float)
    n = len(vectors)
    return Clusters(vectors, list(range(n)), np.arange(n))
