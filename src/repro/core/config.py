"""Configuration for the METAM search (paper defaults)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_choices


@dataclass
class MetamConfig:
    """Knobs of Algorithm 1.

    Attributes
    ----------
    theta:
        Target utility θ.  The search stops as soon as the (monotone)
        solution reaches it.  1.0 makes the search anytime (§IV: run until
        the space is explored or the budget ends).
    epsilon:
        Cluster radius ε of CLUSTER-PARTITION (paper default 0.05).
    tau:
        Queries per sequential round before committing the best candidate.
        ``None`` = number of clusters (paper default τ = |C|).
    query_budget:
        Hard cap on utility-function queries (CHECK-STOP-CRITERION).
    max_group_size:
        Upper bound on the combinatorial group size ``t``.
    groups_per_size:
        Group queries issued at size ``t`` before ``t`` is incremented
        (``None`` = number of clusters).
    group_interval:
        One group query is interleaved every ``group_interval`` sequential
        queries (1 = the strict 1:1 alternation of Algorithm 1; the
        default 2 spends less of a small budget on exploration).
    use_clustering:
        False reproduces the *Nc* variant (every augmentation its own
        cluster).
    use_thompson:
        False reproduces the *Eq* variant (uniform cluster sampling).
    homogeneity:
        ``"lazy"`` validates property P2 from utilities the search already
        paid for; ``"active"`` spends log|C| queries per cluster up front
        (the paper's procedure); ``"off"`` trusts the clusters.
    run_minimality:
        Whether to post-process the solution with IDENTIFY-MINIMAL.
    seed:
        Seed for all stochastic choices (cluster init, Thompson sampling).
    """

    theta: float = 1.0
    epsilon: float = 0.05
    tau: int = None
    query_budget: int = 1000
    max_group_size: int = 5
    groups_per_size: int = None
    group_interval: int = 2
    use_clustering: bool = True
    use_thompson: bool = True
    homogeneity: str = "lazy"
    run_minimality: bool = True
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")
        if self.tau is not None and self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")
        if self.query_budget < 1:
            raise ValueError(f"query_budget must be >= 1, got {self.query_budget}")
        if self.group_interval < 1:
            raise ValueError(
                f"group_interval must be >= 1, got {self.group_interval}"
            )
        check_in_choices(self.homogeneity, "homogeneity", {"lazy", "active", "off"})
