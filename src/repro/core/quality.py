"""Quality-score estimation (§IV-B) with online profile-importance weights.

The quality score of an augmentation is the sum of:

* a **profile-based score** — the weighted average of its profile values,
  where weights are the estimated importance of each profile for
  predicting utility gains (a ridge regression refit as queries arrive —
  the closed-form estimator Lemma 4 analyzes); and
* a **utility-based score** — its observed gain if queried, otherwise the
  best clustermate's gain attenuated by ``1 − d(P, P')``.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clusters
from repro.ml.linear import RidgeRegression


class QualityScorer:
    """Maintains quality scores over a fixed candidate set."""

    def __init__(
        self,
        profile_matrix: np.ndarray,
        clusters: Clusters,
        ridge_alpha: float = 1.0,
        min_fit_samples: int = 4,
    ):
        self.profiles = np.asarray(profile_matrix, dtype=float)
        if self.profiles.ndim != 2:
            raise ValueError(
                f"profile_matrix must be 2-D, got shape {self.profiles.shape}"
            )
        self.clusters = clusters
        self.ridge_alpha = ridge_alpha
        self.min_fit_samples = min_fit_samples
        n_profiles = self.profiles.shape[1]
        # Equal weights before any evidence (§IV-B).
        self.weights = np.full(n_profiles, 1.0 / max(1, n_profiles))
        self.observed_gains = {}
        self._propagation_disabled = set()  # cluster ids with P2 violated

    # ------------------------------------------------------------------
    def profile_score(self, index: int) -> float:
        """Weighted average of profile values (the prior)."""
        return float(self.profiles[index] @ self.weights)

    def utility_score(self, index: int) -> float:
        """Observed gain, or attenuated gain propagated within the cluster."""
        if index in self.observed_gains:
            return self.observed_gains[index]
        cluster_id = self.clusters.cluster_of(index)
        if cluster_id in self._propagation_disabled:
            return 0.0
        best = 0.0
        for member in self.clusters.members(cluster_id):
            if member in self.observed_gains:
                attenuation = 1.0 - self.clusters.distance(index, member)
                best = max(best, attenuation * self.observed_gains[member])
        return best

    def quality(self, index: int) -> float:
        """JPSCORE: profile-based + utility-based score."""
        return self.profile_score(index) + self.utility_score(index)

    # ------------------------------------------------------------------
    def update(self, index: int, gain: float) -> None:
        """UPDATE-QUALITY-SCORES: record a query outcome, refit weights."""
        self.observed_gains[index] = float(gain)
        self._refit_weights()

    def disable_propagation(self, cluster_id: int) -> None:
        """Stop propagating utility within a non-homogeneous cluster."""
        self._propagation_disabled.add(cluster_id)

    def _refit_weights(self) -> None:
        """Profile importance = ridge coefficients of gain ~ profiles.

        Negative coefficients are floored at zero: a profile anti-correlated
        with gains is simply uninformative for ranking (its low values do
        not make an augmentation *better*).
        """
        if len(self.observed_gains) < self.min_fit_samples:
            return
        indices = list(self.observed_gains)
        x = self.profiles[indices]
        y = np.array([self.observed_gains[i] for i in indices])
        if float(np.var(y)) < 1e-12:
            return
        model = RidgeRegression(alpha=self.ridge_alpha).fit(x, y)
        raw = np.maximum(model.coef_, 0.0)
        total = raw.sum()
        if total <= 0:
            # No profile explains the gains; keep the uniform prior.
            n = len(self.weights)
            self.weights = np.full(n, 1.0 / n)
        else:
            self.weights = raw / total

    # ------------------------------------------------------------------
    def best_unqueried(self, excluded_indices=(), excluded_clusters=()) -> int:
        """Arg-max quality among candidates not excluded; None if empty.

        ``excluded_indices`` are augmentations already in the solution (or
        otherwise off-limits); ``excluded_clusters`` implements the
        one-query-per-cluster-per-round diversification.
        """
        excluded_indices = set(excluded_indices)
        excluded_clusters = set(excluded_clusters)
        best_index = None
        best_quality = -np.inf
        for i in range(len(self.profiles)):
            if i in excluded_indices:
                continue
            if self.clusters.cluster_of(i) in excluded_clusters:
                continue
            q = self.quality(i)
            if q > best_quality:
                best_quality = q
                best_index = i
        return best_index
