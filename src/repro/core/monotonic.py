"""MONOTONICITY CERTIFICATION (P3): accept only utility-improving adds.

Both METAM and the greedy baselines grow their solution through this
state object: an augmentation that does not improve utility on top of the
current solution is rejected (its query still counts), which makes any
task's effective utility monotone — the wrapper the paper describes.
"""

from __future__ import annotations

from repro.core.querying import QueryEngine


class MonotoneState:
    """The current accepted solution and its certified utility."""

    def __init__(self, engine: QueryEngine):
        self.engine = engine
        self.selected = []
        self.utility = engine.base_utility()
        self.rejections = 0

    @property
    def selected_set(self) -> frozenset:
        return frozenset(self.selected)

    def utility_with(self, aug_id: str) -> float:
        """Query utility of the current solution plus one augmentation."""
        return self.engine.utility(self.selected_set | {aug_id})

    def try_add(self, aug_id: str):
        """Accept ``aug_id`` iff it strictly improves utility.

        Returns ``(accepted, utility_with_aug)``.
        """
        if aug_id in self.selected_set:
            return False, self.utility
        value = self.utility_with(aug_id)
        if value > self.utility:
            self.selected.append(aug_id)
            self.utility = value
            self._notify(aug_id, value)
            return True, value
        self.rejections += 1
        return False, value

    def accept(self, aug_id: str, utility: float) -> None:
        """Record an externally-verified improving augmentation."""
        if utility <= self.utility:
            raise ValueError(
                f"accept() requires an improving utility "
                f"({utility} <= {self.utility})"
            )
        self.selected.append(aug_id)
        self.utility = utility
        self._notify(aug_id, utility)

    def _notify(self, aug_id: str, utility: float) -> None:
        """Surface the acceptance to the query engine's observer hook."""
        if self.engine.on_accept is not None:
            self.engine.on_accept(aug_id, utility, len(self.selected))
