"""Cluster-homogeneity validation (the P2 fallback, §IV-B).

A cluster is *homogeneous* when most members' utility gains sit within a
(1+ε)-factor band of the cluster's mean gain.  Two modes:

* **lazy** — judge from the gains the search has already paid for (at
  least two observed members required); no extra queries.
* **active** — the paper's procedure: query ⌈log|C|⌉ random members of the
  cluster on top of ``Din`` and test the band on those.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.clustering import Clusters
from repro.core.querying import QueryBudgetExhausted, QueryEngine
from repro.utils.rng import ensure_rng


def _band_holds(gains, epsilon: float) -> bool:
    """Majority of gains within a (1+ε)-approximation of the mean gain.

    A small absolute slack (0.02 utility) keeps near-zero gains from
    failing on measurement noise alone.
    """
    gains = np.asarray(list(gains), dtype=float)
    if len(gains) < 2:
        return True
    mean = float(np.abs(gains).mean())
    tolerance = max(epsilon * mean, 0.02)
    within = np.abs(np.abs(gains) - mean) <= tolerance
    return bool(within.sum() * 2 > len(gains))


def check_cluster_homogeneity(
    clusters: Clusters,
    cluster_id: int,
    engine: QueryEngine,
    index_to_id,
    base_utility: float,
    epsilon: float,
    mode: str = "lazy",
    observed_gains=None,
    seed=None,
) -> bool:
    """True when the cluster looks homogeneous (P2 plausible).

    ``index_to_id`` maps candidate indices to augmentation ids;
    ``observed_gains`` (lazy mode) maps indices to known gains.
    """
    members = clusters.members(cluster_id)
    if len(members) < 2:
        return True

    if mode == "lazy":
        gains = [
            observed_gains[m]
            for m in members
            if observed_gains is not None and m in observed_gains
        ]
        return _band_holds(gains, epsilon) if len(gains) >= 2 else True

    # Active mode: spend log|C| queries on random members.
    rng = ensure_rng(seed)
    n_samples = min(len(members), max(2, math.ceil(math.log(max(2, clusters.n_clusters)))))
    picks = rng.choice(len(members), size=n_samples, replace=False)
    gains = []
    for p in picks:
        member = members[int(p)]
        try:
            value = engine.utility(frozenset({index_to_id[member]}))
        except QueryBudgetExhausted:
            break
        gains.append(value - base_utility)
    return _band_holds(gains, epsilon) if len(gains) >= 2 else True
