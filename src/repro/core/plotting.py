"""Terminal rendering of utility-vs-queries traces (the paper's figures).

The benchmark harness and examples are terminal-first, so the figures are
rendered as ASCII line charts: one glyph per searcher, utility on the y
axis, queries on the x axis.
"""

from __future__ import annotations

_GLYPHS = "*o+x#@%&"


def render_traces(
    results: dict,
    width: int = 64,
    height: int = 16,
    max_queries: int = None,
) -> str:
    """Render ``{name: SearchResult}`` as an ASCII chart.

    Each searcher's best-so-far utility curve is drawn with its own glyph;
    the legend maps glyphs to searcher names.
    """
    if not results:
        raise ValueError("no results to render")
    if max_queries is None:
        max_queries = max(
            (result.trace[-1][0] for result in results.values() if result.trace),
            default=1,
        )
    max_queries = max(1, max_queries)

    lows = [r.base_utility for r in results.values()]
    highs = [r.utility_at(max_queries) for r in results.values()]
    y_min = max(0.0, min(lows) - 0.05)
    y_max = min(1.0, max(highs) + 0.05)
    if y_max <= y_min:
        y_max = y_min + 0.1

    grid = [[" "] * width for _ in range(height)]

    def to_cell(queries, value):
        col = min(width - 1, int(queries / max_queries * (width - 1)))
        rel = (value - y_min) / (y_max - y_min)
        row = height - 1 - min(height - 1, max(0, int(rel * (height - 1))))
        return row, col

    for glyph, (name, result) in zip(_GLYPHS, results.items(), strict=False):
        for col in range(width):
            queries = int(round(col / (width - 1) * max_queries))
            value = result.utility_at(max(1, queries))
            row, _ = to_cell(queries, value)
            if grid[row][col] == " ":
                grid[row][col] = glyph

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:4.2f} |"
        elif i == height - 1:
            label = f"{y_min:4.2f} |"
        else:
            label = "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{'queries':^{width - 12}}{max_queries:>10}")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, results.keys(), strict=False)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
