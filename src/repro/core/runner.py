"""Experiment orchestration: multi-seed comparisons with shared accounting.

The benchmark files and the CLI both need the same loop — run METAM and a
set of baselines over one scenario for several seeds, average the
utility-vs-queries curves, and summarize — so it lives here with tests.
Everything runs through one :class:`~repro.api.DiscoveryEngine`, so all
searchers of a seed share the prepared candidate set (and a warm catalog,
when the engine carries one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import MetamConfig
from repro.core.result import SearchResult

if TYPE_CHECKING:  # runtime import is lazy: api sits above core
    from repro.api.engine import DiscoveryEngine


@dataclass
class ComparisonReport:
    """Averaged outcome of a multi-seed searcher comparison."""

    query_points: tuple[int, ...]
    #: searcher name -> mean best-utility at each query point
    curves: dict[str, list[float]] = field(default_factory=dict)
    #: searcher name -> mean final utility
    final: dict[str, float] = field(default_factory=dict)
    #: one ``{searcher name: SearchResult}`` dict per seed
    runs: list[dict[str, SearchResult]] = field(default_factory=list)

    def winner_at(self, query_index: int) -> str:
        """Searcher with the best mean utility at a query point."""
        if query_index not in self.query_points:
            raise ValueError(
                f"{query_index} not in query points {self.query_points}"
            )
        position = self.query_points.index(query_index)
        return max(self.curves, key=lambda name: self.curves[name][position])

    def table(self) -> str:
        """Formatted utility-vs-queries table."""
        lines = [
            "searcher    "
            + "".join(f"{q:>8}" for q in self.query_points)
        ]
        for name, values in self.curves.items():
            lines.append(
                f"{name:12s}" + "".join(f"{v:8.3f}" for v in values)
            )
        return "\n".join(lines)


def validate_comparison(engine, baselines, iarda_target=None) -> None:
    """Argument validation for :func:`compare_searchers`.

    Raises :class:`ValueError` on unknown baseline names, on ``metam``
    listed as a baseline, or on ``iarda`` without a target.  Exposed
    separately so callers (the CLI) can fail fast before any search
    spends queries, and distinguish bad arguments from runtime errors.
    """
    unknown = [b for b in baselines if b not in engine.searchers]
    if unknown:
        raise ValueError(f"unknown baselines: {unknown}")
    if "metam" in baselines:
        # METAM always runs (with the caller's config); listing it as a
        # baseline would re-run it default-configured and silently
        # overwrite the properly-configured result under the same key.
        raise ValueError("'metam' always runs; don't list it as a baseline")
    if "iarda" in baselines and iarda_target is None:
        raise ValueError("iarda baseline needs iarda_target")


def compare_searchers(
    scenario,
    budget: int = 150,
    theta: float = 1.0,
    epsilon: float = 0.1,
    seeds=(0,),
    baselines=("mw", "overlap", "uniform"),
    query_points=(10, 25, 50, 100, 150),
    iarda_target: str | None = None,
    iarda_mode: str = "classification",
    metam_config: MetamConfig | None = None,
    engine: DiscoveryEngine | None = None,
    parallel: bool = False,
    cancel=None,
) -> ComparisonReport:
    """Run METAM + baselines over ``seeds`` and average the curves.

    ``engine`` reuses an existing :class:`~repro.api.DiscoveryEngine`
    (its corpus must match the scenario's); by default a transient one is
    built over ``scenario.corpus``.

    ``parallel=True`` submits every searcher of a seed through
    :meth:`~repro.api.DiscoveryEngine.submit` and gathers the futures —
    the requests (and therefore the results) are identical to the
    sequential path; candidates are still prepared once per seed.
    ``cancel`` (a :class:`~repro.api.CancellationToken`) aborts the
    whole comparison cooperatively: the first cancelled run raises
    :class:`~repro.api.RunCancelled` instead of letting a partial
    comparison masquerade as a complete one.
    """
    # Imported here, not at module top: repro.api builds on repro.core
    # (the searcher registry imports the baselines, which import this
    # package), so a top-level import would be circular.
    from repro.api.engine import DiscoveryEngine
    from repro.api.events import RunCancelled
    from repro.api.request import DiscoveryRequest

    def checked(run) -> SearchResult:
        if run.cancelled:
            raise RunCancelled(
                f"comparison run {run.request.searcher!r} was cancelled"
            )
        return run.result

    if engine is None:
        engine = DiscoveryEngine(corpus=scenario.corpus)
    validate_comparison(engine, baselines, iarda_target=iarda_target)
    runs: list[dict[str, SearchResult]] = []
    for seed in seeds:
        candidates = engine.prepare(scenario.base, seed=seed)
        config = metam_config or MetamConfig(
            theta=theta, query_budget=budget, epsilon=epsilon, seed=seed
        )
        requests = {
            "metam": DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher="metam",
                config=config,
                candidates=candidates,
            )
        }
        for name in baselines:
            options: dict = {}
            if name == "iarda":
                options = {"target_column": iarda_target, "mode": iarda_mode}
            requests[name] = DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher=name,
                theta=theta,
                query_budget=budget,
                seed=seed,
                options=options,
                candidates=candidates,
            )
        if parallel:
            futures = {
                name: engine.submit(request, cancel=cancel)
                for name, request in requests.items()
            }
            try:
                per_seed = {
                    name: checked(future.result())
                    for name, future in futures.items()
                }
            except BaseException:
                for future in futures.values():
                    future.cancel()  # don't leave siblings running
                raise
        else:
            per_seed = {
                name: checked(engine.discover(request, cancel=cancel))
                for name, request in requests.items()
            }
        runs.append(per_seed)

    report = ComparisonReport(query_points=tuple(query_points), runs=runs)
    for name in runs[0]:
        curve = [
            float(np.mean([run[name].utility_at(q) for run in runs]))
            for q in query_points
        ]
        report.curves[name] = curve
        report.final[name] = float(
            np.mean([run[name].utility for run in runs])
        )
    return report
