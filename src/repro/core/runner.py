"""Experiment orchestration: multi-seed comparisons with shared accounting.

The benchmark files and the CLI both need the same loop — run METAM and a
set of baselines over one scenario for several seeds, average the
utility-vs-queries curves, and summarize — so it lives here with tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.arda import IArdaSearcher
from repro.baselines.mw import MultiplicativeWeightsSearcher
from repro.baselines.overlap_ranking import OverlapSearcher
from repro.baselines.uniform import UniformSearcher
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.pipeline import prepare_candidates

_BASELINES = {
    "mw": MultiplicativeWeightsSearcher,
    "overlap": OverlapSearcher,
    "uniform": UniformSearcher,
}


@dataclass
class ComparisonReport:
    """Averaged outcome of a multi-seed searcher comparison."""

    query_points: tuple
    curves: dict = field(default_factory=dict)   # name -> [mean utility]
    final: dict = field(default_factory=dict)    # name -> mean final utility
    runs: list = field(default_factory=list)     # per-seed {name: SearchResult}

    def winner_at(self, query_index: int) -> str:
        """Searcher with the best mean utility at a query point."""
        if query_index not in self.query_points:
            raise ValueError(
                f"{query_index} not in query points {self.query_points}"
            )
        position = self.query_points.index(query_index)
        return max(self.curves, key=lambda name: self.curves[name][position])

    def table(self) -> str:
        """Formatted utility-vs-queries table."""
        lines = [
            "searcher    "
            + "".join(f"{q:>8}" for q in self.query_points)
        ]
        for name, values in self.curves.items():
            lines.append(
                f"{name:12s}" + "".join(f"{v:8.3f}" for v in values)
            )
        return "\n".join(lines)


def compare_searchers(
    scenario,
    budget: int = 150,
    theta: float = 1.0,
    epsilon: float = 0.1,
    seeds=(0,),
    baselines=("mw", "overlap", "uniform"),
    query_points=(10, 25, 50, 100, 150),
    iarda_target: str = None,
    iarda_mode: str = "classification",
    metam_config: MetamConfig = None,
) -> ComparisonReport:
    """Run METAM + baselines over ``seeds`` and average the curves."""
    unknown = [b for b in baselines if b not in _BASELINES and b != "iarda"]
    if unknown:
        raise ValueError(f"unknown baselines: {unknown}")
    runs = []
    for seed in seeds:
        candidates = prepare_candidates(scenario.base, scenario.corpus, seed=seed)
        config = metam_config or MetamConfig(
            theta=theta, query_budget=budget, epsilon=epsilon, seed=seed
        )
        per_seed = {
            "metam": Metam(
                candidates, scenario.base, scenario.corpus, scenario.task, config
            ).run()
        }
        for name in baselines:
            if name == "iarda":
                if iarda_target is None:
                    raise ValueError("iarda baseline needs iarda_target")
                searcher = IArdaSearcher(
                    candidates,
                    scenario.base,
                    scenario.corpus,
                    scenario.task,
                    target_column=iarda_target,
                    mode=iarda_mode,
                    theta=theta,
                    query_budget=budget,
                    seed=seed,
                )
            else:
                searcher = _BASELINES[name](
                    candidates,
                    scenario.base,
                    scenario.corpus,
                    scenario.task,
                    theta=theta,
                    query_budget=budget,
                    seed=seed,
                )
            per_seed[name] = searcher.run()
        runs.append(per_seed)

    report = ComparisonReport(query_points=tuple(query_points), runs=runs)
    for name in runs[0]:
        curve = [
            float(np.mean([run[name].utility_at(q) for run in runs]))
            for q in query_points
        ]
        report.curves[name] = curve
        report.final[name] = float(
            np.mean([run[name].utility for run in runs])
        )
    return report
