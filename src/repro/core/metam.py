"""METAM (Algorithm 1): adaptive interventional querying.

The search alternates the *sequential* mechanism (query the best-scoring
augmentation, one per cluster per round, and update profile-importance
weights) with the *group* mechanism (Thompson-sampled size-``t`` subsets
whose best result is tracked as ``T*_c``).  Rounds end by committing the
best improving augmentation found (monotonicity certification); the final
solution is the better of the sequential and group solutions, post-
processed by IDENTIFY-MINIMAL.
"""

from __future__ import annotations

import numpy as np

from repro.core.bandit import ThompsonGroupSelector
from repro.core.clustering import cluster_partition, singleton_clusters
from repro.core.config import MetamConfig
from repro.core.homogeneity import check_cluster_homogeneity
from repro.core.minimality import identify_minimal
from repro.core.monotonic import MonotoneState
from repro.core.quality import QualityScorer
from repro.core.querying import QueryBudgetExhausted, QueryEngine
from repro.core.result import SearchResult
from repro.dataframe.table import Table
from repro.utils.rng import ensure_rng


class Metam:
    """Goal-oriented data discovery over a profiled candidate set.

    Parameters
    ----------
    candidates:
        Profiled candidates (``profile_vector`` must be set; see
        :func:`repro.discovery.candidates.profile_candidates`).
    base / corpus / task:
        The input dataset, the repository, and the downstream task.
    config:
        Search knobs; see :class:`~repro.core.config.MetamConfig`.

    ``on_round`` (optional observer, default ``None``) is called after
    each outer-loop round with ``(round_index, utility, queries,
    committed)`` — the serving API's round-complete event.
    """

    on_round = None

    def __init__(
        self,
        candidates,
        base: Table,
        corpus: dict,
        task,
        config: MetamConfig = None,
    ):
        self.candidates = list(candidates)
        if not self.candidates:
            raise ValueError("candidate set is empty")
        missing = [c.aug_id for c in self.candidates if c.profile_vector is None]
        if missing:
            raise ValueError(
                f"{len(missing)} candidates lack profile vectors "
                f"(first: {missing[0]!r}); run profile_candidates first"
            )
        self.base = base
        self.corpus = corpus
        self.task = task
        self.config = config or MetamConfig()
        self.engine = QueryEngine(
            task, base, corpus, self.candidates, budget=self.config.query_budget
        )
        self._ids = [c.aug_id for c in self.candidates]
        self._profiles = np.vstack([c.profile_vector for c in self.candidates])

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Execute Algorithm 1 and return the search result."""
        config = self.config
        rng = ensure_rng(config.seed)

        if config.use_clustering:
            clusters = cluster_partition(self._profiles, config.epsilon, seed=rng)
        else:
            clusters = singleton_clusters(self._profiles)
        scorer = QualityScorer(self._profiles, clusters)
        bandit = ThompsonGroupSelector(
            clusters, seed=rng, uniform=not config.use_thompson
        )

        try:
            state = MonotoneState(self.engine)
        except QueryBudgetExhausted:
            return self._result([], 0.0, 0.0, clusters)
        base_utility = state.utility

        # Mutable search-wide state shared with the round routine.
        search = {
            "best_group": None,  # (frozenset of aug ids, utility)
            "group_size": 1,
            "groups_at_size": 0,
            "groups_per_size": config.groups_per_size
            or max(2, clusters.n_clusters),
            "checked_clusters": set(),
        }
        exhausted = False

        try:
            if config.homogeneity == "active":
                clusters, scorer, bandit = self._active_homogeneity(
                    clusters, scorer, base_utility, rng, config
                )

            rounds = 0
            while state.utility < config.theta and (
                search["best_group"] is None
                or search["best_group"][1] < config.theta
            ):
                committed = self._run_round(
                    state, scorer, clusters, bandit, base_utility, search
                )
                rounds += 1
                if self.on_round is not None:
                    self.on_round(
                        rounds, state.utility, self.engine.queries, committed
                    )
                if not committed:
                    break  # no candidate improves utility any more
        except QueryBudgetExhausted:
            exhausted = True

        # Choose the better of the sequential and group solutions.
        selected = list(state.selected)
        utility = state.utility
        best_group = search["best_group"]
        if best_group is not None and best_group[1] > utility:
            selected = sorted(best_group[0])
            utility = best_group[1]

        # Minimality post-processing.
        if config.run_minimality and not exhausted and len(selected) > 1:
            threshold = min(config.theta, utility)
            selected = identify_minimal(selected, self.engine, threshold)
            try:
                utility = self.engine.utility(frozenset(selected))
            except QueryBudgetExhausted:
                pass

        return self._result(selected, utility, base_utility, clusters, scorer)

    # ------------------------------------------------------------------
    def _run_round(
        self,
        state: MonotoneState,
        scorer: QualityScorer,
        clusters,
        bandit: ThompsonGroupSelector,
        base_utility: float,
        search: dict,
    ) -> bool:
        """One outer-loop round (lines 7-22).  Returns True if an
        augmentation was committed to the solution."""
        config = self.config
        tau = config.tau or clusters.n_clusters
        index_of = {aug_id: i for i, aug_id in enumerate(self._ids)}
        selected_indices = {index_of[a] for a in state.selected}
        excluded_clusters = set()
        round_utilities = {}  # index -> utility of solution + candidate
        i = 0

        while True:
            best_seen = max(round_utilities.values(), default=-np.inf)
            if i >= tau and best_seen > state.utility:
                break
            index = scorer.best_unqueried(
                excluded_indices=selected_indices | set(round_utilities),
                excluded_clusters=excluded_clusters,
            )
            if index is None:
                # Sequential pool exhausted for this round: keep the group
                # (combinatorial) mechanism going so larger subsets are
                # still explored (the Theorem-3 exhaustiveness path).
                issued = self._group_step(
                    state, bandit, scorer, base_utility, search, selected_indices
                )
                i += 1
                if not issued or i >= 4 * tau:
                    if best_seen > -np.inf:
                        break
                    return False  # nothing left to query at all
                best_group = search["best_group"]
                if best_group is not None and best_group[1] >= config.theta:
                    break
                continue
            # Sequential mechanism: query solution + candidate.
            value = state.utility_with(self._ids[index])
            round_utilities[index] = value
            excluded_clusters.add(clusters.cluster_of(index))
            scorer.update(index, value - state.utility)
            self._lazy_homogeneity(
                clusters, scorer, search["checked_clusters"], base_utility, config
            )
            if i % config.group_interval == 0:
                self._group_step(
                    state, bandit, scorer, base_utility, search, selected_indices
                )
            i += 1
            if i >= 4 * tau:
                break  # bounded round length even without improvement

        # Commit the best candidate of this round if it improves (line 18).
        if not round_utilities:
            return False
        best_index = max(round_utilities, key=round_utilities.get)
        if round_utilities[best_index] > state.utility:
            state.accept(self._ids[best_index], round_utilities[best_index])
            return True
        return False

    def _group_step(
        self,
        state: MonotoneState,
        bandit: ThompsonGroupSelector,
        scorer: QualityScorer,
        base_utility: float,
        search: dict,
        selected_indices: set,
    ) -> bool:
        """One group-mechanism query (lines 13-15): Thompson-sample a
        size-``t`` subset, evaluate it against Din, track the best.
        Returns False when no group could be formed."""
        available = [
            j for j in range(len(self._ids)) if j not in selected_indices
        ]
        group = bandit.sample_group(
            search["group_size"], available, member_score=scorer.quality
        )
        if not group:
            return False
        group_ids = frozenset(self._ids[j] for j in group)
        group_value = self.engine.utility(group_ids)
        bandit.reward(group, success=group_value > base_utility)
        best = search["best_group"]
        if best is None or group_value > best[1]:
            search["best_group"] = (group_ids, group_value)
        search["groups_at_size"] += 1
        if search["groups_at_size"] >= search["groups_per_size"]:
            search["groups_at_size"] = 0
            search["group_size"] = min(
                search["group_size"] + 1, self.config.max_group_size
            )
        return True

    # ------------------------------------------------------------------
    def _lazy_homogeneity(
        self, clusters, scorer, checked_clusters, base_utility, config
    ) -> None:
        """Validate P2 from already-paid-for gains (lazy mode)."""
        if config.homogeneity != "lazy":
            return
        for cluster_id in range(clusters.n_clusters):
            if cluster_id in checked_clusters:
                continue
            observed = {
                m: scorer.observed_gains[m]
                for m in clusters.members(cluster_id)
                if m in scorer.observed_gains
            }
            if len(observed) < 2:
                continue
            checked_clusters.add(cluster_id)
            homogeneous = check_cluster_homogeneity(
                clusters,
                cluster_id,
                self.engine,
                self._ids,
                base_utility,
                config.epsilon,
                mode="lazy",
                observed_gains=observed,
            )
            if not homogeneous:
                scorer.disable_propagation(cluster_id)

    def _active_homogeneity(self, clusters, scorer, base_utility, rng, config):
        """The paper's up-front homogeneity test (log|C| queries/cluster).

        Non-homogeneous clusters are dissolved into singletons and the
        scorer/bandit are rebuilt over the new partition.
        """
        dissolved = []
        for cluster_id in range(clusters.n_clusters):
            homogeneous = check_cluster_homogeneity(
                clusters,
                cluster_id,
                self.engine,
                self._ids,
                base_utility,
                config.epsilon,
                mode="active",
                seed=rng,
            )
            if not homogeneous:
                dissolved.append(cluster_id)
        for cluster_id in sorted(dissolved, reverse=True):
            clusters = clusters.dissolve(cluster_id)
        if dissolved:
            scorer = QualityScorer(self._profiles, clusters)
            # Seed the scorer with the gains the probe queries produced.
            for i, aug_id in enumerate(self._ids):
                cached = self.engine.cached_utility({aug_id})
                if cached is not None:
                    scorer.observed_gains[i] = cached - base_utility
            bandit = ThompsonGroupSelector(
                clusters, seed=rng, uniform=not config.use_thompson
            )
        else:
            bandit = ThompsonGroupSelector(
                clusters, seed=rng, uniform=not config.use_thompson
            )
        return clusters, scorer, bandit

    # ------------------------------------------------------------------
    def _result(
        self, selected, utility, base_utility, clusters, scorer=None
    ) -> SearchResult:
        extras = {"n_clusters": clusters.n_clusters}
        if scorer is not None:
            extras["profile_weights"] = scorer.weights.tolist()
        return SearchResult(
            searcher="metam",
            selected=list(selected),
            utility=float(utility),
            base_utility=float(base_utility),
            queries=self.engine.queries,
            trace=list(self.engine.trace),
            extras=extras,
        )
