"""Query accounting: the shared oracle every searcher talks to.

A *query* (Definition 5's "query" notion) is one evaluation of the task's
utility on an augmented table.  The engine memoizes by augmentation set, so
re-evaluating a known set is free — exactly how the paper counts queries —
and it records the best-utility-so-far trace that Figures 3-5/7 plot.
"""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)


class QueryBudgetExhausted(Exception):
    """Raised when the engine's query budget is spent."""


class QueryEngine:
    """Evaluates task utility on ``Din`` + a set of augmentations.

    Parameters
    ----------
    task:
        The downstream task (black box).
    base:
        The input dataset ``Din``.
    corpus:
        Repository tables by name (needed to materialize augmentations).
    candidates:
        Iterable of :class:`~repro.discovery.candidates.Candidate`; the
        engine indexes them by ``aug_id``.
    budget:
        Optional hard query cap; exceeding it raises
        :class:`QueryBudgetExhausted`.

    Hooks
    -----
    Observers (the serving API's event stream) may set three optional
    callables on an instance; all default to ``None`` and, when unset,
    the engine behaves exactly as before:

    ``pre_query()``
        Called at every :meth:`utility` entry (cache hits included) —
        the cooperative-cancellation point; any exception it raises
        aborts the search.
    ``on_query(query_index, value, best_so_far)``
        Called after each *charged* query, mirroring the trace.
    ``on_accept(aug_id, utility, n_selected)``
        Called by :class:`~repro.core.monotonic.MonotoneState` whenever
        the certified solution grows.
    """

    pre_query = None
    on_query = None
    on_accept = None

    def __init__(self, task, base: Table, corpus: dict, candidates, budget=None):
        self.task = task
        self.base = base
        self.corpus = corpus
        self.budget = budget
        self._by_id = {c.aug_id: c for c in candidates}
        self._cache = {}
        self.queries = 0
        self.trace = []
        self._best = 0.0

    # ------------------------------------------------------------------
    @property
    def candidate_ids(self) -> list:
        return list(self._by_id)

    def candidate(self, aug_id: str):
        if aug_id not in self._by_id:
            raise KeyError(f"unknown augmentation {aug_id!r}")
        return self._by_id[aug_id]

    def remaining_budget(self):
        if self.budget is None:
            return None
        return max(0, self.budget - self.queries)

    # ------------------------------------------------------------------
    def _build_table(self, aug_ids: frozenset) -> Table:
        table = self.base
        for aug_id in sorted(aug_ids):
            candidate = self.candidate(aug_id)
            table = candidate.aug.apply(table, self.base, self.corpus)
        return table

    def utility(self, aug_ids=()) -> float:
        """Utility of ``Din`` augmented with ``aug_ids`` (cached)."""
        if self.pre_query is not None:
            self.pre_query()
        key = frozenset(aug_ids)
        if key in self._cache:
            return self._cache[key]
        if self.budget is not None and self.queries >= self.budget:
            raise QueryBudgetExhausted(
                f"query budget of {self.budget} exhausted"
            )
        value = float(self.task.utility(self._build_table(key)))
        self.queries += 1
        self._cache[key] = value
        self._best = max(self._best, value)
        self.trace.append((self.queries, self._best))
        # Charged queries only (a cache hit returns above): the line is
        # per-model-fit, so its cost is noise even at debug level.
        _log.debug(
            "utility query",
            query=self.queries,
            set_size=len(key),
            utility=value,
            best=self._best,
        )
        if self.on_query is not None:
            self.on_query(self.queries, value, self._best)
        return value

    def cached_utility(self, aug_ids):
        """Memoized utility of an augmentation set, or ``None`` if that
        set was never evaluated.  Never spends a query."""
        return self._cache.get(frozenset(aug_ids))

    def base_utility(self) -> float:
        """Utility of the unaugmented input dataset."""
        return self.utility(frozenset())

    @property
    def best_utility(self) -> float:
        """Best utility seen across all queries so far."""
        return self._best

    def utility_at(self, n_queries: int) -> float:
        """Best utility achieved within the first ``n_queries`` queries."""
        best = 0.0
        for step, value in self.trace:
            if step > n_queries:
                break
            best = value
        return best
