"""METAM core — the paper's primary contribution (Algorithms 1 and 2).

Public entry point::

    from repro.core import Metam, MetamConfig
    result = Metam(candidates, scenario.base, scenario.corpus,
                   scenario.task, MetamConfig(theta=0.8)).run()

All searchers (METAM and the baselines in :mod:`repro.baselines`) share
the :class:`~repro.core.querying.QueryEngine`, so query counts and
utility-vs-queries traces are directly comparable — the axes of the
paper's figures.
"""

from repro.core.config import MetamConfig
from repro.core.querying import QueryEngine, QueryBudgetExhausted
from repro.core.clustering import Clusters, cluster_partition, chebyshev
from repro.core.quality import QualityScorer
from repro.core.bandit import ThompsonGroupSelector
from repro.core.monotonic import MonotoneState
from repro.core.minimality import identify_minimal
from repro.core.homogeneity import check_cluster_homogeneity
from repro.core.result import SearchResult
from repro.core.metam import Metam
from repro.core.runner import ComparisonReport, compare_searchers
from repro.core.plotting import render_traces
from repro.core.serialization import load_results, save_results

__all__ = [
    "ComparisonReport",
    "compare_searchers",
    "render_traces",
    "load_results",
    "save_results",
    "MetamConfig",
    "QueryEngine",
    "QueryBudgetExhausted",
    "Clusters",
    "cluster_partition",
    "chebyshev",
    "QualityScorer",
    "ThompsonGroupSelector",
    "MonotoneState",
    "identify_minimal",
    "check_cluster_homogeneity",
    "SearchResult",
    "Metam",
]
