"""JSON (de)serialization of search results for experiment archival."""

from __future__ import annotations

import json

from repro.core.result import SearchResult


def result_to_dict(result: SearchResult) -> dict:
    """Plain-dict form of a SearchResult (JSON-safe)."""
    return {
        "searcher": result.searcher,
        "selected": list(result.selected),
        "utility": result.utility,
        "base_utility": result.base_utility,
        "queries": result.queries,
        "trace": [[int(q), float(u)] for q, u in result.trace],
        "extras": _jsonable(result.extras),
    }


def result_from_dict(payload: dict) -> SearchResult:
    """Inverse of :func:`result_to_dict`."""
    required = {"searcher", "selected", "utility", "base_utility", "queries"}
    missing = required - set(payload)
    if missing:
        raise ValueError(f"payload missing keys: {sorted(missing)}")
    return SearchResult(
        searcher=payload["searcher"],
        selected=list(payload["selected"]),
        utility=float(payload["utility"]),
        base_utility=float(payload["base_utility"]),
        queries=int(payload["queries"]),
        trace=[(int(q), float(u)) for q, u in payload.get("trace", [])],
        extras=dict(payload.get("extras", {})),
    )


def save_results(results: dict, path: str) -> None:
    """Write ``{name: SearchResult}`` to a JSON file."""
    payload = {name: result_to_dict(r) for name, r in results.items()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_results(path: str) -> dict:
    """Read back a file written by :func:`save_results`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {name: result_from_dict(p) for name, p in payload.items()}


def _jsonable(value):
    """Coerce numpy scalars/arrays inside extras into JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy arrays and numpy scalars
    return value
