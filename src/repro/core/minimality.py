"""IDENTIFY-MINIMAL: prune the solution to a minimal set (Definition 6)."""

from __future__ import annotations

from repro.core.querying import QueryBudgetExhausted, QueryEngine


def identify_minimal(solution, engine: QueryEngine, theta: float) -> list:
    """Drop augmentations whose removal keeps utility ≥ θ.

    Iterates the solution (earliest-added first, so cheap early picks are
    re-examined once later, stronger picks are in); each removal test is a
    query.  Returns the pruned solution in original order.  If the budget
    runs out mid-pruning, the best-known valid solution is returned.
    """
    kept = list(solution)
    if len(kept) <= 1:
        return kept
    for aug_id in list(kept):
        trial = [a for a in kept if a != aug_id]
        if not trial:
            break
        try:
            value = engine.utility(frozenset(trial))
        except QueryBudgetExhausted:
            break
        if value >= theta:
            kept = trial
    return kept
