"""Join-Everything baseline: augment every candidate at once (§II-C)."""

from __future__ import annotations

from repro.baselines.base import RankingSearcher
from repro.core.querying import QueryBudgetExhausted
from repro.core.result import SearchResult


class JoinEverythingSearcher(RankingSearcher):
    """One query with *all* augmentations applied.

    Demonstrates the discover-then-augment failure mode: irrelevant
    attributes dilute the model and the single shot cannot adapt.
    """

    name = "join_everything"

    def rank(self) -> list:  # pragma: no cover - not used by run()
        return [c.aug_id for c in self.candidates]

    def run(self) -> SearchResult:
        base_utility = self.engine.base_utility()
        all_ids = frozenset(c.aug_id for c in self.candidates)
        try:
            utility = self.engine.utility(all_ids)
        except QueryBudgetExhausted:
            utility = base_utility
            all_ids = frozenset()
        return SearchResult(
            searcher=self.name,
            selected=sorted(all_ids),
            utility=utility,
            base_utility=base_utility,
            queries=self.engine.queries,
            trace=list(self.engine.trace),
        )
