"""iARDA baseline: ARDA's importance ranking run interventionally (§VI-A).

ARDA [37] ranks candidate augmentations by random-injection feature
importance.  iARDA queries candidates in that order with the same greedy
monotone acceptance as every other baseline.
"""

from __future__ import annotations

from repro.baselines.base import RankingSearcher
from repro.profiles.arda import ArdaScorer


class IArdaSearcher(RankingSearcher):
    """Rank by ARDA random-injection importance, query in that order.

    ``mode`` must match the downstream task family ("classification" or
    "regression"); ``target_column`` is the task's target in ``Din``.
    """

    name = "iarda"

    def __init__(self, *args, target_column: str, mode: str = "classification", **kwargs):
        super().__init__(*args, **kwargs)
        self.target_column = target_column
        self.mode = mode

    def rank(self) -> list:
        scorer = ArdaScorer(
            self.base, self.target_column, mode=self.mode, seed=self.seed
        )
        columns = {c.aug_id: c.values for c in self.candidates}
        scores = scorer.score_columns(columns)
        ordered = sorted(
            self.candidates, key=lambda c: (-scores.get(c.aug_id, 0.0), c.aug_id)
        )
        return [c.aug_id for c in ordered]
