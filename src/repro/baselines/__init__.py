"""Baseline searchers (§III-A, §VI): MW, Overlap, Uniform, iARDA,
Join-Everything, and the METAM ablation variants Eq / Nc / NcEq.

All baselines run through the same :class:`~repro.core.querying.QueryEngine`
and greedy monotone acceptance as METAM, so query counts are comparable.
"""

from repro.baselines.base import RankingSearcher, greedy_monotone_search
from repro.baselines.mw import MultiplicativeWeightsSearcher
from repro.baselines.overlap_ranking import OverlapSearcher
from repro.baselines.uniform import UniformSearcher
from repro.baselines.arda import IArdaSearcher
from repro.baselines.join_everything import JoinEverythingSearcher
from repro.baselines.variants import metam_variant, VARIANT_NAMES

__all__ = [
    "RankingSearcher",
    "greedy_monotone_search",
    "MultiplicativeWeightsSearcher",
    "OverlapSearcher",
    "UniformSearcher",
    "IArdaSearcher",
    "JoinEverythingSearcher",
    "metam_variant",
    "VARIANT_NAMES",
]
