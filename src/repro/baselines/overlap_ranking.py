"""Overlap baseline: rank by join cardinality (S4 [14], Ver [22])."""

from __future__ import annotations

from repro.baselines.base import RankingSearcher


class OverlapSearcher(RankingSearcher):
    """Query augmentations in non-increasing overlap with ``Din``."""

    name = "overlap"

    def rank(self) -> list:
        ordered = sorted(
            self.candidates, key=lambda c: (-c.overlap, c.aug_id)
        )
        return [c.aug_id for c in ordered]
