"""METAM ablation variants for Fig. 11b: Eq, Nc, NcEq."""

from __future__ import annotations

from repro.core.config import MetamConfig
from repro.core.metam import Metam

VARIANT_NAMES = ("metam", "eq", "nc", "nceq")


def metam_variant(
    name: str,
    candidates,
    base,
    corpus,
    task,
    config: MetamConfig = None,
) -> Metam:
    """Build a METAM instance with a variant's switches applied.

    * ``metam`` — the full algorithm;
    * ``eq``    — clusters ranked with equal importance (no Thompson);
    * ``nc``    — every augmentation its own cluster (no clustering);
    * ``nceq``  — both ablations at once.
    """
    name = name.lower()
    if name not in VARIANT_NAMES:
        raise ValueError(f"unknown variant {name!r}; choose from {VARIANT_NAMES}")
    base_config = config or MetamConfig()
    overrides = {
        "metam": {},
        "eq": {"use_thompson": False},
        "nc": {"use_clustering": False},
        "nceq": {"use_thompson": False, "use_clustering": False},
    }[name]
    fields = {**base_config.__dict__, **overrides}
    searcher = Metam(candidates, base, corpus, task, MetamConfig(**fields))
    return searcher
