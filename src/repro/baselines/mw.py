"""Multiplicative-weights baseline (§III-A "prediction from expert advice").

Each data profile is an expert that ranks candidates by its profile value.
At every step the randomized MW rule samples an expert proportionally to
its weight, queries that expert's best unqueried candidate, and updates
every expert multiplicatively according to how highly it ranked the
queried candidate versus the observed outcome ([28]).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RankingSearcher
from repro.core.monotonic import MonotoneState
from repro.core.querying import QueryBudgetExhausted
from repro.core.result import SearchResult
from repro.utils.rng import ensure_rng


class MultiplicativeWeightsSearcher(RankingSearcher):
    """Randomized MW over profiles-as-experts."""

    name = "mw"

    def __init__(self, *args, eta: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        self.eta = eta
        vectors = [c.profile_vector for c in self.candidates]
        if any(v is None for v in vectors):
            raise ValueError("MW requires profiled candidates")
        self._profiles = np.vstack(vectors)
        # rank_score[p][i] in [0,1]: 1 = candidate i is expert p's favourite.
        n = len(self.candidates)
        orders = np.argsort(-self._profiles, axis=0)
        self._rank_score = np.empty_like(self._profiles.T)
        for p in range(self._profiles.shape[1]):
            for position, i in enumerate(orders[:, p]):
                self._rank_score[p, i] = 1.0 - position / max(1, n - 1)

    def rank(self) -> list:  # pragma: no cover - MW is adaptive, not static
        return [c.aug_id for c in self.candidates]

    def run(self) -> SearchResult:
        rng = ensure_rng(self.seed)
        n_experts = self._profiles.shape[1]
        weights = np.ones(n_experts)
        queried = set()
        ids = [c.aug_id for c in self.candidates]

        try:
            state = MonotoneState(self.engine)
            while state.utility < self.theta and len(queried) < len(ids):
                probabilities = weights / weights.sum()
                expert = int(rng.choice(n_experts, p=probabilities))
                # The expert's best unqueried candidate.
                order = np.argsort(-self._profiles[:, expert])
                pick = next(
                    (int(i) for i in order if int(i) not in queried), None
                )
                if pick is None:
                    break
                queried.add(pick)
                before = state.utility
                accepted, value = state.try_add(ids[pick])
                gain = value - before
                # Experts that ranked the pick high win when it helped,
                # lose when it did not (and vice versa).
                signal = 1.0 if gain > 0 else -1.0
                adjustment = self.eta * signal * (self._rank_score[:, pick] - 0.5)
                weights = weights * np.exp(adjustment)
        except QueryBudgetExhausted:
            pass

        return SearchResult(
            searcher=self.name,
            selected=list(state.selected),
            utility=state.utility,
            base_utility=self.engine.base_utility(),
            queries=self.engine.queries,
            trace=list(self.engine.trace),
            extras={"expert_weights": (weights / weights.sum()).tolist()},
        )
