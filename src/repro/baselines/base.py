"""Shared baseline machinery: greedy monotone search over a ranking."""

from __future__ import annotations

from repro.core.monotonic import MonotoneState
from repro.core.querying import QueryBudgetExhausted, QueryEngine
from repro.core.result import SearchResult
from repro.dataframe.table import Table


def greedy_monotone_search(
    engine: QueryEngine,
    ranking,
    theta: float,
) -> MonotoneState:
    """Query candidates in ``ranking`` order, keeping improving ones.

    This is the interventional adaptation all ranking baselines share
    (§III-A "Utility-based selection"): iterate the ranking, query the
    current solution plus the candidate, accept on improvement, stop at θ
    or budget exhaustion.
    """
    state = MonotoneState(engine)
    try:
        for aug_id in ranking:
            if state.utility >= theta:
                break
            state.try_add(aug_id)
    except QueryBudgetExhausted:
        pass
    return state


class RankingSearcher:
    """A baseline defined by a static candidate ranking.

    Subclasses implement :meth:`rank` returning augmentation ids in query
    order.  ``run`` performs the greedy monotone search and packages a
    :class:`~repro.core.result.SearchResult`.
    """

    name = "ranking"

    def __init__(
        self,
        candidates,
        base: Table,
        corpus: dict,
        task,
        theta: float = 1.0,
        query_budget: int = 1000,
        seed: int = 0,
    ):
        self.candidates = list(candidates)
        if not self.candidates:
            raise ValueError("candidate set is empty")
        self.base = base
        self.corpus = corpus
        self.task = task
        self.theta = theta
        self.seed = seed
        self.engine = QueryEngine(
            task, base, corpus, self.candidates, budget=query_budget
        )

    def rank(self) -> list:
        """Candidate aug_ids in the order this baseline queries them."""
        raise NotImplementedError

    def run(self) -> SearchResult:
        try:
            state = greedy_monotone_search(self.engine, self.rank(), self.theta)
        except QueryBudgetExhausted:
            return SearchResult(
                searcher=self.name,
                selected=[],
                utility=0.0,
                base_utility=0.0,
                queries=self.engine.queries,
                trace=list(self.engine.trace),
            )
        return SearchResult(
            searcher=self.name,
            selected=list(state.selected),
            utility=state.utility,
            base_utility=self.engine.base_utility(),
            queries=self.engine.queries,
            trace=list(self.engine.trace),
        )
