"""Uniform-sampling baseline: query in random order."""

from __future__ import annotations

from repro.baselines.base import RankingSearcher
from repro.utils.rng import ensure_rng


class UniformSearcher(RankingSearcher):
    """Query augmentations in a seeded uniform-random order."""

    name = "uniform"

    def rank(self) -> list:
        rng = ensure_rng(self.seed)
        ids = [c.aug_id for c in self.candidates]
        perm = rng.permutation(len(ids))
        return [ids[int(i)] for i in perm]
