"""Legacy free-function pipeline — deprecated shims over the engine API.

These were the public entry points before the session-oriented
:class:`~repro.api.DiscoveryEngine` existed.  Each now delegates to a
transient engine with byte-identical results (pinned by the golden Metam
regression test) and emits a :class:`DeprecationWarning` naming its
replacement:

=====================  ==============================================
legacy call            engine equivalent
=====================  ==============================================
``prepare_candidates``  ``DiscoveryEngine(corpus=..., catalog=...)``
                        ``.prepare(base, spec=CandidateSpec(...))``
``run_metam``           ``engine.discover(DiscoveryRequest(base=...,``
                        ``task=..., searcher="metam", config=...))``
``run_baseline``        ``engine.discover(DiscoveryRequest(base=...,``
                        ``task=..., searcher=name, options={...}))``
=====================  ==============================================
"""

from __future__ import annotations

import warnings

from repro.api.engine import DiscoveryEngine
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.core.config import MetamConfig
from repro.core.result import SearchResult
from repro.dataframe.table import Table
from repro.profiles.registry import ProfileRegistry


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use {replacement} (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


def prepare_candidates(
    base: Table,
    corpus: dict,
    registry: ProfileRegistry | None = None,
    min_containment: float = 0.3,
    max_hops: int = 1,
    max_fanout: int = 500,
    include_unions: bool = False,
    min_union_shared: float = 0.5,
    sample_size: int = 100,
    seed: int = 0,
    catalog=None,
) -> list:
    """Deprecated: use :meth:`repro.api.DiscoveryEngine.prepare`.

    Delegates to a transient engine; results are byte-identical to the
    historical implementation (same discovery, materialization, and
    profiling code, now living in the engine).
    """
    _deprecated("prepare_candidates", "DiscoveryEngine.prepare()")
    engine = DiscoveryEngine(corpus=corpus, catalog=catalog)
    spec = CandidateSpec(
        min_containment=min_containment,
        max_hops=max_hops,
        max_fanout=max_fanout,
        include_unions=include_unions,
        min_union_shared=min_union_shared,
        sample_size=sample_size,
    )
    return engine.prepare(base, spec=spec, registry=registry, seed=seed)


def run_metam(
    candidates,
    base: Table,
    corpus: dict,
    task,
    config: MetamConfig | None = None,
) -> SearchResult:
    """Deprecated: use :meth:`repro.api.DiscoveryEngine.discover` with
    ``searcher="metam"``."""
    _deprecated("run_metam", 'DiscoveryEngine.discover(searcher="metam")')
    engine = DiscoveryEngine(corpus=corpus)
    run = engine.discover(
        DiscoveryRequest(
            base=base,
            task=task,
            searcher="metam",
            config=config,
            candidates=candidates,
        )
    )
    return run.result


#: The names ``run_baseline`` historically accepted.  The engine's
#: registry also carries the METAM variants, but the legacy function
#: never did — a frozen shim must not silently widen its contract.
_LEGACY_BASELINES = ("mw", "overlap", "uniform", "iarda", "join_everything")


def run_baseline(
    name: str,
    candidates,
    base: Table,
    corpus: dict,
    task,
    theta: float = 1.0,
    query_budget: int = 1000,
    seed: int = 0,
    **kwargs,
) -> SearchResult:
    """Deprecated: use :meth:`repro.api.DiscoveryEngine.discover` with
    ``searcher=name``."""
    _deprecated("run_baseline", "DiscoveryEngine.discover(searcher=name)")
    if name not in _LEGACY_BASELINES:
        # Historical contract: unknown names raised ValueError.
        raise ValueError(
            f"unknown baseline {name!r}; choose from {sorted(_LEGACY_BASELINES)}"
        )
    engine = DiscoveryEngine(corpus=corpus)
    run = engine.discover(
        DiscoveryRequest(
            base=base,
            task=task,
            searcher=name,
            theta=theta,
            query_budget=query_budget,
            seed=seed,
            options=dict(kwargs),
            candidates=candidates,
        )
    )
    return run.result
