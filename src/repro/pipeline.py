"""End-to-end convenience pipeline: the public API most users want.

``prepare_candidates`` builds the discovery index, enumerates join paths,
materializes augmentations and attaches profile vectors; ``run_metam`` and
``run_baseline`` execute a searcher over the shared candidate set.
"""

from __future__ import annotations

from repro.baselines.arda import IArdaSearcher
from repro.baselines.join_everything import JoinEverythingSearcher
from repro.baselines.mw import MultiplicativeWeightsSearcher
from repro.baselines.overlap_ranking import OverlapSearcher
from repro.baselines.uniform import UniformSearcher
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.core.result import SearchResult
from repro.dataframe.table import Table
from repro.discovery.candidates import (
    Candidate,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.discovery.index import DiscoveryIndex
from repro.discovery.unions import find_union_candidates
from repro.profiles.registry import ProfileRegistry, default_registry

_BASELINES = {
    "mw": MultiplicativeWeightsSearcher,
    "overlap": OverlapSearcher,
    "uniform": UniformSearcher,
    "iarda": IArdaSearcher,
    "join_everything": JoinEverythingSearcher,
}


def prepare_candidates(
    base: Table,
    corpus: dict,
    registry: ProfileRegistry = None,
    min_containment: float = 0.3,
    max_hops: int = 1,
    max_fanout: int = 500,
    include_unions: bool = False,
    min_union_shared: float = 0.5,
    sample_size: int = 100,
    seed: int = 0,
    catalog=None,
) -> list:
    """Discovery + materialization + profiling in one call.

    Returns profiled :class:`~repro.discovery.candidates.Candidate`
    objects, the common input of METAM and every baseline.

    ``catalog`` (a :class:`repro.catalog.Catalog`) switches the call to
    warm-start mode: the discovery index is hydrated from the catalog
    (incrementally refreshed against ``corpus``, so only new or changed
    tables are signed) and profile vectors are served from its cache.  The
    catalog's own *index* configuration then applies — ``min_containment``
    here only governs the cold path.  ``seed`` keeps governing profile
    sampling in both modes (and is part of the profile-cache key, so reuse
    the seed of earlier runs to hit their cached vectors).
    """
    registry = registry or default_registry()
    cache = None
    if catalog is not None:
        overridden = []
        if catalog.config["min_containment"] != min_containment:
            overridden.append(
                f"min_containment={catalog.config['min_containment']} "
                f"(requested {min_containment})"
            )
        if catalog.config["seed"] != seed:
            overridden.append(
                f"index seed={catalog.config['seed']} (requested {seed}; "
                f"the requested seed still governs profile sampling)"
            )
        if overridden:
            import warnings

            warnings.warn(
                "catalog config overrides the requested values for "
                "discovery in warm-start mode: " + ", ".join(overridden),
                stacklevel=2,
            )
        diff = catalog.refresh(corpus)
        if (
            catalog.store is not None
            and (diff.added or diff.updated)
            and not catalog.removed_since_save
        ):
            # Keep the on-disk manifest/snapshot current, so the next
            # process warm-starts from the packed snapshot instead of
            # re-deriving state the objects already hold.  Only additive
            # changes are persisted implicitly: a partial corpus (e.g. a
            # filtered experiment) must not silently shrink the saved
            # catalog — persisting removals requires an explicit save().
            catalog.save()
        index = catalog.index
        cache = catalog.profile_cache(
            base, registry, sample_size=sample_size, seed=seed
        )
    else:
        index = DiscoveryIndex(min_containment=min_containment, seed=seed)
        index.build(corpus.values())
    augmentations = generate_candidates(
        base, index, max_hops=max_hops, max_fanout=max_fanout
    )
    candidates = materialize_candidates(base, augmentations, corpus)
    if include_unions:
        for union in find_union_candidates(base, corpus, min_shared=min_union_shared):
            candidates.append(
                Candidate(
                    aug=union,
                    values=union.materialize(base, corpus),
                    overlap=union.shared_fraction,
                )
            )
    return profile_candidates(
        candidates,
        base,
        corpus,
        registry,
        sample_size=sample_size,
        seed=seed,
        cache=cache,
    )


def run_metam(
    candidates,
    base: Table,
    corpus: dict,
    task,
    config: MetamConfig = None,
) -> SearchResult:
    """Run METAM over a prepared candidate set."""
    return Metam(candidates, base, corpus, task, config).run()


def run_baseline(
    name: str,
    candidates,
    base: Table,
    corpus: dict,
    task,
    theta: float = 1.0,
    query_budget: int = 1000,
    seed: int = 0,
    **kwargs,
) -> SearchResult:
    """Run one of the named baselines (mw/overlap/uniform/iarda/
    join_everything) over a prepared candidate set."""
    if name not in _BASELINES:
        raise ValueError(
            f"unknown baseline {name!r}; choose from {sorted(_BASELINES)}"
        )
    searcher = _BASELINES[name](
        candidates,
        base,
        corpus,
        task,
        theta=theta,
        query_budget=query_budget,
        seed=seed,
        **kwargs,
    )
    return searcher.run()
