"""Metadata/attributes profile: syntactic similarity of schema and source."""

from __future__ import annotations

from repro.profiles.base import Profile, ProfileContext
from repro.utils.text import tokenize


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union)


class MetadataProfile(Profile):
    """Similarity of attribute-name token sets plus a same-source bonus.

    Captures the *syntactic* signal Ver/S4-style systems rank with (§II-C):
    two tables from the same portal with overlapping column vocabularies are
    likely related.  Score = 0.75·Jaccard(attribute tokens) + 0.25·[same
    source].
    """

    name = "metadata"

    def compute(self, context: ProfileContext) -> float:
        base_tokens = {
            t for c in context.base.column_names for t in tokenize(c)
        }
        cand_tokens = {
            t
            for c in context.candidate_table.column_names
            for t in tokenize(c)
        }
        score = 0.75 * _jaccard(base_tokens, cand_tokens)
        if context.base.source and context.base.source == context.candidate_table.source:
            score += 0.25
        return self._clip(score)
