"""Correlation profile: max |Pearson r| against the base table's columns."""

from __future__ import annotations

import numpy as np

from repro.profiles.base import Profile, ProfileContext
from repro.utils.stats import pearson


class CorrelationProfile(Profile):
    """Maximum absolute Pearson correlation between the augmented column
    and any numeric attribute of ``Din``, estimated on the profiling sample.

    High values mean the candidate carries signal related to the input
    dataset — a predictor of ML feature quality (§II-C).
    """

    name = "correlation"

    def compute(self, context: ProfileContext) -> float:
        aug = context.sampled_column()
        if np.all(np.isnan(aug)):
            return 0.0
        best = 0.0
        for column in context.comparable_base_columns():
            r = abs(pearson(context.sampled_base_encoded(column), aug))
            best = max(best, r)
        return self._clip(best)
