"""ARDA-style random-injection feature scoring ([37]).

ARDA ranks candidate augmentations by training a model with *injected
random features* and scoring each candidate's importance relative to the
noise floor.  We use it two ways:

* as the task-specific profile of Fig. 7 (``ArdaImportanceProfile``), and
* as the ranking behind the ``iARDA`` interventional baseline.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.preprocessing import Imputer, LabelEncoder
from repro.profiles.base import Profile, ProfileContext
from repro.dataframe.types import to_float_array
from repro.utils.rng import ensure_rng


class ArdaScorer:
    """Score candidate columns by forest importance vs injected noise.

    Parameters
    ----------
    base:
        The input dataset ``Din``.
    target_column:
        Prediction target in ``base``.
    mode:
        ``"classification"`` or ``"regression"`` (selects the forest).
    batch_size:
        Candidates are scored in batches; each batch gets ``n_noise``
        injected random features as the ARDA noise floor.
    """

    def __init__(
        self,
        base: Table,
        target_column: str,
        mode: str = "classification",
        batch_size: int = 16,
        n_noise: int = 4,
        seed=0,
    ):
        if target_column not in base:
            raise KeyError(f"target {target_column!r} not in base table")
        self.base = base
        self.target_column = target_column
        self.mode = mode
        self.batch_size = max(1, batch_size)
        self.n_noise = max(1, n_noise)
        self.seed = seed
        self._base_matrix = self._encode_base()

    def _encode_base(self) -> np.ndarray:
        features = [c for c in self.base.column_names if c != self.target_column]
        matrix = self.base.to_matrix(features)
        return Imputer().fit_transform(matrix) if matrix.size else matrix

    def _target(self):
        raw = self.base.column(self.target_column)
        if self.mode == "classification":
            return LabelEncoder().fit_transform(raw)
        return to_float_array(raw)

    def _make_forest(self, seed):
        if self.mode == "classification":
            return RandomForestClassifier(n_estimators=5, max_depth=6, seed=seed)
        return RandomForestRegressor(n_estimators=5, max_depth=6, seed=seed)

    def score_columns(self, columns: dict) -> dict:
        """Map candidate-id -> ARDA score in [0, 1].

        ``columns`` maps an id to a list of cells row-aligned with the base
        table.  Score is the candidate's forest importance divided by the
        highest importance among injected noise features (clipped to 1).
        """
        rng = ensure_rng(self.seed)
        y = self._target()
        ids = list(columns)
        scores = {}
        for start in range(0, len(ids), self.batch_size):
            batch = ids[start : start + self.batch_size]
            cand_matrix = np.column_stack(
                [to_float_array(columns[i]) for i in batch]
            )
            noise = rng.standard_normal((self.base.num_rows, self.n_noise))
            full = np.column_stack([self._base_matrix, cand_matrix, noise])
            full = Imputer().fit_transform(full)
            forest = self._make_forest(int(rng.integers(0, 2**31 - 1)))
            forest.fit(full, y)
            importances = forest.feature_importances()
            d_base = self._base_matrix.shape[1]
            noise_max = float(importances[d_base + len(batch) :].max())
            floor = max(noise_max, 1e-9)
            for j, cid in enumerate(batch):
                raw = float(importances[d_base + j])
                scores[cid] = float(min(1.0, raw / (2.0 * floor)))
        return scores


class ArdaImportanceProfile(Profile):
    """Task-specific profile backed by precomputed ARDA scores.

    The scorer runs once over all candidates (it needs batches); the profile
    then looks each augmentation up by its column-name key.
    """

    name = "arda_importance"

    def __init__(self, scores: dict):
        self.scores = dict(scores)

    def compute(self, context: ProfileContext) -> float:
        return self._clip(self.scores.get(context.column_name, 0.0))
