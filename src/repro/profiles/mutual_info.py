"""Mutual-information profile, normalized to [0, 1]."""

from __future__ import annotations

import math

import numpy as np

from repro.profiles.base import Profile, ProfileContext
from repro.utils.stats import mutual_information


class MutualInformationProfile(Profile):
    """Maximum normalized MI between the augmented column and any numeric
    attribute of ``Din``.

    MI is normalized by ``log(bins)`` — the maximum achievable for the
    histogram estimator — so the value lands in [0, 1].  MI is the paper's
    proxy for causal dependence between attributes (§II-C).
    """

    name = "mutual_information"

    def __init__(self, bins: int = 8):
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.bins = bins

    def compute(self, context: ProfileContext) -> float:
        aug = context.sampled_column()
        if np.all(np.isnan(aug)):
            return 0.0
        max_mi = math.log(self.bins)
        best = 0.0
        for column in context.comparable_base_columns():
            mi = mutual_information(
                context.sampled_base_encoded(column), aug, bins=self.bins
            )
            best = max(best, mi / max_mi)
        return self._clip(best)
