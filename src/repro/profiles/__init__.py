"""Data profiles (§II-C): task-independent measures of augmentations.

Each profile maps a candidate augmentation to a value in [0, 1].  The
profile *vector* is what METAM clusters (Algorithm 2) and regresses quality
scores against.  The registry supports the paper's five default profiles,
user-defined profiles, uninformative (random) profiles for the Fig. 9/10
ablations, and the ARDA task-specific profile for Fig. 7.
"""

from repro.profiles.base import Profile, ProfileContext
from repro.profiles.correlation import CorrelationProfile
from repro.profiles.mutual_info import MutualInformationProfile
from repro.profiles.embedding import TokenEmbedder, EmbeddingSimilarityProfile
from repro.profiles.metadata import MetadataProfile
from repro.profiles.overlap import OverlapProfile
from repro.profiles.registry import ProfileRegistry, default_registry, RandomProfile
from repro.profiles.arda import ArdaScorer, ArdaImportanceProfile

__all__ = [
    "Profile",
    "ProfileContext",
    "CorrelationProfile",
    "MutualInformationProfile",
    "TokenEmbedder",
    "EmbeddingSimilarityProfile",
    "MetadataProfile",
    "OverlapProfile",
    "ProfileRegistry",
    "default_registry",
    "RandomProfile",
    "ArdaScorer",
    "ArdaImportanceProfile",
]
