"""Extension profiles from §II-C's "Extending to other data profiles".

The paper lists anomaly detection and fairness-style conditional checks as
natural profile extensions, and notes developers "cast a wide net".  These
profiles are registered like any other and exercised by the Fig. 9/10
style ablations.
"""

from __future__ import annotations

import numpy as np

from repro.profiles.base import Profile, ProfileContext
from repro.utils.stats import pearson, spearman


class SpearmanProfile(Profile):
    """Max |Spearman rank correlation| against base attributes — catches
    monotone non-linear relationships Pearson misses."""

    name = "spearman"

    def compute(self, context: ProfileContext) -> float:
        aug = context.sampled_column()
        if np.all(np.isnan(aug)):
            return 0.0
        best = 0.0
        for column in context.comparable_base_columns():
            r = abs(spearman(context.sampled_base_encoded(column), aug))
            best = max(best, r)
        return self._clip(best)


class AnomalyProfile(Profile):
    """1 − outlier fraction of the augmented column (|z| > 3).

    Columns riddled with outliers are usually erroneous joins or unit
    mismatches; a clean column scores near 1.
    """

    name = "anomaly"

    def __init__(self, z_threshold: float = 3.0):
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be > 0, got {z_threshold}")
        self.z_threshold = z_threshold

    def compute(self, context: ProfileContext) -> float:
        aug = context.sampled_column()
        values = aug[~np.isnan(aug)]
        if values.size < 4:
            return 0.0
        # Robust z-scores (median/MAD): plain z-scores are masked by the
        # very outliers this profile exists to count.
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        if mad == 0.0:
            return 1.0
        z = 0.6745 * np.abs(values - median) / mad
        return self._clip(1.0 - float(np.mean(z > self.z_threshold)))


class CompletenessProfile(Profile):
    """Fraction of non-missing cells in the materialized column.

    Differs from the overlap profile on multi-hop paths, where a row can
    match the first hop but miss downstream hops.
    """

    name = "completeness"

    def compute(self, context: ProfileContext) -> float:
        aug = context.sampled_column()
        if aug.size == 0:
            return 0.0
        return self._clip(1.0 - float(np.mean(np.isnan(aug))))


class FairnessProfile(Profile):
    """1 − |corr(augmentation, sensitive attribute)| — high means usable
    under a fairness-aware task ([24], [49])."""

    name = "fairness"

    def __init__(self, sensitive_column: str):
        self.sensitive_column = sensitive_column

    def compute(self, context: ProfileContext) -> float:
        if self.sensitive_column not in context.base:
            return 0.0
        aug = context.sampled_column()
        if np.all(np.isnan(aug)):
            return 0.0
        sensitive = context.sampled_base_encoded(self.sensitive_column)
        return self._clip(1.0 - abs(pearson(sensitive, aug)))


def extended_registry(sensitive_column: str = None):
    """Default registry plus the extension profiles.

    ``sensitive_column`` adds the fairness profile when given — the
    configuration the fair-classification experiments use.
    """
    from repro.profiles.registry import default_registry

    registry = default_registry()
    registry.add(SpearmanProfile())
    registry.add(AnomalyProfile())
    registry.add(CompletenessProfile())
    if sensitive_column is not None:
        registry.add(FairnessProfile(sensitive_column))
    return registry
