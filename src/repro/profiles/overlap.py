"""Dataset-overlap profile: cardinality of the augmented dataset."""

from __future__ import annotations

from repro.profiles.base import Profile, ProfileContext


class OverlapProfile(Profile):
    """Fraction of ``Din`` rows that survive the join with a value.

    This is the ranking signal the Overlap baseline (S4 [14], Ver [22])
    sorts by: joins that cover more input rows add fewer missing values.
    """

    name = "overlap"

    def compute(self, context: ProfileContext) -> float:
        return self._clip(context.overlap_fraction)
