"""Profile registry: the ordered profile set METAM computes per candidate."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.profiles.base import Profile, ProfileContext
from repro.profiles.correlation import CorrelationProfile
from repro.profiles.embedding import EmbeddingSimilarityProfile
from repro.profiles.metadata import MetadataProfile
from repro.profiles.mutual_info import MutualInformationProfile
from repro.profiles.overlap import OverlapProfile


class RandomProfile(Profile):
    """Uninformative profile: a deterministic pseudo-random value per
    augmentation, independent of the task (Fig. 9/10 ablations)."""

    def __init__(self, index: int = 0, seed: int = 0):
        self.name = f"random_{index}"
        self.seed = seed
        self.index = index

    def compute(self, context: ProfileContext) -> float:
        key = f"{self.seed}:{self.index}:{context.column_name}:{context.candidate_table.name}"
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "big"))
        return float(rng.uniform())


class ProfileRegistry:
    """Ordered collection of profiles; computes profile vectors.

    The order is the coordinate order of the profile vector, so it must be
    stable across an experiment (clusters, quality-score weights, and the
    ε-cover all index by position).
    """

    def __init__(self, profiles=None):
        self._profiles = list(profiles or [])
        names = [p.name for p in self._profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate profile names: {names!r}")

    @property
    def names(self) -> list:
        return [p.name for p in self._profiles]

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles)

    def add(self, profile: Profile) -> "ProfileRegistry":
        if profile.name in self.names:
            raise ValueError(f"profile {profile.name!r} already registered")
        self._profiles.append(profile)
        return self

    def remove(self, name: str) -> "ProfileRegistry":
        before = len(self._profiles)
        self._profiles = [p for p in self._profiles if p.name != name]
        if len(self._profiles) == before:
            raise KeyError(f"no profile named {name!r}")
        return self

    def subset(self, names) -> "ProfileRegistry":
        """New registry with only ``names``, in the given order."""
        by_name = {p.name: p for p in self._profiles}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise KeyError(f"profiles not registered: {missing!r}")
        return ProfileRegistry([by_name[n] for n in names])

    def compute_vector(self, context: ProfileContext) -> np.ndarray:
        """Profile vector for one augmentation; every entry in [0, 1]."""
        if not self._profiles:
            raise RuntimeError("registry has no profiles")
        values = np.array([p.compute(context) for p in self._profiles], dtype=float)
        return np.clip(np.nan_to_num(values, nan=0.0), 0.0, 1.0)

    def with_random_profiles(self, n: int, seed: int = 0) -> "ProfileRegistry":
        """Copy of this registry plus ``n`` uninformative profiles."""
        out = ProfileRegistry(list(self._profiles))
        for i in range(n):
            out.add(RandomProfile(index=i, seed=seed))
        return out


def default_registry() -> ProfileRegistry:
    """The paper's five default profiles (§II-C), in a fixed order."""
    return ProfileRegistry(
        [
            CorrelationProfile(),
            MutualInformationProfile(),
            EmbeddingSimilarityProfile(),
            MetadataProfile(),
            OverlapProfile(),
        ]
    )
