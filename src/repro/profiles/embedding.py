"""Semantic-embedding profile via deterministic feature-hash embeddings.

Substitution note (DESIGN.md §4): the paper embeds table tokens with BERT
and compares datasets by cosine similarity.  Offline we replace BERT with a
per-token pseudo-embedding: a fixed-dimension Gaussian vector seeded by a
stable hash of the token.  Tables sharing vocabulary land close together in
this space — the property the profile actually relies on.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.dataframe.table import Table
from repro.profiles.base import Profile, ProfileContext
from repro.utils.text import tokenize


class TokenEmbedder:
    """Deterministic token embeddings with an embedding cache."""

    def __init__(self, dim: int = 32):
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        self.dim = dim
        self._cache = {}

    def embed_token(self, token: str) -> np.ndarray:
        """Unit-norm Gaussian vector derived from a stable token hash."""
        if token not in self._cache:
            digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
            seed = int.from_bytes(digest, "big")
            rng = np.random.default_rng(seed)
            vec = rng.standard_normal(self.dim)
            self._cache[token] = vec / np.linalg.norm(vec)
        return self._cache[token]

    def embed_tokens(self, tokens) -> np.ndarray:
        """Average of token embeddings; zero vector for no tokens."""
        tokens = list(tokens)
        if not tokens:
            return np.zeros(self.dim)
        return np.mean([self.embed_token(t) for t in tokens], axis=0)

    def embed_table(self, table: Table, max_cells: int = 50) -> np.ndarray:
        """Embed a table from its name, column names, and a slice of cells.

        Mirrors the paper's construction: the dataset embedding is the
        average of the embeddings of tokens present in the table.
        """
        tokens = tokenize(table.name) + [
            t for c in table.column_names for t in tokenize(c)
        ]
        budget = max_cells
        for column in table.column_names:
            if budget <= 0:
                break
            for cell in table.column(column)[: min(budget, 10)]:
                tokens.extend(tokenize(cell))
                budget -= 1
        return self.embed_tokens(tokens)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity; 0.0 when either vector is zero."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


class EmbeddingSimilarityProfile(Profile):
    """Cosine similarity between embeddings of ``Din`` and the candidate
    table, shifted from [-1, 1] into [0, 1]."""

    name = "semantic_embedding"

    def __init__(self, embedder: TokenEmbedder = None):
        self.embedder = embedder or TokenEmbedder()
        self._base_cache = {}

    def compute(self, context: ProfileContext) -> float:
        base_key = id(context.base)
        if base_key not in self._base_cache:
            self._base_cache[base_key] = self.embedder.embed_table(context.base)
        base_vec = self._base_cache[base_key]
        cand_vec = self.embedder.embed_table(context.candidate_table)
        return self._clip((cosine_similarity(base_vec, cand_vec) + 1.0) / 2.0)
