"""Profile protocol and the context object profiles are computed from."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataframe.table import Table
from repro.utils.rng import ensure_rng


@dataclass
class ProfileContext:
    """Everything a profile may inspect about one candidate augmentation.

    Attributes
    ----------
    base:
        The input dataset ``Din``.
    column_name:
        Name of the augmented column (Definition 4: one projected column).
    column_values:
        The augmented column's cells, row-aligned with ``base`` (missing
        where the join found no match).
    candidate_table:
        The repository table the column comes from (end of the join path).
    overlap_fraction:
        Matched rows / base rows — cardinality of the augmented dataset
        relative to ``Din``.
    sample_size:
        Profiles are estimated on a random sample of this many records
        (the paper uses 100).
    seed:
        Seed for the sampling.
    shared_cache:
        Optional dict shared across the contexts of one profiling pass
        (same base/sample_size/seed).  Sampled base arrays depend only
        on the base table, so candidates reuse them instead of slicing
        per candidate.  Treat every cached array as read-only.
    """

    base: Table
    column_name: str
    column_values: list
    candidate_table: Table
    overlap_fraction: float
    sample_size: int = 100
    seed: int = 0
    shared_cache: dict = field(default=None, repr=False)
    _sample_indices: np.ndarray = field(default=None, repr=False)

    def sample_indices(self) -> np.ndarray:
        """Row indices of the profiling sample (computed once, cached)."""
        if self._sample_indices is None:
            cache = self.shared_cache
            key = ("sample_indices", self.base.num_rows, self.sample_size, self.seed)
            if cache is not None and key in cache:
                self._sample_indices = cache[key]
                return self._sample_indices
            n = self.base.num_rows
            if n <= self.sample_size:
                self._sample_indices = np.arange(n)
            else:
                rng = ensure_rng(self.seed)
                picks = rng.choice(n, size=self.sample_size, replace=False)
                self._sample_indices = np.sort(picks)
            if cache is not None:
                cache[key] = self._sample_indices
        return self._sample_indices

    def sampled_column(self) -> np.ndarray:
        """Augmented column as floats over the profiling sample."""
        from repro.dataframe.types import to_float_array

        values = to_float_array(self.column_values)
        return values[self.sample_indices()]

    def _sampled_base(self, kind: str, column: str) -> np.ndarray:
        cache = self.shared_cache
        key = (kind, column, self.sample_size, self.seed)
        if cache is not None and key in cache:
            return cache[key]
        source = (
            self.base.numeric(column)
            if kind == "numeric"
            else self.base.encoded(column)
        )
        sampled = source[self.sample_indices()]
        if cache is not None:
            cache[key] = sampled
        return sampled

    def sampled_base_numeric(self, column: str) -> np.ndarray:
        """A numeric base column over the same profiling sample."""
        return self._sampled_base("numeric", column)

    def sampled_base_encoded(self, column: str) -> np.ndarray:
        """Any base column over the sample, encoded to floats.

        Categorical columns (e.g. a class label) get deterministic codes,
        so correlation/MI profiles can see targets too — the paper computes
        these against *all* attributes of ``Din``.
        """
        return self._sampled_base("encoded", column)

    def comparable_base_columns(self) -> list:
        """Base columns worth correlating against: numeric ones plus
        low-cardinality categoricals (targets, flags)."""
        from repro.dataframe.types import ColumnType

        columns = []
        for column in self.base.column_names:
            kind = self.base.column_type(column)
            if kind == ColumnType.NUMERIC or kind == ColumnType.CATEGORICAL:
                columns.append(column)
        return columns


class Profile:
    """A named, task-independent property of an augmentation in [0, 1]."""

    name = "profile"

    def compute(self, context: ProfileContext) -> float:
        """Return the profile value for one augmentation; must be in [0, 1]."""
        raise NotImplementedError

    def _clip(self, value: float) -> float:
        if np.isnan(value):
            return 0.0
        return float(min(1.0, max(0.0, value)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
