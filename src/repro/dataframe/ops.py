"""Relational operations over :class:`~repro.dataframe.table.Table`.

Joins are hash joins on string-normalized keys.  A left join with a
one-to-many match aggregates the right side per key (mean for numeric
columns, first value otherwise), which keeps augmented tables row-aligned
with the input table — the semantics augmentation needs (Definition 4).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.dataframe.types import ColumnType, infer_column_type, is_missing


def _key(value):
    """Normalized join key for a cell, or None when missing."""
    if is_missing(value):
        return None
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value).strip().lower()


def _aggregate(values, col_type: ColumnType):
    """Collapse multiple matching right-side cells into one."""
    present = [v for v in values if not is_missing(v)]
    if not present:
        return None
    if col_type == ColumnType.NUMERIC:
        return float(np.mean([float(v) for v in present]))
    return present[0]


def build_lookup(table: Table, key_column: str) -> dict:
    """Map normalized key -> list of row indices in ``table``."""
    lookup = {}
    for i, cell in enumerate(table.column(key_column)):
        k = _key(cell)
        if k is None:
            continue
        lookup.setdefault(k, []).append(i)
    return lookup


def left_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    columns=None,
    suffix: str = "",
    name=None,
) -> Table:
    """Left-join ``right`` onto ``left``; unmatched rows get missing cells.

    ``columns`` restricts which right-side columns are brought over
    (default: all except the join key).  Name clashes are resolved with
    ``suffix`` or, if empty, a ``<right.name>.`` prefix.
    """
    lookup = build_lookup(right, right_on)
    bring = [c for c in (columns or right.column_names) if c != right_on]
    out_cols = {c: list(left.column(c)) for c in left.column_names}

    for col in bring:
        cells = right.column(col)
        col_type = infer_column_type(cells)
        new_cells = []
        for cell in left.column(left_on):
            k = _key(cell)
            rows = lookup.get(k) if k is not None else None
            if not rows:
                new_cells.append(None)
            else:
                new_cells.append(_aggregate([cells[i] for i in rows], col_type))
        out_name = col
        if out_name in out_cols:
            out_name = f"{col}{suffix}" if suffix else f"{right.name}.{col}"
        while out_name in out_cols:
            out_name += "_"
        out_cols[out_name] = new_cells

    return Table(name or left.name, out_cols, source=left.source)


def inner_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    name=None,
) -> Table:
    """Inner join keeping the first right match per left row."""
    lookup = build_lookup(right, right_on)
    left_idx = []
    right_idx = []
    for i, cell in enumerate(left.column(left_on)):
        k = _key(cell)
        rows = lookup.get(k) if k is not None else None
        if rows:
            left_idx.append(i)
            right_idx.append(rows[0])

    out_cols = {
        c: [left.column(c)[i] for i in left_idx] for c in left.column_names
    }
    for col in right.column_names:
        if col == right_on:
            continue
        out_name = col if col not in out_cols else f"{right.name}.{col}"
        while out_name in out_cols:
            out_name += "_"
        out_cols[out_name] = [right.column(col)[i] for i in right_idx]
    return Table(name or f"{left.name}⋈{right.name}", out_cols, source=left.source)


def join_overlap(left: Table, right: Table, left_on: str, right_on: str) -> int:
    """Number of left rows that find at least one right match (cardinality
    of the augmented dataset — the paper's *dataset overlap* profile)."""
    keys = {k for k in (_key(v) for v in right.column(right_on)) if k is not None}
    return sum(1 for v in left.column(left_on) if _key(v) in keys)


def union_tables(top: Table, bottom: Table, name=None) -> Table:
    """Union (row addition) of two tables over their shared columns.

    Columns present in only one table are kept and padded with missing
    cells, mirroring the open-data union-search setting of [15].
    """
    all_cols = list(top.column_names)
    for c in bottom.column_names:
        if c not in all_cols:
            all_cols.append(c)
    cols = {}
    for c in all_cols:
        upper = list(top.column(c)) if c in top else [None] * top.num_rows
        lower = list(bottom.column(c)) if c in bottom else [None] * bottom.num_rows
        cols[c] = upper + lower
    return Table(name or f"{top.name}∪{bottom.name}", cols, source=top.source)


def concat_columns(base: Table, extra: Table, name=None) -> Table:
    """Column-wise concatenation of two row-aligned tables."""
    if base.num_rows != extra.num_rows:
        raise ValueError(
            f"row mismatch: {base.num_rows} vs {extra.num_rows} "
            f"({base.name!r}, {extra.name!r})"
        )
    cols = {c: list(base.column(c)) for c in base.column_names}
    for c in extra.column_names:
        out = c
        while out in cols:
            out = f"{extra.name}.{out}"
        cols[out] = list(extra.column(c))
    return Table(name or base.name, cols, source=base.source)
