"""The column-oriented :class:`Table`, the core data object of the library.

A table is a named, ordered mapping from column names to equal-length lists
of raw cells.  Cells may be numbers, strings, or ``None`` (missing).  The
class deliberately stays small: relational operations live in
:mod:`repro.dataframe.ops`, IO in :mod:`repro.dataframe.io`.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.dataframe.types import (
    ColumnType,
    encode_categorical,
    infer_column_type,
    to_float_array,
)


class Table:
    """A named collection of equal-length columns.

    Parameters
    ----------
    name:
        Identifier of the table (e.g., file name in a repository).
    columns:
        Mapping of column name to list of cells.  Insertion order is the
        schema order.  A column name of ``None`` models the paper's
        *missing header* case and is replaced by a positional placeholder.
    source:
        Optional provenance string (portal / repository name), used by the
        metadata profile.
    """

    def __init__(self, name: str, columns: dict, source: str = ""):
        self.name = str(name)
        self.source = str(source)
        self._columns = {}
        n_rows = None
        for idx, (col_name, cells) in enumerate(columns.items()):
            key = f"_col_{idx}" if col_name is None else str(col_name)
            cells = list(cells)
            if n_rows is None:
                n_rows = len(cells)
            elif len(cells) != n_rows:
                raise ValueError(
                    f"column {key!r} has {len(cells)} rows, expected {n_rows}"
                )
            if key in self._columns:
                raise ValueError(f"duplicate column name {key!r} in table {name!r}")
            self._columns[key] = cells
        self._n_rows = 0 if n_rows is None else n_rows
        self._type_cache = {}
        # Derived-view caches.  Cells are immutable by contract
        # (column() documents "don't mutate"; every transformation
        # returns a new Table), so numeric/encoded arrays and distinct
        # sets are computed once per column and shared; cached arrays
        # are frozen so an accidental in-place write fails loudly
        # instead of corrupting every later reader.
        self._array_cache = {}
        self._distinct_cache = {}
        # Scratch space for consumers caching derived read-only
        # structures against this table's lifetime (e.g. the join-hop
        # key lookups in repro.discovery.join_path).
        self._derived_cache = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of tuples."""
        return self._n_rows

    @property
    def num_columns(self) -> int:
        """Number of attributes."""
        return len(self._columns)

    @property
    def column_names(self) -> list:
        """Schema order list of column names."""
        return list(self._columns.keys())

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self.num_rows}, "
            f"columns={self.column_names!r})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.name == other.name
            and self.column_names == other.column_names
            and all(self._columns[c] == other._columns[c] for c in self._columns)
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> list:
        """Raw cells of column ``name`` (the list is not a copy; don't mutate)."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r} in table {self.name!r}")
        return self._columns[name]

    def column_type(self, name: str) -> ColumnType:
        """Inferred :class:`ColumnType` of a column (cached)."""
        if name not in self._type_cache:
            self._type_cache[name] = infer_column_type(self.column(name))
        return self._type_cache[name]

    def numeric_columns(self) -> list:
        """Names of all columns inferred as numeric."""
        return [c for c in self._columns if self.column_type(c) == ColumnType.NUMERIC]

    def numeric(self, name: str) -> np.ndarray:
        """Column as float array, NaN for missing/unparseable cells.

        The array is computed once per column and cached read-only;
        copy before mutating.
        """
        if not kernels.caching_enabled():
            return to_float_array(self.column(name))
        key = ("numeric", name)
        if key not in self._array_cache:
            arr = to_float_array(self.column(name))
            arr.flags.writeable = False
            self._array_cache[key] = arr
        return self._array_cache[key]

    def encoded(self, name: str) -> np.ndarray:
        """Column as floats: numeric as-is, otherwise deterministic codes.

        Cached read-only like :meth:`numeric`; copy before mutating.
        """
        if self.column_type(name) == ColumnType.NUMERIC:
            return self.numeric(name)
        if not kernels.caching_enabled():
            return encode_categorical(self.column(name))
        key = ("encoded", name)
        if key not in self._array_cache:
            arr = encode_categorical(self.column(name))
            arr.flags.writeable = False
            self._array_cache[key] = arr
        return self._array_cache[key]

    def to_matrix(self, columns=None) -> np.ndarray:
        """Stack ``columns`` (default: all) into an (n_rows, k) float matrix."""
        columns = self.column_names if columns is None else list(columns)
        if not columns:
            return np.empty((self._n_rows, 0), dtype=float)
        return np.column_stack([self.encoded(c) for c in columns])

    def row(self, index: int) -> dict:
        """Row ``index`` as a column-name → cell dict."""
        return {c: cells[index] for c, cells in self._columns.items()}

    def iter_rows(self):
        """Iterate rows as dicts (for small tables / IO only)."""
        for i in range(self._n_rows):
            yield self.row(i)

    def distinct_values(self, name: str) -> set:
        """Distinct non-missing values of a column, as strings.

        Cached per column; treat the returned set as read-only.
        """
        if not kernels.caching_enabled():
            return kernels.distinct_strings(self.column(name))
        if name not in self._distinct_cache:
            self._distinct_cache[name] = kernels.distinct_strings(self.column(name))
        return self._distinct_cache[name]

    def estimated_byte_size(self, size_sample: int = 1000) -> int:
        """In-memory cell-size estimate in bytes (Table I's 'Size').

        Sums ``str()`` lengths of every cell; columns longer than
        ``size_sample`` cells are estimated from a deterministic
        evenly-spaced sample instead of stringifying every cell, so the
        statistic stays cheap on production-scale corpora
        (``size_sample <= 0`` disables sampling and counts every cell).
        """
        total = 0
        for column in self.column_names:
            cells = self.column(column)
            if size_sample <= 0 or len(cells) <= size_sample:
                sample = cells
            else:
                stride = len(cells) / size_sample
                sample = [cells[int(i * stride)] for i in range(size_sample)]
            if not sample:
                continue
            sampled = sum(len(str(v)) if v is not None else 1 for v in sample)
            total += int(round(sampled * len(cells) / len(sample)))
        return total

    def missing_fraction(self, name: str) -> float:
        """Fraction of missing cells in a column."""
        cells = self.column(name)
        if not cells:
            return 0.0
        return (len(cells) - kernels.count_non_missing(cells)) / len(cells)

    # ------------------------------------------------------------------
    # Schema / row transformations (all return new tables)
    # ------------------------------------------------------------------
    def copy(self, name=None) -> "Table":
        """Shallow-copy the table (cells are copied, values shared)."""
        return Table(
            name or self.name,
            {c: list(cells) for c, cells in self._columns.items()},
            source=self.source,
        )

    def project(self, columns, name=None) -> "Table":
        """Keep only ``columns``, in the given order."""
        missing = [c for c in columns if c not in self._columns]
        if missing:
            raise KeyError(f"columns {missing!r} not in table {self.name!r}")
        return Table(
            name or self.name,
            {c: list(self._columns[c]) for c in columns},
            source=self.source,
        )

    def drop_columns(self, columns, name=None) -> "Table":
        """Remove ``columns`` from the schema."""
        drop = set(columns)
        keep = [c for c in self.column_names if c not in drop]
        return self.project(keep, name=name)

    def rename_column(self, old: str, new: str) -> "Table":
        """Rename one column, preserving order."""
        if old not in self._columns:
            raise KeyError(f"no column {old!r} in table {self.name!r}")
        cols = {}
        for c, cells in self._columns.items():
            cols[new if c == old else c] = list(cells)
        return Table(self.name, cols, source=self.source)

    def with_column(self, name: str, cells, table_name=None) -> "Table":
        """Append (or replace) a column and return the new table."""
        if len(cells) != self._n_rows and self._columns:
            raise ValueError(
                f"new column {name!r} has {len(cells)} rows, expected {self._n_rows}"
            )
        cols = {c: list(v) for c, v in self._columns.items()}
        cols[name] = list(cells)
        return Table(table_name or self.name, cols, source=self.source)

    def select_rows(self, indices, name=None) -> "Table":
        """Keep rows at ``indices`` (list of ints), in order."""
        return Table(
            name or self.name,
            {c: [cells[i] for i in indices] for c, cells in self._columns.items()},
            source=self.source,
        )

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.select_rows(range(min(n, self._n_rows)))

    def sample_rows(self, n: int, rng) -> "Table":
        """Uniform row sample without replacement (all rows if n >= len)."""
        if n >= self._n_rows:
            return self.copy()
        indices = rng.choice(self._n_rows, size=n, replace=False)
        return self.select_rows(sorted(int(i) for i in indices))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, column_names, rows, source: str = "") -> "Table":
        """Build a table from a list of row tuples/lists."""
        column_names = list(column_names)
        if len(set(column_names)) != len(column_names):
            raise ValueError(f"duplicate column names in {column_names!r}")
        columns = {c: [] for c in column_names}
        for row in rows:
            if len(row) != len(column_names):
                raise ValueError(
                    f"row has {len(row)} cells, expected {len(column_names)}"
                )
            for c, v in zip(column_names, row, strict=True):
                columns[c].append(v)
        return cls(name, columns, source=source)

    @classmethod
    def empty(cls, name: str, source: str = "") -> "Table":
        """A table with no rows and no columns."""
        return cls(name, {}, source=source)


def normalize_corpus(corpus) -> dict:
    """``{name: Table}`` from a dict or iterable of Tables.

    The one corpus-normalization rule shared by every surface that
    accepts a repository (the serving engine, the background catalog
    refresher): entries must be Tables, and two *distinct* table objects
    may not share a name (the same object listed twice is fine — every
    internal map is name-keyed, and silently collapsing different
    content would corrupt discovery).
    """
    tables = corpus.values() if isinstance(corpus, dict) else corpus
    normalized = {}
    for table in tables:
        if not isinstance(table, Table):
            raise TypeError(f"corpus entries must be Tables, got {table!r}")
        if table.name in normalized and normalized[table.name] is not table:
            raise ValueError(f"duplicate table name {table.name!r} in corpus")
        normalized[table.name] = table
    return normalized
