"""Noise models for Definition 1 (noisy structured data).

Open-data tables frequently have missing headers, duplicated tuples and
missing cells; the corpus generator uses these transforms to make the
synthetic repository faithfully messy.
"""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.utils.rng import ensure_rng


def drop_headers(table: Table, fraction: float, seed=None) -> Table:
    """Replace a fraction of column names with positional placeholders."""
    rng = ensure_rng(seed)
    names = table.column_names
    n_drop = int(round(fraction * len(names)))
    drop = set(rng.choice(len(names), size=min(n_drop, len(names)), replace=False))
    cols = {}
    for i, c in enumerate(names):
        key = f"_col_{i}" if i in drop else c
        while key in cols:
            key += "_"
        cols[key] = list(table.column(c))
    return Table(table.name, cols, source=table.source)


def inject_missing_values(table: Table, fraction: float, seed=None) -> Table:
    """Set a fraction of cells (uniformly at random) to missing."""
    rng = ensure_rng(seed)
    cols = {}
    for c in table.column_names:
        cells = list(table.column(c))
        n_missing = int(round(fraction * len(cells)))
        if n_missing:
            hit = rng.choice(len(cells), size=n_missing, replace=False)
            for i in hit:
                cells[int(i)] = None
        cols[c] = cells
    return Table(table.name, cols, source=table.source)


def duplicate_rows(table: Table, fraction: float, seed=None) -> Table:
    """Append duplicated tuples (a fraction of the row count)."""
    rng = ensure_rng(seed)
    n_dup = int(round(fraction * table.num_rows))
    if n_dup == 0 or table.num_rows == 0:
        return table.copy()
    picks = [int(i) for i in rng.integers(0, table.num_rows, size=n_dup)]
    indices = list(range(table.num_rows)) + picks
    return table.select_rows(indices)


def shuffle_column(table: Table, column: str, seed=None) -> Table:
    """Randomly permute one column — used to build *erroneous* candidates
    whose join key no longer corresponds to the row content."""
    rng = ensure_rng(seed)
    cells = list(table.column(column))
    perm = rng.permutation(len(cells))
    shuffled = [cells[int(i)] for i in perm]
    return table.with_column(column, shuffled)
