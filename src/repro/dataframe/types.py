"""Column type inference and numeric coercion for noisy tables."""

from __future__ import annotations

from enum import Enum

import numpy as np


class ColumnType(Enum):
    """Coarse column types used by profiling and ML preprocessing."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"
    EMPTY = "empty"


def _is_missing(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    if isinstance(value, str) and value.strip() == "":
        return True
    return False


def is_missing(value) -> bool:
    """True when ``value`` represents a missing cell (None, NaN, '')."""
    return _is_missing(value)


def _coerce_number(value):
    """Return float(value) or None if it is not numeric."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return None if isinstance(value, float) and np.isnan(value) else float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def infer_column_type(values, categorical_threshold: int = 20) -> ColumnType:
    """Infer the :class:`ColumnType` of a list of raw cell values.

    A column is NUMERIC when every non-missing value parses as a number;
    CATEGORICAL when it is non-numeric with few distinct values; otherwise
    TEXT.  Fully missing columns are EMPTY.
    """
    non_missing = [v for v in values if not _is_missing(v)]
    if not non_missing:
        return ColumnType.EMPTY
    if all(_coerce_number(v) is not None for v in non_missing):
        return ColumnType.NUMERIC
    distinct = {str(v) for v in non_missing}
    if len(distinct) <= max(categorical_threshold, int(0.05 * len(non_missing))):
        return ColumnType.CATEGORICAL
    return ColumnType.TEXT


def to_float_array(values) -> np.ndarray:
    """Convert raw cells to a float array with NaN for missing/non-numeric."""
    out = np.empty(len(values), dtype=float)
    for i, v in enumerate(values):
        num = None if _is_missing(v) else _coerce_number(v)
        out[i] = np.nan if num is None else num
    return out


def encode_categorical(values) -> np.ndarray:
    """Encode raw cells as stable integer codes; missing becomes NaN.

    Codes are assigned by sorted string order so the encoding is
    deterministic across runs (no hash randomization).
    """
    keys = sorted({str(v) for v in values if not _is_missing(v)})
    mapping = {k: float(i) for i, k in enumerate(keys)}
    out = np.empty(len(values), dtype=float)
    for i, v in enumerate(values):
        out[i] = np.nan if _is_missing(v) else mapping[str(v)]
    return out
