"""Column type inference and numeric coercion for noisy tables.

The coercion loops live in :mod:`repro.kernels` — vectorized with exact
scalar fallbacks (``REPRO_KERNELS=reference`` forces the scalar path
everywhere).  This module keeps the public names and the
:class:`ColumnType` enum the rest of the library imports.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro import kernels


class ColumnType(Enum):
    """Coarse column types used by profiling and ML preprocessing."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"
    EMPTY = "empty"


def _is_missing(value) -> bool:
    return kernels.is_missing(value)


def is_missing(value) -> bool:
    """True when ``value`` represents a missing cell (None, NaN, '')."""
    return kernels.is_missing(value)


def _coerce_number(value):
    """Return float(value) or None if it is not numeric."""
    return kernels.coerce_number(value)


def infer_column_type(values, categorical_threshold: int = 20) -> ColumnType:
    """Infer the :class:`ColumnType` of a list of raw cell values.

    A column is NUMERIC when every non-missing value parses as a number;
    CATEGORICAL when it is non-numeric with few distinct values; otherwise
    TEXT.  Fully missing columns are EMPTY.
    """
    return ColumnType(kernels.infer_column_type(values, categorical_threshold))


def to_float_array(values) -> np.ndarray:
    """Convert raw cells to a float array with NaN for missing/non-numeric."""
    return kernels.to_float_array(values)


def encode_categorical(values) -> np.ndarray:
    """Encode raw cells as stable integer codes; missing becomes NaN.

    Codes are assigned by sorted string order so the encoding is
    deterministic across runs (no hash randomization).
    """
    return kernels.encode_categorical(values)
