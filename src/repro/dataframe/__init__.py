"""Column-oriented tabular substrate (pandas substitute).

Implements the paper's notion of *noisy structured data* (Definition 1):
tables may have missing header values, missing cell values (``None``) and
duplicate tuples.  The :class:`~repro.dataframe.table.Table` is the data
object every other subsystem (profiles, discovery, tasks, METAM) consumes.
"""

from repro.dataframe.table import Table
from repro.dataframe.types import ColumnType, infer_column_type, to_float_array
from repro.dataframe.ops import left_join, inner_join, union_tables, concat_columns
from repro.dataframe.io import read_csv, write_csv
from repro.dataframe.noise import (
    drop_headers,
    inject_missing_values,
    duplicate_rows,
    shuffle_column,
)

__all__ = [
    "Table",
    "ColumnType",
    "infer_column_type",
    "to_float_array",
    "left_join",
    "inner_join",
    "union_tables",
    "concat_columns",
    "read_csv",
    "write_csv",
    "drop_headers",
    "inject_missing_values",
    "duplicate_rows",
    "shuffle_column",
]
