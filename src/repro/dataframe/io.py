"""CSV read/write for :class:`~repro.dataframe.table.Table`."""

from __future__ import annotations

import csv
import os

from repro.dataframe.table import Table


def read_csv(path: str, name=None, source: str = "") -> Table:
    """Load a CSV file into a Table; empty cells become missing (None)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        return Table.empty(name or os.path.basename(path), source=source)
    header, *body = rows
    width = len(header)
    cells = []
    for row in body:
        padded = list(row) + [None] * (width - len(row))
        cells.append([None if v == "" else v for v in padded[:width]])
    return Table.from_rows(
        name or os.path.splitext(os.path.basename(path))[0],
        header,
        cells,
        source=source,
    )


def write_csv(table: Table, path: str) -> None:
    """Write a Table to CSV; missing cells become empty strings."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(
                ["" if row[c] is None else row[c] for c in table.column_names]
            )
