"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-scenarios``
    Show the built-in evaluation scenarios.
``run``
    Run METAM (and optionally baselines) on a scenario and print the
    utility-vs-queries chart; ``--save`` archives results as JSON.
``corpus-stats``
    Generate a synthetic corpus and print its Table-I characteristics.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import MetamConfig
from repro.core.plotting import render_traces
from repro.core.runner import compare_searchers
from repro.core.serialization import save_results
from repro.data import (
    clustering_scenario,
    collisions_scenario,
    entity_linking_scenario,
    fairness_scenario,
    housing_scenario,
    sat_howto_scenario,
    sat_whatif_scenario,
    schools_scenario,
)

SCENARIOS = {
    "housing": housing_scenario,
    "schools": schools_scenario,
    "collisions": collisions_scenario,
    "sat-whatif": sat_whatif_scenario,
    "sat-howto": sat_howto_scenario,
    "entity-linking": entity_linking_scenario,
    "fairness": fairness_scenario,
    "clustering": clustering_scenario,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="METAM: goal-oriented data discovery (ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenarios", help="list built-in scenarios")

    run = sub.add_parser("run", help="run METAM + baselines on a scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--budget", type=int, default=150, help="query budget")
    run.add_argument("--theta", type=float, default=1.0, help="target utility")
    run.add_argument("--epsilon", type=float, default=0.1, help="cluster radius")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--baselines",
        default="mw,overlap,uniform",
        help="comma-separated baselines (mw,overlap,uniform) or 'none'",
    )
    run.add_argument("--save", default=None, help="write results JSON here")
    run.add_argument("--no-chart", action="store_true", help="skip ASCII chart")

    stats = sub.add_parser("corpus-stats", help="Table-I style corpus stats")
    stats.add_argument("--tables", type=int, default=100)
    stats.add_argument("--style", choices=["open_data", "kaggle"], default="open_data")
    stats.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list(_args) -> int:
    for name in sorted(SCENARIOS):
        factory = SCENARIOS[name]
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:16s} {doc}")
    return 0


def _cmd_run(args) -> int:
    scenario = SCENARIOS[args.scenario](seed=args.seed)
    baselines = () if args.baselines == "none" else tuple(
        b.strip() for b in args.baselines.split(",") if b.strip()
    )
    query_points = tuple(
        sorted({max(1, args.budget // 10), args.budget // 4, args.budget // 2, args.budget})
    )
    report = compare_searchers(
        scenario,
        budget=args.budget,
        theta=args.theta,
        epsilon=args.epsilon,
        seeds=(args.seed,),
        baselines=baselines,
        query_points=query_points,
        metam_config=MetamConfig(
            theta=args.theta,
            query_budget=args.budget,
            epsilon=args.epsilon,
            seed=args.seed,
        ),
    )
    print(f"Scenario: {scenario.name} "
          f"({scenario.base.num_rows} rows, {len(scenario.corpus)} repo tables)\n")
    print(report.table())
    print()
    for name, result in report.runs[0].items():
        print(result.summary())
    if not args.no_chart:
        print()
        print(render_traces(report.runs[0], max_queries=args.budget))
    if args.save:
        save_results(report.runs[0], args.save)
        print(f"\nResults written to {args.save}")
    return 0


def _cmd_corpus_stats(args) -> int:
    from repro.data import corpus_characteristics, generate_corpus
    from repro.discovery import DiscoveryIndex

    corpus = generate_corpus(args.tables, style=args.style, seed=args.seed)
    index = DiscoveryIndex(min_containment=0.3, seed=args.seed).build(corpus)
    stats = corpus_characteristics(corpus, index)
    print(f"{'#Tables':>10} {'#Columns':>10} {'#Joinable':>10} {'Size':>12}")
    print(
        f"{stats['tables']:10d} {stats['columns']:10d} "
        f"{stats['joinable_columns']:10d} {stats['size_bytes']:11d}B"
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-scenarios":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "corpus-stats":
        return _cmd_corpus_stats(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
