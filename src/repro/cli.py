"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-scenarios``
    Show the built-in evaluation scenarios.
``run``
    Run METAM (and optionally baselines) on a scenario and print the
    utility-vs-queries chart; ``--save`` archives results as JSON.
    ``--async`` serves every searcher concurrently through the engine's
    worker pool (identical results, overlapped wall-clock);
    ``--no-result-cache`` disables the engine's result cache.  Ctrl-C
    cancels the comparison cooperatively and exits with status 130.
``stats``
    Run one small discovery twice on a telemetry-instrumented engine
    (store-backed refresher attached, second request served from the
    result cache) and print the engine's metrics in Prometheus text
    exposition format (``--json`` for the JSON snapshot).  ``repro run
    --metrics-out/--trace-out`` capture the same telemetry from a real
    comparison; the top-level ``--log-level``/``--log-json`` flags
    control the structured log stream on stderr.
``serve``
    Serve discovery over HTTP (see :mod:`repro.server`): session
    lifecycle, run submit/status/cancel, typed event streams as SSE,
    and Prometheus ``/metrics`` with per-tenant labels — against a
    built-in scenario (``--scenario``, its pre-configured task
    registered as ``scenario-task``) or a saved catalog directory
    (``--catalog``).  Admission control is on by default: per-tenant
    token buckets (``--tenant-rate``/``--tenant-burst``) and a queue
    budget (``--max-queue-depth``) answer overload with HTTP 429 +
    ``Retry-After``.  Ctrl-C drains gracefully (exit 1 when the drain
    times out).
``corpus-stats``
    Generate a synthetic corpus and print its Table-I characteristics —
    or, with ``--catalog DIR``, serve the report straight from a saved
    catalog's disk artifacts (no corpus generation, no column
    re-signing).
``catalog build|update|stats|gc|watch``
    Maintain a persistent discovery catalog on disk: ``build`` indexes a
    corpus into a catalog directory (``--migrate`` rewrites a legacy
    flat/JSON store into the sharded binary layout first), ``update``
    incrementally refreshes it (only new/changed tables are re-signed),
    ``stats`` reports its contents and footprint, ``gc`` reclaims
    unreferenced objects and (with ``--profile-budget`` /
    ``--result-budget``) evicts least-recently-used cached profile
    groups and persisted run records, and ``watch`` runs the background
    refresh loop in the foreground: every ``--interval`` seconds the
    recorded corpus parameters are re-read and the catalog re-synced,
    so changed parameters (an out-of-band build/update) or changed
    synthetic content are re-signed off any serving engine's query
    path.  ``repro run --staleness-budget`` serves through a background
    refresher, bounding how stale the served snapshot may be.
``lint``
    Run reprolint, the repo's invariant-aware static analysis pass
    (see :mod:`repro.analysis`): lock-order inversions and bare
    ``acquire()``, blocking calls under in-process mutexes, raw I/O
    bypassing the StoreBackend VFS, non-atomic writes to durable
    files, and metrics hygiene.  ``--json``/``--json-out`` emit the
    machine-readable report, ``--baseline``/``--update-baseline``
    manage the ratchet-down debt baseline, and ``--check-baseline``
    (CI mode) also fails on stale baseline entries.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading

from repro.api import (
    CancellationToken,
    DiscoveryEngine,
    RunCancelled,
    default_scenarios,
)
from repro.core.config import MetamConfig
from repro.core.plotting import render_traces
from repro.core.runner import compare_searchers, validate_comparison
from repro.core.serialization import save_results
from repro.obs.logcfg import _ensure_default_handler, configure_logging, get_logger

_SCENARIO_REGISTRY = default_scenarios()

#: name -> scenario factory: an import-time snapshot of the built-in
#: scenario registry (kept as a plain dict for backward compatibility).
#: To serve a custom scenario, register it on an engine's ``scenarios``
#: registry and drive discovery through the library API; the CLI's
#: choices are fixed at import.
SCENARIOS = {
    name: _SCENARIO_REGISTRY.get(name) for name in _SCENARIO_REGISTRY.names()
}


#: CLI diagnostics go through the structured "repro" logger: the text
#: formatter keeps the exact ``error: ...`` / ``warning: ...`` stderr
#: shapes the tests (and shell users) expect, while ``--log-json``
#: upgrades the same stream to machine-readable lines for free.
_log = get_logger("cli")


def _error(message: str) -> None:
    _ensure_default_handler()
    _log.error(message)


def _warn(message: str) -> None:
    _ensure_default_handler()
    _log.warning(message)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="METAM: goal-oriented data discovery (ICDE 2023 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="warning",
        help="threshold for the structured log stream on stderr "
        "(default warning; debug narrates runs, queries, and refresh "
        "cycles)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log lines as one JSON object per line instead of "
        "'level: message [k=v ...]' text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenarios", help="list built-in scenarios")

    run = sub.add_parser("run", help="run METAM + baselines on a scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--budget", type=int, default=150, help="query budget")
    run.add_argument("--theta", type=float, default=1.0, help="target utility")
    run.add_argument("--epsilon", type=float, default=0.1, help="cluster radius")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--baselines",
        default="mw,overlap,uniform",
        help="comma-separated baselines to run next to METAM — any "
        "registered searcher except metam itself (built-ins: mw, "
        "overlap, uniform, join_everything, and the ablations eq, nc, "
        "nceq; iarda needs a target column and is library-API only) — "
        "or 'none'",
    )
    run.add_argument("--save", default=None, help="write results JSON here")
    run.add_argument("--no-chart", action="store_true", help="skip ASCII chart")
    run.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve METAM and the baselines concurrently through the "
        "engine's worker pool (engine.submit); results are identical to "
        "the sequential path",
    )
    run.add_argument(
        "--staleness-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve through a background catalog refresher and bound "
        "how old (seconds) the served corpus snapshot may be — each "
        "request re-verifies the snapshot when the budget is exceeded; "
        "results are identical to the refresher-less path",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="after the comparison, write the serving engine's metrics "
        "here: Prometheus text exposition format, or a JSON snapshot "
        "when PATH ends in .json",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="after the comparison, write the engine's recent per-run "
        "trace trees here as a JSON list (one tree per served run: "
        "prepare/search spans with per-round and per-query marks)",
    )
    run.add_argument(
        "--no-result-cache",
        action="store_true",
        help="build the serving engine without its result cache.  The "
        "cache replays repeated identical requests on a long-lived "
        "engine; a single comparison issues each searcher once with "
        "pre-prepared candidates (which bypass the cache by design), "
        "so for 'repro run' itself this only pins down the engine "
        "configuration",
    )

    telemetry = sub.add_parser(
        "stats",
        help="run a small instrumented discovery and print the "
        "engine's metrics (Prometheus text, or --json)",
    )
    telemetry.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="clustering"
    )
    telemetry.add_argument("--budget", type=int, default=20, help="query budget")
    telemetry.add_argument("--theta", type=float, default=0.6, help="target utility")
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the JSON metrics snapshot (quantile estimates "
        "included) instead of Prometheus text",
    )

    serve = sub.add_parser(
        "serve",
        help="serve discovery over HTTP: sessions, run submit/status/"
        "cancel, SSE progress, /metrics (see repro.server)",
    )
    serve.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default=None,
        help="serve this built-in scenario's corpus (default: "
        "clustering when --catalog is not given); its pre-configured "
        "task is registered as 'scenario-task'",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help="serve a saved catalog directory instead (warm artifacts; "
        "the corpus is regenerated from the catalog's recorded "
        "parameters)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 = pick a free ephemeral port; the bound "
        "address is printed on stdout)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="engine worker pool size (= concurrent runs per catalog)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=32,
        help="undispatched runs held before submissions get 429",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=50.0,
        help="per-tenant token-bucket refill, requests/second "
        "(<= 0 disables refill: each tenant gets --tenant-burst "
        "requests ever)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=100.0,
        help="per-tenant token-bucket capacity",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a shutdown waits for executing runs to finish",
    )

    stats = sub.add_parser("corpus-stats", help="Table-I style corpus stats")
    stats.add_argument("--tables", type=int, default=100)
    stats.add_argument("--style", choices=["open_data", "kaggle"], default="open_data")
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="serve the report from a saved catalog's disk artifacts "
        "(no corpus generation or column re-signing — a transient LSH "
        "is rebuilt from stored signatures; the corpus flags are "
        "ignored)",
    )
    stats.add_argument(
        "--batch-tables",
        type=int,
        default=None,
        metavar="N",
        help="tables resident per batch during the catalog-backed "
        "joinable pass (bounds peak memory; default 256; 0 = hold "
        "everything in memory, the pre-streaming behavior; only "
        "meaningful with --catalog)",
    )

    catalog = sub.add_parser("catalog", help="persistent discovery catalog")
    catsub = catalog.add_subparsers(dest="catalog_command", required=True)

    build = catsub.add_parser(
        "build", help="index a (synthetic) corpus into a catalog directory"
    )
    build.add_argument("dir", help="catalog directory")
    build.add_argument("--tables", type=int, default=100)
    build.add_argument("--style", choices=["open_data", "kaggle"], default="open_data")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--num-perm", type=int, default=64)
    build.add_argument("--bands", type=int, default=16)
    build.add_argument("--min-containment", type=float, default=0.3)
    build.add_argument(
        "--migrate",
        action="store_true",
        help="rewrite a legacy (flat-layout / JSON-codec) catalog into "
        "the current sharded binary layout in place before refreshing",
    )
    build.add_argument(
        "--backend",
        choices=["local", "segments"],
        default=None,
        help="store backend for a fresh catalog root: 'local' (plain "
        "files, default) or 'segments' (append-only segment files with "
        "a compacting manifest; syncable across nodes) — an existing "
        "root keeps its recorded layout",
    )

    update = catsub.add_parser(
        "update", help="incrementally refresh a catalog against a corpus"
    )
    update.add_argument("dir", help="catalog directory")
    # Default to the corpus parameters recorded at build time, so a bare
    # 'catalog update DIR' refreshes the same corpus instead of silently
    # regenerating a different one and re-signing everything.
    update.add_argument("--tables", type=int, default=None)
    update.add_argument(
        "--style", choices=["open_data", "kaggle"], default=None
    )
    update.add_argument("--seed", type=int, default=None)
    update.add_argument(
        "--gc", action="store_true", help="drop objects no table references"
    )

    cat_stats = catsub.add_parser("stats", help="catalog contents and footprint")
    cat_stats.add_argument("dir", help="catalog directory")

    gc = catsub.add_parser(
        "gc", help="reclaim unreferenced objects and enforce profile budget"
    )
    gc.add_argument("dir", help="catalog directory")
    gc.add_argument(
        "--profile-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="evict least-recently-used cached profile groups until the "
        "profile section fits this many bytes",
    )
    gc.add_argument(
        "--result-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="evict least-recently-used persisted run records until the "
        "result section fits this many bytes",
    )

    sync = catsub.add_parser(
        "sync",
        help="copy a segments-backend catalog into a read-only replica "
        "root (only new/changed segment files are transferred)",
    )
    sync.add_argument("src", help="source catalog directory (segments backend)")
    sync.add_argument("dest", help="replica directory to create or update")

    watch = catsub.add_parser(
        "watch",
        help="run the background refresh loop in the foreground: poll "
        "the recorded corpus parameters and re-sync the catalog each "
        "interval",
    )
    watch.add_argument("dir", help="catalog directory")
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll period between refresh cycles (default 2s)",
    )
    watch.add_argument(
        "--cycles",
        type=int,
        default=None,
        metavar="N",
        help="stop after N cycles (default: run until Ctrl-C)",
    )

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the invariant-aware static analysis pass "
        "(lock discipline, blocking-under-lock, store-VFS boundary, "
        "atomic writes, metrics hygiene)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report on stdout",
    )
    lint.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of accepted pre-existing findings "
        "(default: ./reprolint-baseline.json when present)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings "
        "(the only way the baseline grows)",
    )
    lint.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail on stale baseline entries (fixed findings "
        "whose entries were not removed) — what CI runs",
    )
    lint.add_argument(
        "--select",
        metavar="CHECKS",
        default=None,
        help="comma-separated checker names to run (default: all)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel parse/check workers (default: auto)",
    )
    lint.add_argument(
        "--list-checks",
        action="store_true",
        help="list registered checkers and exit",
    )
    return parser


def _cmd_list(_args) -> int:
    for name in sorted(SCENARIOS):
        factory = SCENARIOS[name]
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:16s} {doc}")
    return 0


#: Result-cache budget for CLI-built engines (``--no-result-cache`` = 0).
_RESULT_CACHE_BYTES = 8 << 20


def _cancel_on_sigint(token: CancellationToken):
    """Install a SIGINT handler that fires ``token`` (cooperative cancel
    instead of a mid-run traceback); returns a restore callable.

    Cancellation is observed at utility queries, so a run deep in
    candidate preparation takes a moment to stop — a *second* Ctrl-C
    therefore restores the previous handler and raises
    ``KeyboardInterrupt``, so the user is never trapped behind a
    cooperative flag.  In environments without signal support (non-main
    thread, embedded interpreters) cancellation stays caller-driven."""

    def handler(signum, frame):
        if token.cancelled:
            signal.signal(signal.SIGINT, previous)
            raise KeyboardInterrupt
        token.cancel()

    try:
        previous = signal.signal(signal.SIGINT, handler)
    except ValueError:
        return lambda: None
    return lambda: signal.signal(signal.SIGINT, previous)


def _cmd_run(args) -> int:
    scenario = SCENARIOS[args.scenario](seed=args.seed)
    baselines = () if args.baselines == "none" else tuple(
        b.strip() for b in args.baselines.split(",") if b.strip()
    )
    query_points = tuple(
        sorted({max(1, args.budget // 10), args.budget // 4, args.budget // 2, args.budget})
    )
    # One engine serves every searcher of the run: all of them share the
    # prepared candidate set (and a warm catalog, if one is ever wired in).
    engine = DiscoveryEngine(
        corpus=scenario.corpus,
        result_cache_bytes=0 if args.no_result_cache else _RESULT_CACHE_BYTES,
    )
    refresher = None
    if args.staleness_budget is not None:
        if args.staleness_budget <= 0:
            _error(
                f"--staleness-budget must be > 0, got {args.staleness_budget}"
            )
            return 2
        from repro.catalog import CatalogRefresher

        # The scenario corpus is static, so the refresher's cycles are
        # cheap no-ops; the flag still exercises the full serving path:
        # every request verifies the snapshot against the budget and
        # candidate preparation warm-starts through the refresher's
        # catalog.  The catalog seed matches the run seed so warm-start
        # discovery reproduces the cold path exactly.
        refresher = CatalogRefresher(
            lambda: scenario.corpus,
            interval=max(args.staleness_budget / 2, 0.1),
            staleness_budget=args.staleness_budget,
            seed=args.seed,
        ).start()
        engine.attach_refresher(refresher)
    if "iarda" in baselines:
        _error(
            "the 'iarda' baseline needs a target column and is not "
            "available from the CLI; use the library API "
            "(DiscoveryRequest with options={'target_column': ...})"
        )
        return 2
    try:
        # Validated separately so bad flags fail fast with a clean usage
        # error, while genuine runtime failures keep their traceback.
        validate_comparison(engine, baselines)
    except ValueError as error:
        _error(str(error))
        return 2
    cancel = CancellationToken()
    restore_sigint = _cancel_on_sigint(cancel)
    try:
        report = compare_searchers(
            scenario,
            budget=args.budget,
            theta=args.theta,
            epsilon=args.epsilon,
            seeds=(args.seed,),
            baselines=baselines,
            query_points=query_points,
            metam_config=MetamConfig(
                theta=args.theta,
                query_budget=args.budget,
                epsilon=args.epsilon,
                seed=args.seed,
            ),
            engine=engine,
            parallel=args.use_async,
            cancel=cancel,
        )
    except RunCancelled:
        # A cancelled comparison must be distinguishable from success:
        # exit like an interrupted process (128 + SIGINT).
        _error("run cancelled before completion")
        return 130
    finally:
        restore_sigint()
        engine.shutdown()
        if refresher is not None:
            refresher.stop()
    print(f"Scenario: {scenario.name} "
          f"({scenario.base.num_rows} rows, {len(scenario.corpus)} repo tables)\n")
    print(report.table())
    print()
    for name, result in report.runs[0].items():
        print(result.summary())
    if not args.no_chart:
        print()
        print(render_traces(report.runs[0], max_queries=args.budget))
    if args.save:
        save_results(report.runs[0], args.save)
        print(f"\nResults written to {args.save}")
    # Telemetry outlives shutdown(): the registry and the trace ring
    # are plain in-memory state, so exporting after the pool is gone is
    # safe (and captures the final gauge values).
    if args.metrics_out:
        _write_metrics(engine, args.metrics_out)
        print(f"Metrics written to {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(list(engine.recent_traces), handle, indent=2)
        print(f"Traces written to {args.trace_out}")
    return 0


def _write_metrics(engine: DiscoveryEngine, path: str) -> None:
    payload = (
        engine.metrics_snapshot()
        if path.endswith(".json")
        else engine.metrics_prometheus()
    )
    with open(path, "w", encoding="utf-8") as handle:
        if isinstance(payload, str):
            handle.write(payload)
        else:
            json.dump(payload, handle, indent=2)


def _cmd_stats(args) -> int:
    """One small discovery on a fully instrumented engine.

    The engine serves through a store-backed refresher (shard-lock and
    store read/write metrics included), the first request goes through
    ``submit()`` (queue/pool gauges move), and the second identical
    ``discover()`` replays from the result cache — so the exposition
    covers every subsystem with real, nonzero samples.
    """
    import tempfile

    from repro.api.request import DiscoveryRequest
    from repro.catalog import CatalogRefresher, CatalogStore

    scenario = SCENARIOS[args.scenario](seed=args.seed)
    engine = DiscoveryEngine(
        corpus=scenario.corpus, result_cache_bytes=_RESULT_CACHE_BYTES
    )
    with tempfile.TemporaryDirectory() as tmp:
        refresher = CatalogRefresher(
            lambda: scenario.corpus,
            store=CatalogStore(os.path.join(tmp, "catalog")),
            interval=60.0,
            staleness_budget=300.0,
            seed=args.seed,
        ).start()
        engine.attach_refresher(refresher)
        # The task goes in by registry *name*: task objects are
        # uncacheable by design, and the second request must replay
        # from the result cache to put a hit on the board.
        engine.tasks.register(
            "cli-stats-task", lambda **_options: scenario.task
        )
        request = DiscoveryRequest(
            base=scenario.base,
            task="cli-stats-task",
            searcher="metam",
            config=MetamConfig(
                theta=args.theta,
                query_budget=args.budget,
                epsilon=0.1,
                seed=args.seed,
            ),
        )
        try:
            engine.submit(request).result()
            engine.discover(request)
        finally:
            engine.shutdown()
            refresher.stop()
    if args.as_json:
        print(json.dumps(engine.metrics_snapshot(), indent=2, sort_keys=True))
    else:
        print(engine.metrics_prometheus())
    return 0


def _cmd_serve(args) -> int:
    from repro.api.errors import InvalidRequest, NotFound
    from repro.server import DiscoveryService, ServiceConfig
    from repro.server.http import serve as serve_http

    if args.scenario is not None and args.catalog is not None:
        raise InvalidRequest("--scenario and --catalog are mutually exclusive")
    if args.workers < 1:
        raise InvalidRequest(f"--workers must be >= 1, got {args.workers}")

    if args.catalog is not None:
        catalog_dir = args.catalog
        name = os.path.basename(os.path.normpath(catalog_dir)) or "catalog"

        def factory(metrics=None):
            from repro.catalog import Catalog, CatalogStore
            from repro.data import generate_corpus

            store = CatalogStore(catalog_dir)
            if not store.exists():
                raise NotFound(f"no catalog at {catalog_dir}")
            params = _load_corpus_args(catalog_dir)
            if not params:
                raise NotFound(
                    f"catalog at {catalog_dir!r} has no recorded corpus "
                    "parameters (was it built outside the CLI?); serve a "
                    "--scenario instead"
                )
            corpus = generate_corpus(
                params["tables"], style=params["style"], seed=params["seed"]
            )
            return DiscoveryEngine(
                corpus=corpus,
                catalog=Catalog.load(store),
                metrics=metrics,
                max_workers=args.workers,
                result_cache_bytes=_RESULT_CACHE_BYTES,
            )

    else:
        scenario_name = args.scenario or "clustering"
        name = scenario_name
        # Built eagerly: the scenario's base table must be registered as
        # a request base (it is the run's input, not a join candidate,
        # so it is not part of the served corpus).
        scenario = SCENARIOS[scenario_name](seed=args.seed)
        bases = {name: {scenario.base.name: scenario.base}}

        def factory(metrics=None):
            engine = DiscoveryEngine(
                corpus=scenario.corpus,
                metrics=metrics,
                max_workers=args.workers,
                result_cache_bytes=_RESULT_CACHE_BYTES,
            )
            # Wire requests name tasks by registry entry; the scenario's
            # pre-configured task object goes in under a stable name.
            engine.tasks.register(
                "scenario-task", lambda **_options: scenario.task
            )
            return engine

    service = DiscoveryService(
        {name: factory},
        bases=bases if args.catalog is None else None,
        config=ServiceConfig(
            max_queue_depth=args.max_queue_depth,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            drain_timeout=args.drain_timeout,
        ),
    )
    server = serve_http(service, host=args.host, port=args.port)
    # The bound address goes on stdout (port 0 picks a free one): the
    # line scripts and the CI smoke job parse for readiness.
    print(f"serving catalog {name!r} on {server.url}", flush=True)
    if args.catalog is None:
        print(
            f"scenario base table: {scenario.base.name} "
            "(task name: scenario-task)",
            flush=True,
        )
    print("Ctrl-C drains and exits", flush=True)
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {}
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is not None:
            try:
                previous[signum] = signal.signal(signum, _request_stop)
            except ValueError:
                pass  # non-main thread: caller drives server.drain()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    clean = server.drain(timeout=args.drain_timeout)
    if not clean:
        _warn(f"drain timed out after {args.drain_timeout}s")
    print("drained" if clean else "drain timed out", flush=True)
    return 0 if clean else 1


def _cmd_corpus_stats(args) -> int:
    from repro.catalog import CatalogStoreError
    from repro.data import generate_corpus

    if args.batch_tables is not None and args.batch_tables < 0:
        _error(
            f"--batch-tables must be >= 0 (0 = hold everything in "
            f"memory), got {args.batch_tables}"
        )
        return 2
    if args.batch_tables is not None and args.catalog is None:
        # The in-memory path has no streaming pass; a silent no-op would
        # read as "memory is bounded" when it is not.
        _warn("--batch-tables only applies with --catalog; ignored")
    batch_tables = args.batch_tables if args.batch_tables is not None else 256
    batch = batch_tables if batch_tables > 0 else None
    try:
        if args.catalog is not None:
            engine = DiscoveryEngine.open(args.catalog, create=False)
        else:
            corpus = generate_corpus(
                args.tables, style=args.style, seed=args.seed
            )
            engine = DiscoveryEngine(corpus=corpus)
        stats = engine.corpus_stats(batch_tables=batch, seed=args.seed)
    except CatalogStoreError as error:
        _error(str(error))
        return 1
    print(f"{'#Tables':>10} {'#Columns':>10} {'#Joinable':>10} {'Size':>12}")
    print(
        f"{stats['tables']:10d} {stats['columns']:10d} "
        f"{stats['joinable_columns']:10d} {stats['size_bytes']:11d}B"
    )
    return 0


def _cmd_catalog(args) -> int:
    from repro.catalog import CatalogStoreError

    try:
        return _run_catalog_command(args)
    except CatalogStoreError as error:
        _error(str(error))
        return 1


def _run_catalog_command(args) -> int:
    import time

    from repro.catalog import Catalog, CatalogStore
    from repro.data import generate_corpus

    if args.catalog_command == "stats":
        store = CatalogStore(args.dir)
        if not store.exists():
            _error(f"no catalog at {args.dir}")
            return 1
        stats = store.stats()
        print(
            f"catalog at {args.dir} (layout v{stats['version']}, "
            f"{stats['backend']} backend)"
        )
        print(f"  tables          {stats['tables']}")
        print(f"  active leases   {stats['leases']}")
        print(f"  objects         {stats['objects']}")
        print(f"  profile groups  {stats['profile_groups']}")
        print(f"  profile entries {stats['profile_entries']}")
        print(f"  profile bytes   {stats['profile_bytes']}B")
        print(f"  run records     {stats['run_records']}")
        print(f"  result bytes    {stats['result_bytes']}B")
        print(f"  tombstones      {stats['tombstones']}")
        print(f"  disk            {stats['disk_bytes']}B")
        print(f"  config          {stats['config']}")
        return 0

    if args.catalog_command == "sync":
        return _cmd_catalog_sync(args)

    if args.catalog_command == "gc":
        catalog = Catalog.load(args.dir)
        dropped = catalog.gc()
        print(f"gc: dropped {dropped} orphaned objects")
        preserved = catalog.store.last_gc
        if preserved["skipped_leased"] or preserved["skipped_live"]:
            print(
                f"gc: preserved {preserved['skipped_leased']} objects under "
                f"active writer leases and {preserved['skipped_live']} "
                "re-referenced by a concurrent save"
            )
        if args.profile_budget is not None:
            evicted, freed = catalog.evict_profiles(args.profile_budget)
            print(
                f"gc: evicted {evicted} profile groups ({freed}B freed, "
                f"budget {args.profile_budget}B)"
            )
        if args.result_budget is not None:
            evicted, freed = catalog.store.evict_results(args.result_budget)
            print(
                f"gc: evicted {evicted} run records ({freed}B freed, "
                f"budget {args.result_budget}B)"
            )
        return 0

    if args.catalog_command == "watch":
        return _cmd_catalog_watch(args)

    # Open/validate the catalog before the (potentially expensive) corpus
    # generation, so bad paths and bad parameters fail fast.
    if args.catalog_command == "build":
        import warnings

        # Auto-detect first: an existing root's recorded layout wins, and
        # asking for the other backend is a refusal, not a silent rebuild.
        store = CatalogStore(args.dir)
        if (
            args.backend is not None
            and store.exists()
            and store.backend.name != args.backend
        ):
            _error(
                f"catalog at {args.dir!r} uses the {store.backend.name!r} "
                f"backend; refusing to open it as {args.backend!r}"
            )
            return 1
        if args.backend is not None and not store.exists():
            store = CatalogStore(args.dir, backend=args.backend)
        if store.exists():
            # Surface manifest corruption first (raises CatalogStoreError,
            # handled by the command wrapper).
            store.read_manifest()
            if args.migrate:
                counts = store.migrate()
                print(
                    f"migrated {counts['objects']} objects and "
                    f"{counts['profiles']} profile groups to the sharded "
                    "binary layout"
                )
            # Re-building over an existing catalog with a different — or
            # unknown — corpus definition would silently replace every
            # table right after the "config ignored" warning; direct the
            # user to 'update', which handles corpus changes explicitly.
            stored = _load_corpus_args(args.dir)
            requested = {
                "tables": args.tables,
                "style": args.style,
                "seed": args.seed,
            }
            if not stored:
                _error(
                    f"catalog at {args.dir!r} exists but has no "
                    "recorded corpus parameters (was it built outside the "
                    "CLI?); refusing to replace its tables — use 'catalog "
                    "update' with explicit flags"
                )
                return 1
            if stored != requested:
                _error(
                    f"catalog at {args.dir!r} was built from corpus "
                    f"{stored}, which differs from the requested {requested}; "
                    "use 'catalog update' with explicit flags to change the "
                    "corpus"
                )
                return 1

        # Catalog.open warns when an existing catalog overrides the
        # requested config; surface that on stdout for CLI users.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            try:
                catalog = Catalog.open(
                    store,
                    num_perm=args.num_perm,
                    bands=args.bands,
                    min_containment=args.min_containment,
                    seed=args.seed,
                )
            except ValueError as error:
                # Invalid index parameters (e.g. --num-perm not divisible
                # by --bands); only construction gets this treatment so
                # unrelated internal ValueErrors still surface loudly.
                _error(str(error))
                return 1
        for warning in caught:
            print(f"warning: {warning.message}")
    else:
        catalog = Catalog.load(args.dir)
    corpus_args = _effective_corpus_args(args)
    corpus = generate_corpus(
        corpus_args["tables"],
        style=corpus_args["style"],
        seed=corpus_args["seed"],
    )
    start = time.perf_counter()
    diff = catalog.refresh(corpus)
    catalog.save()
    _save_corpus_args(args.dir, corpus_args)
    if args.catalog_command == "update" and args.gc:
        dropped = catalog.gc()
        if dropped:
            print(f"gc: dropped {dropped} orphaned objects")
    elapsed = time.perf_counter() - start
    print(f"catalog at {args.dir}: {diff.summary()}")
    print(
        f"  {catalog.computed_columns} columns signed, "
        f"{catalog.loaded_columns} loaded from disk, {elapsed:.2f}s"
    )
    return 0


def _cmd_catalog_sync(args) -> int:
    from repro.catalog import CatalogStore

    store = CatalogStore(args.src)
    if not store.exists():
        _error(f"no catalog at {args.src}")
        return 1
    if store.backend.name != "segments":
        _error(
            f"catalog at {args.src!r} uses the {store.backend.name!r} "
            "backend; 'catalog sync' needs the segments backend (build "
            "with --backend segments)"
        )
        return 1
    report = store.backend.sync_into(args.dest)
    print(
        f"synced {args.src} -> {args.dest}: copied "
        f"{report['copied']}/{report['segments']} segment files, "
        f"{report['files']} blobs visible in the replica"
    )
    return 0


def _cmd_catalog_watch(args) -> int:
    """Foreground background-refresh loop over a CLI-built catalog.

    Each cycle re-reads the recorded corpus parameters (so an
    out-of-band ``catalog build``/``update`` that changed them is
    noticed, like an mtime watch on the parameter file), regenerates
    the synthetic corpus, and refreshes the catalog — changed or
    removed tables are re-signed or tombstoned off any serving
    engine's query path.
    """
    import time

    from repro.catalog import CatalogRefresher, CatalogStore, CatalogStoreError
    from repro.data import generate_corpus

    store = CatalogStore(args.dir)
    if not store.exists():
        _error(f"no catalog at {args.dir}")
        return 1
    if args.interval <= 0:
        _error(f"--interval must be > 0, got {args.interval}")
        return 2
    if args.cycles is not None and args.cycles < 1:
        _error(f"--cycles must be >= 1, got {args.cycles}")
        return 2
    if not _load_corpus_args(args.dir):
        _error(
            f"catalog at {args.dir!r} has no recorded corpus parameters "
            "(was it built outside the CLI?); run 'catalog build' or "
            "'catalog update' with explicit flags first"
        )
        return 1

    def source():
        params = _load_corpus_args(args.dir)
        if not params:
            raise CatalogStoreError(
                f"recorded corpus parameters at {args.dir!r} disappeared"
            )
        return generate_corpus(
            params["tables"], style=params["style"], seed=params["seed"]
        )

    refresher = CatalogRefresher(source, store=store, interval=args.interval)
    limit = args.cycles
    print(
        f"watching catalog at {args.dir} (interval {args.interval}s"
        + (f", {limit} cycles" if limit is not None else ", Ctrl-C to stop")
        + ")"
    )
    cycle = 0
    last_epoch = None
    try:
        while True:
            cycle += 1
            snapshot = refresher.refresh_now()
            # An unchanged cycle republishes the previous snapshot —
            # whose recorded diff is the *old* change — so "did this
            # cycle change anything" is the epoch, not snapshot.diff.
            if snapshot.epoch != last_epoch and snapshot.diff.changed:
                print(
                    f"cycle {cycle}: epoch {snapshot.epoch}, "
                    f"{snapshot.diff.summary()}"
                )
            else:
                print(f"cycle {cycle}: epoch {snapshot.epoch}, unchanged")
            last_epoch = snapshot.epoch
            if limit is not None and cycle >= limit:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print(f"\nstopped after {cycle} cycles")
        return 0


_CORPUS_ARGS_FILE = "cli_corpus.json"


def _load_corpus_args(catalog_dir: str) -> dict:
    from repro.catalog import CatalogStore

    return CatalogStore(catalog_dir).read_aux(_CORPUS_ARGS_FILE) or {}


def _effective_corpus_args(args) -> dict:
    """Corpus-generation parameters for a catalog command.

    ``build`` always uses the flags; ``update`` falls back per-flag to the
    parameters recorded by the previous build/update, so a bare update
    refreshes the same synthetic corpus.
    """
    from repro.catalog import CatalogStoreError

    stored = {}
    if args.catalog_command == "update":
        stored = _load_corpus_args(args.dir)
        missing = [
            flag
            for flag, value in (
                ("--tables", args.tables),
                ("--style", args.style),
                ("--seed", args.seed),
            )
            if value is None and flag.lstrip("-") not in stored
        ]
        if missing:
            # Guessing defaults here would regenerate a different corpus
            # and (with --gc) destroy the catalog's objects — refuse.
            raise CatalogStoreError(
                f"catalog at {args.dir!r} has no recorded corpus parameters "
                f"(was it built outside the CLI?); pass {', '.join(missing)} "
                "explicitly"
            )
    return {
        "tables": args.tables if args.tables is not None else stored["tables"],
        "style": args.style if args.style is not None else stored["style"],
        "seed": args.seed if args.seed is not None else stored["seed"],
    }


def _save_corpus_args(catalog_dir: str, corpus_args: dict) -> None:
    from repro.catalog import CatalogStore

    CatalogStore(catalog_dir).write_aux(_CORPUS_ARGS_FILE, corpus_args)


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        checker_catalogue,
        default_baseline_path,
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )

    if args.list_checks:
        for name, description in checker_catalogue():
            print(f"{name}: {description}")
        return 0

    root = Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else [root / "src"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        _error(f"no such path: {missing[0]}")
        return 2
    checks = None
    if args.select:
        checks = [c.strip() for c in args.select.split(",") if c.strip()]

    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else default_baseline_path(root)
    )
    entries = []
    if not args.update_baseline:
        try:
            entries = load_baseline(baseline_path)
        except ValueError as error:
            _error(str(error))
            return 2

    try:
        result = lint_paths(
            paths,
            root=root,
            checks=checks,
            jobs=args.jobs,
            baseline_entries=entries,
        )
    except KeyError as error:
        _error(str(error.args[0]) if error.args else str(error))
        return 2

    if args.update_baseline:
        count = write_baseline(
            baseline_path,
            [f for f in result.findings if f.severity == "error"],
            result.sources,
        )
        print(
            f"reprolint: baselined {count} finding(s) in {baseline_path}"
        )
        return 0

    report = render_json(result)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_text(result))
    return 0 if result.ok(check_stale=args.check_baseline) else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # (Re)configure on every entry so repeated in-process invocations
    # (the test suite, notebooks) pick up the current flags and the
    # current stderr.
    configure_logging(
        level=args.log_level, fmt="json" if args.log_json else "text"
    )
    from repro.api.errors import ReproError

    try:
        if args.command == "list-scenarios":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "corpus-stats":
            return _cmd_corpus_stats(args)
        if args.command == "catalog":
            return _cmd_catalog(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as error:
        # One taxonomy, one mapping: the same typed errors the HTTP
        # layer turns into statuses exit here with their pinned codes
        # (invalid-request=2, overloaded=75, cancelled=130, else 1).
        _error(error.message)
        return error.exit_code
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
