"""Task protocol: a black box with a normalized utility score."""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.model_selection import group_train_test_split, train_test_split
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)


def split_features(
    table: Table,
    x,
    y,
    group_column=None,
    test_fraction: float = 0.3,
    seed=None,
):
    """Row split for task evaluation, group-aware when requested.

    When ``group_column`` names a column of ``table`` (e.g. the join key),
    the split keeps whole groups together so per-key columns cannot leak
    label information into the test set.
    """
    if group_column is not None:
        if group_column in table:
            return group_train_test_split(
                x,
                y,
                table.column(group_column),
                test_fraction=test_fraction,
                seed=seed,
            )
        # A requested group column that is absent silently weakens the
        # leakage guarantee — surface the fallback instead of hiding it.
        _log.debug(
            "group column absent; falling back to row split",
            group_column=group_column,
        )
    return train_test_split(x, y, test_fraction=test_fraction, seed=seed)


def canonical_column(column_name: str) -> str:
    """Canonical name of a possibly-augmented column.

    Augmentation columns are named ``"<join path>#<output column>"``; the
    canonical name is the output column, which scenario generators keep
    globally unique so ground-truth membership checks are unambiguous.
    """
    return column_name.split("#")[-1]


class Task:
    """A downstream task with a utility function in [0, 1] (Definition 5).

    Implementations must be deterministic given the same input table —
    METAM's query cache and trace reproducibility rely on it.  The paper's
    guidance applies: the utility need not be monotonic; METAM's
    monotonicity-certification wrapper handles regressions.
    """

    name = "task"

    def utility(self, table: Table) -> float:
        """Normalized task quality when run on ``table``."""
        raise NotImplementedError

    #: Utility resolution.  Model-backed tasks report scores at two
    #: decimals; sub-resolution fluctuations are holdout noise, and
    #: quantizing prevents the monotone wrapper from ratcheting on it.
    quantum = 0.0

    def _clip(self, value: float) -> float:
        value = float(min(1.0, max(0.0, value)))
        if self.quantum > 0.0:
            value = round(round(value / self.quantum) * self.quantum, 10)
        return value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
