"""How-to analysis task (§VI-A): which attributes to update for a goal?"""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.preprocessing import Imputer
from repro.tasks.base import Task, canonical_column
from repro.tasks.causal.discovery import dependent_columns


class HowToTask(Task):
    """Identify attributes whose update would move ``outcome_column``.

    Flags attributes that stay dependent on the outcome under PC-style
    conditioning; utility is the fraction of the ground-truth causal
    drivers discovered.  Like what-if, the utility is monotone in the set
    of true drivers present in the table.
    """

    name = "how_to"

    def __init__(
        self,
        outcome_column: str,
        truth_causes,
        base_columns=(),
        exclude_columns=(),
        alpha: float = 0.05,
        max_cond: int = 1,
    ):
        if not truth_causes:
            raise ValueError("truth_causes must be a non-empty collection")
        self.outcome_column = outcome_column
        self.truth_causes = set(truth_causes)
        self.base_columns = tuple(base_columns)
        self.exclude_columns = set(exclude_columns)
        self.alpha = alpha
        self.max_cond = max_cond

    def utility(self, table: Table) -> float:
        if self.outcome_column not in table:
            raise KeyError(f"outcome {self.outcome_column!r} not in table")
        columns = [
            c for c in table.column_names if c not in self.exclude_columns
        ]
        matrix = Imputer().fit_transform(table.to_matrix(columns))
        index = {c: i for i, c in enumerate(columns)}
        pivot = index[self.outcome_column]
        candidates = [index[c] for c in columns if c != self.outcome_column]
        cond_pool = [
            index[c]
            for c in self.base_columns
            if c in index and c != self.outcome_column
        ]
        flagged = dependent_columns(
            matrix,
            pivot,
            candidates,
            cond_pool=cond_pool,
            alpha=self.alpha,
            max_cond=self.max_cond,
        )
        found = {
            canonical_column(columns[i])
            for i in flagged
            if canonical_column(columns[i]) in self.truth_causes
        }
        return self._clip(len(found) / len(self.truth_causes))
