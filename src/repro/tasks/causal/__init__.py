"""Prescriptive-analytics tasks: causal discovery, what-if, how-to.

PC-lite (Fisher-z partial correlation CI tests) replaces causal-learn;
the synthetic corpus plants a known DAG so ground truth is checkable.
"""

from repro.tasks.causal.graph import CausalGraph
from repro.tasks.causal.citest import fisher_z_independence
from repro.tasks.causal.discovery import pc_skeleton, dependent_columns
from repro.tasks.causal.whatif import WhatIfTask
from repro.tasks.causal.howto import HowToTask

__all__ = [
    "CausalGraph",
    "fisher_z_independence",
    "pc_skeleton",
    "dependent_columns",
    "WhatIfTask",
    "HowToTask",
]
