"""What-if analysis task (§VI-A): which attributes does an update affect?"""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.preprocessing import Imputer
from repro.tasks.base import Task, canonical_column
from repro.tasks.causal.discovery import dependent_columns


class WhatIfTask(Task):
    """Given a hypothetical update to ``treatment_column``, identify the
    attributes causally affected by it.

    The task runs CI tests between the treatment and every candidate
    attribute (conditioning on the base attributes, PC-style) and flags the
    dependent ones.  Utility is the fraction of the ground-truth affected
    attributes that have been discovered and flagged — the paper's
    "fraction of correctly identified attributes (p-value ≤ 0.05)".  The
    score is monotone: augmenting another true effect can only raise it.
    """

    name = "what_if"

    def __init__(
        self,
        treatment_column: str,
        truth_affected,
        base_columns=(),
        exclude_columns=(),
        alpha: float = 0.05,
        max_cond: int = 1,
    ):
        if not truth_affected:
            raise ValueError("truth_affected must be a non-empty collection")
        self.treatment_column = treatment_column
        self.truth_affected = set(truth_affected)
        self.base_columns = tuple(base_columns)
        self.exclude_columns = set(exclude_columns)
        self.alpha = alpha
        self.max_cond = max_cond

    def utility(self, table: Table) -> float:
        if self.treatment_column not in table:
            raise KeyError(f"treatment {self.treatment_column!r} not in table")
        columns = [
            c for c in table.column_names if c not in self.exclude_columns
        ]
        matrix = Imputer().fit_transform(table.to_matrix(columns))
        index = {c: i for i, c in enumerate(columns)}
        pivot = index[self.treatment_column]
        candidates = [
            index[c] for c in columns if c != self.treatment_column
        ]
        cond_pool = [
            index[c]
            for c in self.base_columns
            if c in index and c != self.treatment_column
        ]
        flagged = dependent_columns(
            matrix,
            pivot,
            candidates,
            cond_pool=cond_pool,
            alpha=self.alpha,
            max_cond=self.max_cond,
        )
        found = {
            canonical_column(columns[i])
            for i in flagged
            if canonical_column(columns[i]) in self.truth_affected
        }
        return self._clip(len(found) / len(self.truth_affected))
