"""Conditional-independence testing via partial correlation + Fisher z."""

from __future__ import annotations

import numpy as np

from repro.utils.stats import fisher_z_pvalue, partial_correlation


def fisher_z_independence(
    data: np.ndarray,
    i: int,
    j: int,
    cond: tuple = (),
    alpha: float = 0.05,
):
    """Test independence of columns ``i`` and ``j`` given ``cond``.

    Returns ``(independent, p_value)``; ``independent`` is True when we
    fail to reject H0 at level ``alpha``.  Rows containing NaN in the
    involved columns are dropped.
    """
    involved = [i, j, *cond]
    sub = data[:, involved].astype(float)
    mask = ~np.isnan(sub).any(axis=1)
    clean = data[mask]
    n = int(mask.sum())
    if n < len(cond) + 4:
        return True, 1.0
    r = partial_correlation(clean, i, j, cond=tuple(cond))
    p = fisher_z_pvalue(r, n, n_cond=len(cond))
    return p > alpha, p
