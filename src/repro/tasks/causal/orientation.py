"""PC edge orientation: v-structure detection plus Meek rules R1-R3.

Completes the PC-lite substrate (causal-learn substitute): given the
skeleton and the separating sets found during pruning, orient colliders
``i → k ← j`` whenever ``k`` is outside sep(i, j), then propagate with the
Meek rules until fixpoint.  The output is a CPDAG: a mix of directed and
undirected (still-ambiguous) edges.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.tasks.causal.citest import fisher_z_independence


def skeleton_with_sepsets(
    data: np.ndarray,
    alpha: float = 0.05,
    max_cond: int = 1,
):
    """PC pruning that also records separating sets.

    Returns ``(edges, sepsets)`` with ``edges`` a set of frozensets and
    ``sepsets[{i, j}]`` the conditioning set that separated a removed pair.
    """
    n_vars = data.shape[1]
    edges = {frozenset((i, j)) for i, j in combinations(range(n_vars), 2)}
    sepsets = {}
    for order in range(max_cond + 1):
        for edge in sorted(edges, key=sorted):
            i, j = sorted(edge)
            others = [k for k in range(n_vars) if k not in (i, j)]
            for cond in combinations(others, order):
                independent, _p = fisher_z_independence(
                    data, i, j, cond=cond, alpha=alpha
                )
                if independent:
                    edges.discard(edge)
                    sepsets[edge] = set(cond)
                    break
    return edges, sepsets


class Cpdag:
    """Partially directed graph: directed arcs + undirected edges."""

    def __init__(self, n_vars: int):
        self.n_vars = n_vars
        self.directed = set()    # (i, j) meaning i -> j
        self.undirected = set()  # frozenset({i, j})

    def has_any_edge(self, i: int, j: int) -> bool:
        return (
            frozenset((i, j)) in self.undirected
            or (i, j) in self.directed
            or (j, i) in self.directed
        )

    def orient(self, i: int, j: int) -> bool:
        """Turn an undirected edge into ``i → j``; False if impossible."""
        edge = frozenset((i, j))
        if edge not in self.undirected:
            return False
        self.undirected.discard(edge)
        self.directed.add((i, j))
        return True

    def parents(self, j: int) -> set:
        return {i for (i, k) in self.directed if k == j}

    def neighbors_undirected(self, i: int) -> set:
        out = set()
        for edge in self.undirected:
            if i in edge:
                out |= edge - {i}
        return out


def orient_edges(edges, sepsets, n_vars: int) -> Cpdag:
    """Build a CPDAG from a skeleton via v-structures + Meek R1-R3."""
    graph = Cpdag(n_vars)
    graph.undirected = set(edges)

    # V-structures: i - k - j with i,j non-adjacent and k not in sep(i,j).
    for i, j in combinations(range(n_vars), 2):
        if frozenset((i, j)) in edges:
            continue
        sep = sepsets.get(frozenset((i, j)), set())
        for k in range(n_vars):
            if k in (i, j) or k in sep:
                continue
            if frozenset((i, k)) in edges and frozenset((j, k)) in edges:
                graph.orient(i, k)
                graph.orient(j, k)

    # Meek rules to fixpoint.
    changed = True
    while changed:
        changed = False
        changed |= _meek_rule1(graph)
        changed |= _meek_rule2(graph)
        changed |= _meek_rule3(graph)
    return graph


def _meek_rule1(graph: Cpdag) -> bool:
    """a → b and b - c with a,c non-adjacent  ⇒  b → c."""
    changed = False
    for a, b in list(graph.directed):
        for c in list(graph.neighbors_undirected(b)):
            if c != a and not graph.has_any_edge(a, c):
                changed |= graph.orient(b, c)
    return changed


def _meek_rule2(graph: Cpdag) -> bool:
    """a → b → c and a - c  ⇒  a → c."""
    changed = False
    for a, b in list(graph.directed):
        for b2, c in list(graph.directed):
            if b2 != b or c == a:
                continue
            if frozenset((a, c)) in graph.undirected:
                changed |= graph.orient(a, c)
    return changed


def _meek_rule3(graph: Cpdag) -> bool:
    """a - b, a - c, a - d, c → b, d → b, c,d non-adjacent  ⇒  a → b."""
    changed = False
    for b in range(graph.n_vars):
        parents = graph.parents(b)
        for c, d in combinations(sorted(parents), 2):
            if graph.has_any_edge(c, d):
                continue
            for a in list(graph.neighbors_undirected(b)):
                if (
                    frozenset((a, c)) in graph.undirected
                    and frozenset((a, d)) in graph.undirected
                ):
                    changed |= graph.orient(a, b)
    return changed


def pc_cpdag(data: np.ndarray, alpha: float = 0.05, max_cond: int = 1) -> Cpdag:
    """Full PC: skeleton + sepsets + orientation."""
    edges, sepsets = skeleton_with_sepsets(data, alpha=alpha, max_cond=max_cond)
    return orient_edges(edges, sepsets, data.shape[1])
