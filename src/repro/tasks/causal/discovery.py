"""PC-lite causal structure discovery (causal-learn substitute).

``pc_skeleton`` recovers the undirected adjacency structure with
order-≤ ``max_cond`` conditional-independence tests; ``dependent_columns``
is the lighter primitive the what-if/how-to tasks use — which columns stay
dependent on a pivot variable after conditioning attempts.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.tasks.causal.citest import fisher_z_independence


def pc_skeleton(
    data: np.ndarray,
    alpha: float = 0.05,
    max_cond: int = 1,
) -> set:
    """Undirected skeleton as a set of frozenset({i, j}) edges.

    Starts from the complete graph and removes an edge as soon as any
    conditioning set (up to ``max_cond`` neighbours) renders the pair
    independent — the standard PC pruning loop.
    """
    n_vars = data.shape[1]
    edges = {frozenset((i, j)) for i, j in combinations(range(n_vars), 2)}
    for order in range(max_cond + 1):
        for edge in sorted(edges, key=sorted):
            i, j = sorted(edge)
            others = [k for k in range(n_vars) if k not in (i, j)]
            removed = False
            for cond in combinations(others, order):
                independent, _p = fisher_z_independence(
                    data, i, j, cond=cond, alpha=alpha
                )
                if independent:
                    edges.discard(edge)
                    removed = True
                    break
            if removed:
                continue
    return edges


def dependent_columns(
    data: np.ndarray,
    pivot: int,
    candidates,
    cond_pool=(),
    alpha: float = 0.05,
    max_cond: int = 1,
) -> set:
    """Columns among ``candidates`` that remain dependent on ``pivot``.

    A candidate survives when no conditioning set drawn from ``cond_pool``
    (size ≤ ``max_cond``) makes it independent of the pivot — the causal
    relevance test behind what-if/how-to analysis.
    """
    out = set()
    pool = [c for c in cond_pool if c != pivot]
    for candidate in candidates:
        if candidate == pivot:
            continue
        independent, _p = fisher_z_independence(
            data, pivot, candidate, cond=(), alpha=alpha
        )
        if independent:
            continue
        separated = False
        usable = [c for c in pool if c != candidate]
        for order in range(1, max_cond + 1):
            for cond in combinations(usable, order):
                independent, _p = fisher_z_independence(
                    data, pivot, candidate, cond=cond, alpha=alpha
                )
                if independent:
                    separated = True
                    break
            if separated:
                break
        if not separated:
            out.add(candidate)
    return out
