"""Causal DAG wrapper used by scenario generators and assertions."""

from __future__ import annotations

import networkx as nx


class CausalGraph:
    """A directed acyclic graph over named variables.

    Scenario generators build one of these while synthesizing data; tasks
    use it as ground truth (descendants for what-if, parents for how-to).
    """

    def __init__(self):
        self._graph = nx.DiGraph()

    def add_variable(self, name: str) -> "CausalGraph":
        self._graph.add_node(name)
        return self

    def add_edge(self, cause: str, effect: str) -> "CausalGraph":
        self._graph.add_edge(cause, effect)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(cause, effect)
            raise ValueError(f"edge {cause!r}→{effect!r} would create a cycle")
        return self

    @property
    def variables(self) -> list:
        return sorted(self._graph.nodes)

    def parents(self, variable: str) -> set:
        return set(self._graph.predecessors(variable))

    def children(self, variable: str) -> set:
        return set(self._graph.successors(variable))

    def descendants(self, variable: str) -> set:
        return set(nx.descendants(self._graph, variable))

    def ancestors(self, variable: str) -> set:
        return set(nx.ancestors(self._graph, variable))

    def topological_order(self) -> list:
        return list(nx.topological_sort(self._graph))

    def has_edge(self, cause: str, effect: str) -> bool:
        return self._graph.has_edge(cause, effect)

    def __contains__(self, variable: str) -> bool:
        return variable in self._graph
