"""Clustering task (§VI-A.4): satiety-score clustering of raw materials."""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.dataframe.types import to_float_array
from repro.ml.kmeans import KMeans
from repro.ml.preprocessing import Imputer
from repro.tasks.base import Task


class ClusteringTask(Task):
    """Cluster rows on available numeric features and score how tight the
    ``score_column`` is within each cluster.

    Utility = 1 − (largest within-cluster radius of the score column,
    normalized by the score's range) — the paper's "additive inverse of the
    largest cluster radius".  A feature correlated with the true categories
    (the ONI score in the paper) pulls same-category rows together, which
    tightens the score spread inside clusters and raises utility.
    """

    name = "clustering"

    def __init__(
        self,
        score_column: str,
        n_clusters: int = 3,
        exclude_columns=(),
        seed: int = 0,
    ):
        self.score_column = score_column
        self.n_clusters = n_clusters
        self.exclude_columns = set(exclude_columns)
        self.seed = seed

    def utility(self, table: Table) -> float:
        if self.score_column not in table:
            raise KeyError(f"score column {self.score_column!r} not in table")
        features = [
            c
            for c in table.column_names
            if c != self.score_column and c not in self.exclude_columns
        ]
        score = to_float_array(table.column(self.score_column))
        mask = ~np.isnan(score)
        if mask.sum() < self.n_clusters:
            return 0.0
        score = score[mask]
        span = float(score.max() - score.min())
        if span == 0.0:
            return 1.0
        if not features:
            return 0.0
        matrix = Imputer().fit_transform(table.to_matrix(features))[mask]
        # Min-max scaling (not z-scoring): it preserves the concentration of
        # multi-modal informative features, which z-scoring flattens.
        lo = matrix.min(axis=0)
        span_f = matrix.max(axis=0) - lo
        span_f[span_f == 0.0] = 1.0
        matrix = (matrix - lo) / span_f
        model = KMeans(
            n_clusters=self.n_clusters, n_init=5, seed=self.seed
        ).fit(matrix)
        worst = 0.0
        for label in range(self.n_clusters):
            members = score[model.labels_ == label]
            if len(members):
                center = float(members.mean())
                radius = float(np.max(np.abs(members - center)))
                worst = max(worst, radius)
        return self._clip(1.0 - worst / span)
