"""Fair classification task (§VI-A.4): fairness-aware feature selection."""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import f1_score
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import Imputer, LabelEncoder
from repro.tasks.base import Task
from repro.utils.stats import pearson


class FairClassificationTask(Task):
    """Predict ``target_column`` while discarding features correlated with
    the sensitive attribute (fairness-aware feature selection, [49]).

    Features with |corr(feature, sensitive)| above ``fairness_threshold``
    are dropped before training; utility is the holdout F-score.  This
    reproduces the paper's tension: highly predictive attributes are often
    unfair, so single-profile rankings fail while METAM's weighted profile
    combination succeeds.
    """

    name = "fair_classification"
    quantum = 0.01

    def __init__(
        self,
        target_column: str,
        sensitive_column: str,
        fairness_threshold: float = 0.3,
        exclude_columns=(),
        n_estimators: int = 5,
        max_depth: int = 6,
        test_fraction: float = 0.3,
        seed: int = 0,
    ):
        self.target_column = target_column
        self.sensitive_column = sensitive_column
        self.fairness_threshold = fairness_threshold
        self.exclude_columns = set(exclude_columns)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.test_fraction = test_fraction
        self.seed = seed

    def _fair_features(self, table: Table) -> list:
        sensitive = table.encoded(self.sensitive_column)
        fair = []
        for column in table.column_names:
            if column in (self.target_column, self.sensitive_column):
                continue
            if column in self.exclude_columns:
                continue
            r = abs(pearson(table.encoded(column), sensitive))
            if r <= self.fairness_threshold:
                fair.append(column)
        return fair

    def utility(self, table: Table) -> float:
        for column in (self.target_column, self.sensitive_column):
            if column not in table:
                raise KeyError(f"column {column!r} not in table")
        features = self._fair_features(table)
        if not features:
            return 0.0
        x = Imputer().fit_transform(table.to_matrix(features))
        y = LabelEncoder().fit_transform(table.column(self.target_column))
        if len(set(y.tolist())) < 2:
            return 0.0
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, test_fraction=self.test_fraction, seed=self.seed
        )
        model = RandomForestClassifier(
            n_estimators=self.n_estimators, max_depth=self.max_depth, seed=self.seed
        )
        model.fit(x_tr, y_tr)
        return self._clip(f1_score(y_te, model.predict(x_te), average="macro"))
