"""Supervised classification task (§VI-A): random-forest F1/accuracy."""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, f1_score
from repro.ml.preprocessing import LabelEncoder, prepare_features
from repro.tasks.base import Task, split_features
from repro.utils.validation import check_in_choices


class ClassificationTask(Task):
    """Train a random forest to predict ``target_column``; utility is the
    holdout accuracy or F-score.

    ``exclude_columns`` keeps identifier columns (join keys) out of the
    feature matrix, exactly as an analyst would.  The holdout split and the
    forest are seeded, so the utility is a deterministic function of the
    input table.
    """

    name = "classification"
    quantum = 0.01

    def __init__(
        self,
        target_column: str,
        metric: str = "accuracy",
        exclude_columns=(),
        n_estimators: int = 5,
        max_depth: int = 6,
        test_fraction: float = 0.3,
        n_splits: int = 2,
        group_column: str = None,
        seed: int = 0,
    ):
        check_in_choices(metric, "metric", {"accuracy", "f1"})
        self.target_column = target_column
        self.metric = metric
        self.exclude_columns = set(exclude_columns)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.test_fraction = test_fraction
        self.n_splits = max(1, n_splits)
        self.group_column = group_column
        self.seed = seed

    def _features(self, table: Table) -> list:
        return [
            c
            for c in table.column_names
            if c != self.target_column and c not in self.exclude_columns
        ]

    def utility(self, table: Table) -> float:
        if self.target_column not in table:
            raise KeyError(f"target {self.target_column!r} not in table")
        features = self._features(table)
        if not features:
            return 0.0
        x, y_raw = prepare_features(table, features, self.target_column)
        y = LabelEncoder().fit_transform(y_raw)
        if len(set(y.tolist())) < 2:
            return 0.0
        # Average over a few seeded splits to stabilize the utility — a
        # noisy oracle needlessly penalizes every querying strategy.
        scores = []
        for split in range(self.n_splits):
            x_tr, x_te, y_tr, y_te = split_features(
                table,
                x,
                y,
                group_column=self.group_column,
                test_fraction=self.test_fraction,
                seed=self.seed + split,
            )
            model = RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed + split,
            )
            model.fit(x_tr, y_tr)
            predictions = model.predict(x_te)
            if self.metric == "accuracy":
                scores.append(accuracy(y_te, predictions))
            else:
                scores.append(f1_score(y_te, predictions, average="macro"))
        return self._clip(sum(scores) / len(scores))
