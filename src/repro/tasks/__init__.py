"""Downstream tasks (§II-B): black boxes mapping a table to a utility.

Every task implements :class:`~repro.tasks.base.Task` — ``utility(table)``
returns a normalized score in [0, 1] (Definition 5).  METAM never looks
inside a task; it only queries it.
"""

from repro.tasks.base import Task, canonical_column
from repro.tasks.classification import ClassificationTask
from repro.tasks.regression import RegressionTask
from repro.tasks.automl_task import AutoMLTask
from repro.tasks.entity_linking import EntityLinkingTask, KnowledgeBase
from repro.tasks.clustering_task import ClusteringTask
from repro.tasks.fairness import FairClassificationTask
from repro.tasks.causal import WhatIfTask, HowToTask, CausalGraph, pc_skeleton

__all__ = [
    "Task",
    "canonical_column",
    "ClassificationTask",
    "RegressionTask",
    "AutoMLTask",
    "EntityLinkingTask",
    "KnowledgeBase",
    "ClusteringTask",
    "FairClassificationTask",
    "WhatIfTask",
    "HowToTask",
    "CausalGraph",
    "pc_skeleton",
]
