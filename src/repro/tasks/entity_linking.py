"""Entity-linking task (§VI-A.4) against a synthetic knowledge base.

Substitution note (DESIGN.md §4): the paper links city names to Wikidata;
offline we use a :class:`KnowledgeBase` with deliberately ambiguous names
("Birmingham" exists in several states).  Augmenting a state column gives
the linker the disambiguating context — the exact mechanism of the paper.
"""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.dataframe.types import is_missing
from repro.tasks.base import Task


class KnowledgeBase:
    """Maps entity mentions to candidate entities with context attributes.

    Each entity is ``(entity_id, context)`` where ``context`` is a set of
    normalized strings (e.g., the state a city belongs to).  A mention with
    a unique candidate links directly; an ambiguous mention needs a row
    cell matching exactly one candidate's context.
    """

    def __init__(self):
        self._entities = {}

    def add_entity(self, mention: str, entity_id: str, context) -> "KnowledgeBase":
        normalized = mention.strip().lower()
        self._entities.setdefault(normalized, []).append(
            (entity_id, {str(c).strip().lower() for c in context})
        )
        return self

    def candidates(self, mention: str) -> list:
        return list(self._entities.get(str(mention).strip().lower(), []))

    def __len__(self) -> int:
        return len(self._entities)


class EntityLinkingTask(Task):
    """Link ``mention_column`` cells to knowledge-base entities; utility is
    linking accuracy against ``truth_column``.

    The linker uses every other cell of a row as potential context: an
    ambiguous mention resolves when exactly one candidate's context
    intersects the row's cell values.
    """

    name = "entity_linking"

    def __init__(
        self,
        mention_column: str,
        truth_column: str,
        knowledge_base: KnowledgeBase,
        exclude_columns=(),
    ):
        self.mention_column = mention_column
        self.truth_column = truth_column
        self.kb = knowledge_base
        self.exclude_columns = set(exclude_columns) | {truth_column}

    def _link_row(self, mention, context_cells) -> str:
        candidates = self.kb.candidates(mention)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0][0]
        context = {
            str(v).strip().lower() for v in context_cells if not is_missing(v)
        }
        matching = [eid for eid, ctx in candidates if ctx & context]
        if len(matching) == 1:
            return matching[0]
        return None  # still ambiguous

    def utility(self, table: Table) -> float:
        for column in (self.mention_column, self.truth_column):
            if column not in table:
                raise KeyError(f"column {column!r} not in table")
        context_columns = [
            c
            for c in table.column_names
            if c != self.mention_column and c not in self.exclude_columns
        ]
        mentions = table.column(self.mention_column)
        truth = table.column(self.truth_column)
        correct = 0
        for i, mention in enumerate(mentions):
            if is_missing(mention):
                continue
            cells = [table.column(c)[i] for c in context_columns]
            if self._link_row(mention, cells) == truth[i]:
                correct += 1
        if not mentions:
            return 0.0
        return self._clip(correct / len(mentions))
