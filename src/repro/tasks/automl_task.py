"""AutoML task (Fig. 4a): utility from the MiniAutoML search."""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.ml.automl import MiniAutoML
from repro.ml.metrics import accuracy
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import LabelEncoder, prepare_features
from repro.tasks.base import Task


class AutoMLTask(Task):
    """Run the MiniAutoML searcher (TPOT substitute) and report holdout
    accuracy of the winning pipeline as the utility."""

    name = "automl_classification"
    quantum = 0.01

    def __init__(
        self,
        target_column: str,
        exclude_columns=(),
        budget: int = 4,
        test_fraction: float = 0.3,
        seed: int = 0,
    ):
        self.target_column = target_column
        self.exclude_columns = set(exclude_columns)
        self.budget = budget
        self.test_fraction = test_fraction
        self.seed = seed

    def utility(self, table: Table) -> float:
        if self.target_column not in table:
            raise KeyError(f"target {self.target_column!r} not in table")
        features = [
            c
            for c in table.column_names
            if c != self.target_column and c not in self.exclude_columns
        ]
        if not features:
            return 0.0
        x, y_raw = prepare_features(table, features, self.target_column)
        y = LabelEncoder().fit_transform(y_raw)
        if len(set(y.tolist())) < 2:
            return 0.0
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, test_fraction=self.test_fraction, seed=self.seed
        )
        automl = MiniAutoML(
            mode="classification", budget=self.budget, seed=self.seed
        )
        automl.fit(x_tr, y_tr)
        return self._clip(accuracy(y_te, automl.predict(x_te)))
