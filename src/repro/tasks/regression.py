"""Supervised regression task (§VI-A): utility = 1 − normalized MAE."""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.dataframe.types import to_float_array
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mean_absolute_error
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import prepare_features
from repro.tasks.base import Task


class RegressionTask(Task):
    """Random-forest regression; utility is ``1 − MAE`` after normalization
    (the paper reports 1 − MAE directly).

    MAE is normalized by the error of a predict-the-training-mean baseline,
    so the utility reads as "fraction of naive error removed": 0 for a
    model no better than the mean, approaching 1 for a perfect fit.  This
    keeps utility in [0, 1] for any target scale — the paper's collision
    counts included — while leaving headroom for augmentations to show.
    """

    name = "regression"
    quantum = 0.01

    def __init__(
        self,
        target_column: str,
        exclude_columns=(),
        n_estimators: int = 5,
        max_depth: int = 6,
        test_fraction: float = 0.3,
        n_splits: int = 2,
        seed: int = 0,
    ):
        self.target_column = target_column
        self.exclude_columns = set(exclude_columns)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.test_fraction = test_fraction
        self.n_splits = max(1, n_splits)
        self.seed = seed

    def utility(self, table: Table) -> float:
        if self.target_column not in table:
            raise KeyError(f"target {self.target_column!r} not in table")
        features = [
            c
            for c in table.column_names
            if c != self.target_column and c not in self.exclude_columns
        ]
        if not features:
            return 0.0
        x = prepare_features(table, features)
        y = to_float_array(table.column(self.target_column))
        mask = ~np.isnan(y)
        x, y = x[mask], y[mask]
        if len(y) < 10:
            return 0.0
        lo, hi = float(y.min()), float(y.max())
        if hi == lo:
            return 0.0
        y_norm = (y - lo) / (hi - lo)
        # Averaged seeded splits stabilize the oracle (see ClassificationTask).
        ratios = []
        for split in range(self.n_splits):
            x_tr, x_te, y_tr, y_te = train_test_split(
                x, y_norm, test_fraction=self.test_fraction, seed=self.seed + split
            )
            model = RandomForestRegressor(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed + split,
            )
            model.fit(x_tr, y_tr)
            mae = mean_absolute_error(y_te, model.predict(x_te))
            baseline = mean_absolute_error(
                y_te, np.full_like(y_te, float(y_tr.mean()))
            )
            ratios.append(mae / baseline if baseline > 0 else 1.0)
        return self._clip(1.0 - sum(ratios) / len(ratios))
