"""METAM: Goal-Oriented Data Discovery (ICDE 2023) — full reproduction.

Quickstart::

    from repro import DiscoveryEngine, DiscoveryRequest, MetamConfig
    from repro.data import housing_scenario

    scenario = housing_scenario(seed=0)
    engine = DiscoveryEngine(corpus=scenario.corpus)
    run = engine.discover(DiscoveryRequest(
        base=scenario.base, task=scenario.task, searcher="metam",
        config=MetamConfig(theta=0.8)))
    print(run.result.summary())

The free functions ``prepare_candidates``/``run_metam``/``run_baseline``
are deprecated shims over the engine (byte-identical results; see
:mod:`repro.pipeline` for the migration table).
"""

from repro.api import (
    CancellationToken,
    CandidateSpec,
    DiscoveryEngine,
    DiscoveryRequest,
    DiscoveryRun,
)
from repro.catalog import Catalog, CatalogRefresher, CatalogSnapshot, CatalogStore
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.core.result import SearchResult
from repro.pipeline import prepare_candidates, run_baseline, run_metam

__version__ = "1.7.0"

__all__ = [
    "DiscoveryEngine",
    "DiscoveryRequest",
    "DiscoveryRun",
    "CandidateSpec",
    "CancellationToken",
    "Catalog",
    "CatalogRefresher",
    "CatalogSnapshot",
    "CatalogStore",
    "MetamConfig",
    "Metam",
    "SearchResult",
    "prepare_candidates",
    "run_baseline",
    "run_metam",
    "__version__",
]
