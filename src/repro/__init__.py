"""METAM: Goal-Oriented Data Discovery (ICDE 2023) — full reproduction.

Quickstart::

    from repro import prepare_candidates, run_metam, MetamConfig
    from repro.data import housing_scenario

    scenario = housing_scenario(seed=0)
    candidates = prepare_candidates(scenario.base, scenario.corpus)
    result = run_metam(candidates, scenario.base, scenario.corpus,
                       scenario.task, MetamConfig(theta=0.8))
    print(result.summary())
"""

from repro.catalog import Catalog, CatalogStore
from repro.core.config import MetamConfig
from repro.core.metam import Metam
from repro.core.result import SearchResult
from repro.pipeline import prepare_candidates, run_baseline, run_metam

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "CatalogStore",
    "MetamConfig",
    "Metam",
    "SearchResult",
    "prepare_candidates",
    "run_baseline",
    "run_metam",
    "__version__",
]
