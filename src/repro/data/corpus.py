"""Whole-corpus generation and the Table I characteristics report."""

from __future__ import annotations

from repro.dataframe.noise import (
    drop_headers,
    duplicate_rows,
    inject_missing_values,
)
from repro.dataframe.table import Table
from repro.data.generator import make_keys
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_choices

_WORDS = [
    "crime", "taxi", "income", "school", "health", "permit", "budget",
    "housing", "transit", "park", "census", "election", "inspection",
    "license", "energy", "water", "traffic", "zoning", "payroll", "grant",
]


def generate_corpus(
    n_tables: int,
    style: str = "open_data",
    n_key_pools: int = 8,
    seed: int = 0,
) -> list:
    """A repository of noisy tables sharing key populations.

    ``style`` tweaks the shape statistics: ``open_data`` yields many small
    portal-style tables; ``kaggle`` yields fewer, wider competition-style
    tables.  Tables within the same key pool are joinable, so the corpus
    has realistic join structure for Table I's '#Joinable Columns'.
    """
    check_in_choices(style, "style", {"open_data", "kaggle"})
    rng = ensure_rng(seed)
    if style == "open_data":
        rows_range, cols_range = (30, 300), (2, 6)
        source = "open-data-portal"
    else:
        rows_range, cols_range = (100, 800), (4, 12)
        source = "kaggle"

    pools = [
        make_keys(int(rng.integers(50, 400)), prefix=f"k{p}_", start=0)
        for p in range(n_key_pools)
    ]
    corpus = []
    for t in range(n_tables):
        pool = pools[int(rng.integers(0, n_key_pools))]
        n_rows = min(int(rng.integers(*rows_range)), len(pool))
        keys = list(rng.choice(pool, size=n_rows, replace=False))
        n_cols = int(rng.integers(*cols_range))
        word_a = _WORDS[int(rng.integers(0, len(_WORDS)))]
        word_b = _WORDS[int(rng.integers(0, len(_WORDS)))]
        columns = {"key": keys}
        for c in range(n_cols):
            columns[f"{word_b}_metric_{c}"] = rng.normal(size=n_rows).tolist()
        table = Table(f"{source}_{word_a}_{t:05d}", columns, source=source)
        # Definition 1 noise: missing cells, duplicate tuples, lost headers.
        table = inject_missing_values(table, float(rng.uniform(0, 0.15)), seed=int(rng.integers(1 << 30)))
        if rng.uniform() < 0.3:
            table = duplicate_rows(table, float(rng.uniform(0, 0.1)), seed=int(rng.integers(1 << 30)))
        if rng.uniform() < 0.2:
            table = drop_headers(table, 0.25, seed=int(rng.integers(1 << 30)))
        corpus.append(table)
    return corpus


def corpus_characteristics(
    corpus=None, index=None, size_sample: int = 1000, catalog=None
) -> dict:
    """The four Table I columns for a corpus.

    ``#Joinable Columns`` counts indexed columns participating in at least
    one joinable pair (requires ``index``; reported as 0 without one).
    Size is the in-memory cell estimate in bytes, sampled via
    :meth:`Table.estimated_byte_size`.

    ``catalog`` (a :class:`repro.catalog.Catalog`) switches the report to
    the disk-artifact path: every statistic — including the joinable
    count — is served from persisted catalog objects, so no corpus needs
    to be loaded or re-signed and ``corpus`` may be ``None`` (see
    :meth:`~repro.catalog.Catalog.corpus_stats` for the memory profile).
    """
    if catalog is not None:
        return catalog.corpus_stats(size_sample=size_sample)
    if corpus is None:
        raise ValueError("corpus_characteristics needs a corpus or a catalog")
    n_tables = len(corpus)
    n_columns = sum(t.num_columns for t in corpus)
    size_bytes = sum(t.estimated_byte_size(size_sample) for t in corpus)
    joinable = 0
    if index is not None:
        seen = set()
        for table in corpus:
            for column in table.column_names:
                for ref, _score in index.joinable(table, column, exclude_table=table.name):
                    seen.add(ref)
        joinable = len(seen)
    return {
        "tables": n_tables,
        "columns": n_columns,
        "joinable_columns": joinable,
        "size_bytes": size_bytes,
    }
