"""Semi-synthetic evaluation protocol (Fig. 5).

The paper samples five random augmentations from the repository and
synthesizes a new column in a randomly chosen dataset from them, using it
as (i) the prediction attribute of a classification task and (ii) the
outcome/treatment variable of causal tasks.  Averaging many seeded
instantiations gives the Fig. 5 curves.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import RepositoryBuilder, make_keys
from repro.data.scenarios import Scenario
from repro.dataframe.table import Table
from repro.tasks.classification import ClassificationTask
from repro.tasks.causal.howto import HowToTask
from repro.tasks.causal.whatif import WhatIfTask
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_choices

_TASK_TYPES = {"classification", "causality", "what_if", "how_to"}


def semisynthetic_scenario(
    task_type: str,
    seed: int = 0,
    n_keys: int = 200,
    n_tables: int = 30,
    n_donors: int = 5,
    n_erroneous: int = 5,
    n_traps: int = 4,
) -> Scenario:
    """One semi-synthetic instantiation.

    ``n_tables`` single-column repository tables are generated; ``n_donors``
    of them become the hidden generators of the synthesized target column.
    ``task_type`` selects the Fig. 5 panel:

    * ``classification`` — binary label from the donor mixture;
    * ``causality`` — marginal-dependence causal discovery (max_cond=0);
    * ``what_if`` — donors are the affected set of the synthesized column;
    * ``how_to`` — donors are the causal drivers of the synthesized column.
    """
    check_in_choices(task_type, "task_type", _TASK_TYPES)
    if n_donors > n_tables:
        raise ValueError(f"n_donors ({n_donors}) exceeds n_tables ({n_tables})")
    rng = ensure_rng(seed)
    keys = make_keys(n_keys, prefix="rec", start=1)
    builder = RepositoryBuilder(keys, key_column="record_id", seed=seed)

    columns = {}
    for i in range(n_tables):
        values = rng.normal(size=n_keys)
        column = f"attr_{i:03d}"
        builder.add_relevant(f"table_{i:03d}", column, values.tolist())
        columns[column] = values

    donor_names = sorted(
        list(columns), key=lambda _: rng.uniform()
    )[:n_donors]
    weights = rng.uniform(0.6, 1.4, size=n_donors)
    signal = sum(
        w * columns[name] for w, name in zip(weights, donor_names, strict=True)
    ) + rng.normal(scale=0.4, size=n_keys)

    builder.add_erroneous(n_erroneous, signal_values=signal.tolist())
    feature_a = rng.normal(size=n_keys)
    builder.add_traps(n_traps, feature_a.tolist())
    base_cols = {
        "record_id": keys,
        "feature_a": feature_a.tolist(),
        "feature_b": rng.normal(size=n_keys).tolist(),
    }

    truth = set(donor_names)
    if task_type == "classification":
        label = np.where(signal > np.median(signal), "one", "zero")
        base_cols["synth_target"] = label.tolist()
        task = ClassificationTask(
            "synth_target", exclude_columns=("record_id",), seed=seed
        )
    else:
        base_cols["synth_target"] = signal.tolist()
        if task_type == "causality":
            task = HowToTask(
                "synth_target",
                truth_causes=truth,
                exclude_columns=("record_id",),
                max_cond=0,
            )
        elif task_type == "what_if":
            task = WhatIfTask(
                "synth_target",
                truth_affected=truth,
                base_columns=("feature_a", "feature_b"),
                exclude_columns=("record_id",),
            )
        else:  # how_to
            task = HowToTask(
                "synth_target",
                truth_causes=truth,
                base_columns=("feature_a", "feature_b"),
                exclude_columns=("record_id",),
            )

    base = Table("semisynthetic_base", base_cols, source="open-data")
    return Scenario(
        name=f"semisynthetic_{task_type}",
        base=base,
        corpus=builder.build(),
        task=task,
        truth_columns=truth,
        key_columns=("record_id",),
        extras={"donors": donor_names},
    )
