"""Low-level repository construction: relevant/irrelevant/erroneous tables.

The builder mimics the structure of city open-data portals: many small
tables keyed by a shared identifier (zipcode, school id, …).  Three
candidate classes mirror §VI-C's robustness experiment:

* **relevant** — a column carrying signal about the scenario's latent
  state, correctly keyed;
* **irrelevant** — correctly keyed but statistically independent noise;
* **erroneous** — a signal column whose key column is shuffled, i.e., the
  incorrect joins that make up ~60% of real discovered candidates.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table
from repro.utils.rng import ensure_rng

# Realistic open-data vocabulary for irrelevant distractor tables.
_DISTRACTOR_THEMES = [
    ("street_trees", "tree_count"),
    ("film_permits", "permit_count"),
    ("noise_complaints", "complaint_count"),
    ("bike_racks", "rack_count"),
    ("wifi_hotspots", "hotspot_count"),
    ("fire_hydrants", "hydrant_count"),
    ("food_trucks", "truck_count"),
    ("parking_meters", "meter_count"),
    ("pothole_reports", "report_count"),
    ("recycling_bins", "bin_count"),
    ("dog_licenses", "license_count"),
    ("graffiti_sites", "site_count"),
    ("street_lights", "light_count"),
    ("water_fountains", "fountain_count"),
    ("bus_shelters", "shelter_count"),
    ("event_permits", "event_count"),
]


def make_keys(n: int, prefix: str = "key", start: int = 10000) -> list:
    """Deterministic string join keys, e.g. zipcodes or school ids."""
    return [f"{prefix}{start + i}" for i in range(n)]


class RepositoryBuilder:
    """Accumulates repository tables around a shared key population."""

    def __init__(self, keys, key_column: str = "key", source: str = "open-data", seed=0):
        self.keys = list(keys)
        self.key_column = key_column
        self.source = source
        self._rng = ensure_rng(seed)
        self._tables = {}
        self._theme_cursor = 0

    # ------------------------------------------------------------------
    def _unique_name(self, name: str) -> str:
        out = name
        counter = 2
        while out in self._tables:
            out = f"{name}_{counter}"
            counter += 1
        return out

    def _coverage_rows(self, coverage: float) -> list:
        """Row indices for a table covering a fraction of the keys."""
        n = len(self.keys)
        kept = max(2, int(round(coverage * n)))
        if kept >= n:
            return list(range(n))
        picks = self._rng.choice(n, size=kept, replace=False)
        return sorted(int(i) for i in picks)

    def add_table(self, name: str, columns: dict, key_column=None, coverage: float = 1.0) -> Table:
        """Add a table keyed by this builder's key population.

        ``coverage`` < 1 keeps only a random key subset, which is what
        makes the *overlap* profile vary across candidates like it does in
        real portals (Overlap-ranking would otherwise be degenerate).
        """
        key_column = key_column or self.key_column
        name = self._unique_name(name)
        rows = self._coverage_rows(coverage)
        cols = {key_column: [self.keys[i] for i in rows]}
        for col_name, values in columns.items():
            values = list(values)
            if len(values) != len(self.keys):
                raise ValueError(
                    f"{len(values)} values for {len(self.keys)} keys in {name!r}"
                )
            cols[col_name] = [values[i] for i in rows]
        table = Table(name, cols, source=self.source)
        self._tables[name] = table
        return table

    def add_relevant(self, name: str, column: str, values, coverage: float = None) -> Table:
        """A correctly-keyed table whose column carries scenario signal.

        Default coverage is drawn from [0.6, 0.9]: useful open-data tables
        rarely cover the whole key population.
        """
        if coverage is None:
            coverage = float(self._rng.uniform(0.6, 0.9))
        return self.add_table(name, {column: list(values)}, coverage=coverage)

    def add_irrelevant(self, count: int, coverage_range=(0.5, 1.0)) -> list:
        """Correctly-keyed tables with independent noise columns."""
        tables = []
        for i in range(count):
            theme, column = _DISTRACTOR_THEMES[
                self._theme_cursor % len(_DISTRACTOR_THEMES)
            ]
            self._theme_cursor += 1
            values = self._rng.normal(
                loc=float(self._rng.uniform(10, 100)),
                scale=float(self._rng.uniform(1, 10)),
                size=len(self.keys),
            ).tolist()
            suffix = "" if i < len(_DISTRACTOR_THEMES) else f"_{i}"
            coverage = float(self._rng.uniform(*coverage_range))
            tables.append(
                self.add_table(f"{theme}{suffix}", {column: values}, coverage=coverage)
            )
        return tables

    def add_traps(self, count: int, decoy_values, coverage: float = 1.0) -> list:
        """Tables correlated with a *base feature* but useless for the task.

        ``decoy_values`` is a base-table feature (aligned with the keys);
        trap columns are noisy copies of it.  Traps have high correlation
        and MI profiles against ``Din`` yet zero utility gain — the
        profile-noise regime where single-profile rankings (Overlap, a
        dominant MW expert) follow the profile into dead ends.
        """
        decoy = np.asarray(list(decoy_values), dtype=float)
        if len(decoy) != len(self.keys):
            raise ValueError(
                f"{len(decoy)} decoy values for {len(self.keys)} keys"
            )
        scale = float(decoy.std()) or 1.0
        tables = []
        for i in range(count):
            noisy = decoy + self._rng.normal(scale=0.3 * scale, size=len(decoy))
            tables.append(
                self.add_table(
                    f"lookalike_{i}", {f"shadow_metric_{i}": noisy.tolist()},
                    coverage=coverage,
                )
            )
        return tables

    def add_erroneous(self, count: int, signal_values=None, coverage: float = 1.0) -> list:
        """Tables whose key column is shuffled — incorrect joins.

        If ``signal_values`` is given the column would have been useful had
        the join been correct, matching the paper's "incorrect join due to
        incorrect key" failure mode.  Full default coverage makes these
        candidates look *best* to overlap ranking — the paper's trap.
        """
        tables = []
        for i in range(count):
            if signal_values is not None:
                values = list(signal_values)
            else:
                values = self._rng.normal(size=len(self.keys)).tolist()
            rows = self._coverage_rows(coverage)
            shuffled = list(rows)
            self._rng.shuffle(shuffled)
            name = self._unique_name(f"misjoined_{i}")
            # Built directly (not via add_table) so keys stay shuffled
            # relative to the value column.
            table = Table(
                name,
                {
                    self.key_column: [self.keys[i] for i in shuffled],
                    f"badcol_{i}": [values[i] for i in rows],
                },
                source=self.source,
            )
            self._tables[name] = table
            tables.append(table)
        return tables

    def build(self) -> dict:
        """Snapshot of the repository as a name → Table mapping."""
        return dict(self._tables)
