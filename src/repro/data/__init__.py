"""Synthetic open-data corpus generators (DESIGN.md §4 substitution).

Each *scenario* packages an input dataset ``Din``, a repository of
joinable tables (relevant / irrelevant / erroneous candidates), a task,
and the planted ground truth — everything an experiment needs.
"""

from repro.data.generator import RepositoryBuilder, make_keys
from repro.data.scenarios import (
    Scenario,
    housing_scenario,
    schools_scenario,
    collisions_scenario,
    sat_whatif_scenario,
    sat_howto_scenario,
    entity_linking_scenario,
    fairness_scenario,
    clustering_scenario,
    unions_scenario,
    themed_scenario,
)
from repro.data.semisynthetic import semisynthetic_scenario
from repro.data.corpus import generate_corpus, corpus_characteristics

__all__ = [
    "RepositoryBuilder",
    "make_keys",
    "Scenario",
    "housing_scenario",
    "schools_scenario",
    "collisions_scenario",
    "sat_whatif_scenario",
    "sat_howto_scenario",
    "entity_linking_scenario",
    "fairness_scenario",
    "clustering_scenario",
    "unions_scenario",
    "themed_scenario",
    "semisynthetic_scenario",
    "generate_corpus",
    "corpus_characteristics",
]
