"""Scenario generators reproducing the paper's evaluation workloads.

Each function returns a :class:`Scenario`: the input dataset ``Din``, a
repository of candidate tables, the downstream task, and the planted
ground-truth augmentations.  The statistical structure mirrors the paper's
anecdotes — e.g., housing prices are driven by a latent neighborhood
quality that income/crime/Walmart/taxi/grocery tables reveal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.generator import RepositoryBuilder, make_keys
from repro.dataframe.table import Table
from repro.tasks.base import Task
from repro.tasks.classification import ClassificationTask
from repro.tasks.clustering_task import ClusteringTask
from repro.tasks.entity_linking import EntityLinkingTask, KnowledgeBase
from repro.tasks.fairness import FairClassificationTask
from repro.tasks.regression import RegressionTask
from repro.tasks.causal.howto import HowToTask
from repro.tasks.causal.whatif import WhatIfTask
from repro.utils.rng import ensure_rng


@dataclass
class Scenario:
    """A complete experimental setting: Din + repository + task + truth."""

    name: str
    base: Table
    corpus: dict
    task: Task
    truth_columns: set
    key_columns: tuple
    extras: dict = field(default_factory=dict)

    @property
    def n_candidates_hint(self) -> int:
        """Rough candidate count: non-key columns across the repository."""
        return sum(t.num_columns - 1 for t in self.corpus.values())


def _standardize(values: np.ndarray) -> np.ndarray:
    std = values.std()
    return (values - values.mean()) / (std if std > 0 else 1.0)


# ---------------------------------------------------------------------------
# Predictive analytics
# ---------------------------------------------------------------------------
def housing_scenario(
    seed: int = 0,
    n_keys: int = 80,
    n_rows: int = 320,
    n_irrelevant: int = 15,
    n_erroneous: int = 8,
    n_traps: int = 6,
) -> Scenario:
    """Housing-price classification (§VI-A, Fig. 3a).

    A latent neighborhood quality per zipcode drives prices; the repository
    carries income, crime, Walmart-presence, taxi-trip and grocery-store
    tables that reveal it — the paper's own anecdote set.
    """
    rng = ensure_rng(seed)
    zips = make_keys(n_keys, prefix="", start=60601)
    quality = rng.normal(size=n_keys)
    assignment = rng.integers(0, n_keys, size=n_rows)

    sqft = rng.uniform(600, 4200, size=n_rows)
    rooms = rng.integers(1, 7, size=n_rows)
    age = rng.uniform(0, 90, size=n_rows)
    # Zip-level attribute independent of quality: the decoy trap columns
    # correlate with it (high profile value) but carry no label signal.
    lot_size = rng.normal(size=n_keys)
    price_score = (
        2.4 * quality[assignment]
        + 0.8 * _standardize(sqft)
        + rng.normal(scale=0.5, size=n_rows)
    )
    label = np.where(price_score > np.median(price_score), "high", "low")

    base = Table(
        "redfin_houses",
        {
            "zipcode": [zips[i] for i in assignment],
            "sqft": sqft.tolist(),
            "rooms": rooms.tolist(),
            "age": age.tolist(),
            "avg_lot_size": lot_size[assignment].tolist(),
            "price_label": label.tolist(),
        },
        source="open-data",
    )

    builder = RepositoryBuilder(zips, key_column="zipcode", seed=seed)
    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder.add_relevant(
        "acs_income", "median_income", (1.6 * quality + noise(0.5)).tolist()
    )
    builder.add_relevant(
        "police_reports", "crime_count", (-1.6 * quality + noise(0.5)).tolist()
    )
    builder.add_relevant(
        "retail_locations", "walmart_presence", (quality > 0).astype(float).tolist()
    )
    builder.add_relevant(
        "tlc_trips", "taxi_trips", (1.2 * quality + noise(0.6)).tolist()
    )
    builder.add_relevant(
        "business_licenses", "grocery_stores", (1.2 * quality + noise(0.6)).tolist()
    )
    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous, signal_values=(1.5 * quality).tolist())
    builder.add_traps(n_traps, lot_size.tolist())

    return Scenario(
        name="housing_classification",
        base=base,
        corpus=builder.build(),
        task=ClassificationTask(
            "price_label",
            metric="accuracy",
            exclude_columns=("zipcode",),
            group_column="zipcode",
            seed=seed,
        ),
        truth_columns={
            "median_income",
            "crime_count",
            "walmart_presence",
            "taxi_trips",
            "grocery_stores",
        },
        key_columns=("zipcode",),
    )


def schools_scenario(
    seed: int = 0,
    n_keys: int = 260,
    n_irrelevant: int = 15,
    n_erroneous: int = 8,
    n_traps: int = 6,
) -> Scenario:
    """School-performance classification (§VI-A, ARDA's schools workload)."""
    rng = ensure_rng(seed)
    schools = make_keys(n_keys, prefix="sch", start=100)
    quality = rng.normal(size=n_keys)

    budget = 0.5 * quality + rng.normal(scale=1.0, size=n_keys)
    students = rng.uniform(100, 2000, size=n_keys)
    passed = np.where(
        quality + rng.normal(scale=0.6, size=n_keys) > 0, "pass", "fail"
    )

    base = Table(
        "school_performance",
        {
            "school_id": schools,
            "n_students": students.tolist(),
            "budget_per_student": budget.tolist(),
            "outcome": passed.tolist(),
        },
        source="open-data",
    )

    builder = RepositoryBuilder(schools, key_column="school_id", seed=seed)
    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder.add_relevant(
        "attendance_records", "attendance_rate", (1.5 * quality + noise(0.4)).tolist()
    )
    builder.add_relevant(
        "staffing", "teacher_ratio", (-1.3 * quality + noise(0.5)).tolist()
    )
    builder.add_relevant(
        "programs", "tutoring_hours", (1.2 * quality + noise(0.5)).tolist()
    )
    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous, signal_values=(1.5 * quality).tolist())
    builder.add_traps(n_traps, students.tolist())

    return Scenario(
        name="schools_classification",
        base=base,
        corpus=builder.build(),
        task=ClassificationTask(
            "outcome", metric="f1", exclude_columns=("school_id",), seed=seed
        ),
        truth_columns={"attendance_rate", "teacher_ratio", "tutoring_hours"},
        key_columns=("school_id",),
    )


def collisions_scenario(
    seed: int = 0,
    n_keys: int = 240,
    n_irrelevant: int = 15,
    n_erroneous: int = 8,
    n_traps: int = 6,
) -> Scenario:
    """NYC collisions regression (§VI-A, Fig. 3b): collisions from taxi
    trips, traffic volume and road miles."""
    rng = ensure_rng(seed)
    regions = make_keys(n_keys, prefix="rgn", start=1000)

    taxi = rng.normal(size=n_keys)
    traffic = rng.normal(size=n_keys)
    roads = rng.normal(size=n_keys)
    population = rng.normal(size=n_keys)
    collisions = (
        2.0 * taxi
        + 1.5 * traffic
        + 0.8 * roads
        + 0.3 * population
        + rng.normal(scale=0.5, size=n_keys)
    )

    base = Table(
        "nyc_collisions",
        {
            "region": regions,
            "population": population.tolist(),
            "area_sq_km": rng.uniform(1, 50, size=n_keys).tolist(),
            "collisions": collisions.tolist(),
        },
        source="open-data",
    )

    builder = RepositoryBuilder(regions, key_column="region", seed=seed)
    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder.add_relevant("tlc_daily", "taxi_trips", (taxi + noise(0.2)).tolist())
    builder.add_relevant(
        "dot_counts", "traffic_volume", (traffic + noise(0.2)).tolist()
    )
    builder.add_relevant("street_network", "road_miles", (roads + noise(0.2)).tolist())
    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous, signal_values=taxi.tolist())
    builder.add_traps(n_traps, population.tolist())

    return Scenario(
        name="collisions_regression",
        base=base,
        corpus=builder.build(),
        task=RegressionTask("collisions", exclude_columns=("region",), seed=seed),
        truth_columns={"taxi_trips", "traffic_volume", "road_miles"},
        key_columns=("region",),
    )


# ---------------------------------------------------------------------------
# Prescriptive analytics (causal)
# ---------------------------------------------------------------------------
def sat_whatif_scenario(
    seed: int = 0,
    n_keys: int = 300,
    n_irrelevant: int = 15,
    n_erroneous: int = 8,
    n_traps: int = 6,
) -> Scenario:
    """SAT what-if analysis (§VI-A, Fig. 3c): what is causally affected if
    the critical reading score is updated?

    Ground truth: writing/essay/verbal scores are descendants of reading;
    the math score is confounded via latent ability but *not* affected.
    """
    rng = ensure_rng(seed)
    students = make_keys(n_keys, prefix="stu", start=5000)
    ability = rng.normal(size=n_keys)
    reading = ability + rng.normal(scale=0.5, size=n_keys)
    household_income = rng.normal(size=n_keys)

    base = Table(
        "sat_scores",
        {
            "student_id": students,
            "critical_reading_score": reading.tolist(),
            "household_income": household_income.tolist(),
            "commute_minutes": rng.uniform(5, 90, size=n_keys).tolist(),
        },
        source="open-data",
    )

    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder = RepositoryBuilder(students, key_column="student_id", seed=seed)
    builder.add_relevant(
        "writing_results", "writing_score", (0.8 * reading + noise(0.4)).tolist()
    )
    builder.add_relevant(
        "essay_results", "essay_score", (0.7 * reading + noise(0.5)).tolist()
    )
    builder.add_relevant(
        "verbal_results", "verbal_score", (0.9 * reading + noise(0.3)).tolist()
    )
    # Confounded distractor: depends on ability, not on reading.
    builder.add_relevant(
        "math_results", "math_score", (ability + noise(0.5)).tolist()
    )
    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous, signal_values=reading.tolist())
    builder.add_traps(n_traps, household_income.tolist())

    return Scenario(
        name="sat_what_if",
        base=base,
        corpus=builder.build(),
        task=WhatIfTask(
            "critical_reading_score",
            truth_affected={"writing_score", "essay_score", "verbal_score"},
            base_columns=("household_income", "commute_minutes"),
            exclude_columns=("student_id",),
        ),
        truth_columns={"writing_score", "essay_score", "verbal_score"},
        key_columns=("student_id",),
    )


def sat_howto_scenario(
    seed: int = 0,
    n_keys: int = 300,
    n_irrelevant: int = 12,
    n_erroneous: int = 6,
    n_traps: int = 6,
) -> Scenario:
    """SAT how-to analysis (§VI-A, Fig. 3d): what to update to raise the
    total SAT score?  Ground truth: study/tutoring/attendance drive it."""
    rng = ensure_rng(seed)
    students = make_keys(n_keys, prefix="stu", start=7000)

    study = rng.normal(size=n_keys)
    tutoring = rng.normal(size=n_keys)
    attendance = rng.normal(size=n_keys)
    sat_total = (
        1.2 * study
        + 1.0 * tutoring
        + 0.8 * attendance
        + rng.normal(scale=0.5, size=n_keys)
    )

    base = Table(
        "sat_totals",
        {
            "student_id": students,
            "sat_total": sat_total.tolist(),
            "extracurriculars": rng.normal(size=n_keys).tolist(),
            "siblings": rng.integers(0, 5, size=n_keys).tolist(),
        },
        source="open-data",
    )

    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder = RepositoryBuilder(students, key_column="student_id", seed=seed)
    builder.add_relevant(
        "study_logs", "study_hours", (study + noise(0.2)).tolist()
    )
    builder.add_relevant(
        "tutoring_records", "tutoring_hours", (tutoring + noise(0.2)).tolist()
    )
    builder.add_relevant(
        "attendance_log", "attendance_rate", (attendance + noise(0.2)).tolist()
    )
    # Descendant distractor: scholarships follow the SAT score.
    builder.add_relevant(
        "scholarships", "scholarship_offer", (sat_total + noise(0.4)).tolist()
    )
    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous, signal_values=study.tolist())
    builder.add_traps(n_traps, base.numeric("extracurriculars").tolist())

    return Scenario(
        name="sat_how_to",
        base=base,
        corpus=builder.build(),
        task=HowToTask(
            "sat_total",
            truth_causes={"study_hours", "tutoring_hours", "attendance_rate"},
            base_columns=("extracurriculars", "siblings"),
            exclude_columns=("student_id",),
        ),
        truth_columns={"study_hours", "tutoring_hours", "attendance_rate"},
        key_columns=("student_id",),
    )


# ---------------------------------------------------------------------------
# Generalization tasks (§VI-A.4)
# ---------------------------------------------------------------------------
_STATES = ["alabama", "illinois", "california", "texas", "ohio", "georgia"]
_AMBIGUOUS_CITIES = ["springfield", "birmingham", "columbus", "aurora", "franklin"]
_UNIQUE_CITIES = ["chicago", "houston", "atlanta", "cleveland", "sacramento"]


def entity_linking_scenario(
    seed: int = 0,
    n_rows: int = 120,
    n_irrelevant: int = 15,
) -> Scenario:
    """CDC-cities entity linking (§VI-A.4): ambiguous city names resolve
    once a state column is augmented."""
    rng = ensure_rng(seed)
    kb = KnowledgeBase()
    for city in _AMBIGUOUS_CITIES:
        for state in _STATES[:3]:
            kb.add_entity(city, f"{city}_{state}", {state})
    for city in _UNIQUE_CITIES:
        kb.add_entity(city, f"{city}_{_STATES[0]}", {_STATES[0]})

    keys = make_keys(n_rows, prefix="city", start=1)
    cities, states, entities = [], [], []
    for _ in range(n_rows):
        if rng.uniform() < 0.5:
            city = _AMBIGUOUS_CITIES[int(rng.integers(0, len(_AMBIGUOUS_CITIES)))]
            state = _STATES[int(rng.integers(0, 3))]
        else:
            city = _UNIQUE_CITIES[int(rng.integers(0, len(_UNIQUE_CITIES)))]
            state = _STATES[0]
        cities.append(city)
        states.append(state)
        entities.append(f"{city}_{state}")

    base = Table(
        "cdc_city_stats",
        {
            "city_key": keys,
            "city_name": cities,
            "obesity_rate": rng.uniform(10, 40, size=n_rows).tolist(),
            "entity_id": entities,
        },
        source="kaggle",
    )

    builder = RepositoryBuilder(keys, key_column="city_key", source="kaggle", seed=seed)
    builder.add_relevant("city_geography", "state", states, coverage=1.0)
    builder.add_irrelevant(n_irrelevant)

    return Scenario(
        name="entity_linking",
        base=base,
        corpus=builder.build(),
        task=EntityLinkingTask(
            "city_name",
            "entity_id",
            kb,
            exclude_columns=("city_key",),
        ),
        truth_columns={"state"},
        key_columns=("city_key",),
        extras={"knowledge_base": kb},
    )


def fairness_scenario(
    seed: int = 0,
    n_rows: int = 300,
    n_irrelevant: int = 10,
) -> Scenario:
    """Fair classification on a credit-style dataset (§VI-A.4).

    The repository contains a highly predictive but age-correlated feature
    (dropped by the fairness filter) and a fair merit feature (the planted
    truth) — reproducing the paper's single-profile failure mode.
    """
    rng = ensure_rng(seed)
    people = make_keys(n_rows, prefix="p", start=1)
    age = rng.uniform(20, 70, size=n_rows)
    age_norm = _standardize(age)
    merit = rng.normal(size=n_rows)
    score = 1.5 * merit + 0.8 * age_norm + rng.normal(scale=0.5, size=n_rows)
    label = np.where(score > np.median(score), "high", "low")

    base = Table(
        "credit_records",
        {
            "person_id": people,
            "age": age.tolist(),
            "savings_hint": (0.4 * merit + rng.normal(scale=1.0, size=n_rows)).tolist(),
            "income_label": label.tolist(),
        },
        source="kaggle",
    )

    noise = lambda scale: rng.normal(scale=scale, size=n_rows)
    builder = RepositoryBuilder(people, key_column="person_id", source="kaggle", seed=seed)
    # Unfair but predictive: correlated with both target and age.
    builder.add_relevant(
        "credit_bureau", "credit_history", (0.9 * age_norm + 0.5 * merit).tolist()
    )
    # Fair and predictive: the planted ground truth.
    builder.add_relevant(
        "education_records", "education_score", (merit + noise(0.3)).tolist()
    )
    # Unfair and useless: age proxy only.
    builder.add_relevant(
        "tenure_records", "tenure_years", (age_norm + noise(0.2)).tolist()
    )
    builder.add_irrelevant(n_irrelevant)

    return Scenario(
        name="fair_classification",
        base=base,
        corpus=builder.build(),
        task=FairClassificationTask(
            "income_label",
            "age",
            fairness_threshold=0.3,
            exclude_columns=("person_id",),
            seed=seed,
        ),
        truth_columns={"education_score"},
        key_columns=("person_id",),
    )


def clustering_scenario(
    seed: int = 0,
    n_rows: int = 120,
    n_irrelevant: int = 7,
) -> Scenario:
    """Satiety clustering of raw materials (§VI-A.4): 8 candidate
    augmentations, one (the ONI score) aligned with the true categories."""
    rng = ensure_rng(seed)
    items = make_keys(n_rows, prefix="ing", start=1)
    category = rng.integers(0, 3, size=n_rows)
    satiety = np.array([2.0, 5.0, 8.0])[category] + rng.normal(
        scale=0.3, size=n_rows
    )

    base = Table(
        "raw_materials",
        {
            "ingredient_id": items,
            "satiety_score": satiety.tolist(),
            "price_per_kg": rng.uniform(0.5, 30, size=n_rows).tolist(),
        },
        source="kaggle",
    )

    builder = RepositoryBuilder(items, key_column="ingredient_id", source="kaggle", seed=seed)
    oni = np.array([0.0, 4.0, 8.0])[category] + rng.normal(scale=0.15, size=n_rows)
    builder.add_relevant("nutrition_db", "oni_score", oni.tolist(), coverage=1.0)
    builder.add_irrelevant(n_irrelevant)

    return Scenario(
        name="satiety_clustering",
        base=base,
        corpus=builder.build(),
        task=ClusteringTask(
            "satiety_score",
            n_clusters=3,
            exclude_columns=("ingredient_id",),
            seed=seed,
        ),
        truth_columns={"oni_score"},
        key_columns=("ingredient_id",),
    )


def unions_scenario(
    seed: int = 0,
    n_rows: int = 80,
    n_good_unions: int = 6,
    n_bad_unions: int = 6,
) -> Scenario:
    """NYC-rent unions (Fig. 4b): row-addition candidates; good unions add
    in-distribution training rows, bad unions add mislabeled rows."""
    rng = ensure_rng(seed)

    def make_rent_table(name: str, rows: int, flip: bool, table_seed: int) -> Table:
        local = ensure_rng(table_seed)
        sqft = local.uniform(300, 2500, size=rows)
        boro = local.integers(0, 5, size=rows)
        score = (
            1.5 * _standardize(sqft)
            + 0.8 * (boro - 2)
            + local.normal(scale=0.8, size=rows)
        )
        label = np.where(score > 0, "high", "low")
        if flip:
            label = np.where(label == "high", "low", "high")
        return Table(
            name,
            {
                "sqft": sqft.tolist(),
                "borough": boro.tolist(),
                "rent_label": label.tolist(),
            },
            source="open-data",
        )

    base = make_rent_table("nyc_rents", n_rows, flip=False, table_seed=seed)
    corpus = {}
    for i in range(n_good_unions):
        t = make_rent_table(f"rents_batch_{i}", 60, flip=False, table_seed=seed + 100 + i)
        corpus[t.name] = t
    for i in range(n_bad_unions):
        t = make_rent_table(
            f"rents_scraped_{i}", 60, flip=True, table_seed=seed + 200 + i
        )
        corpus[t.name] = t

    return Scenario(
        name="nyc_rent_unions",
        base=base,
        corpus=corpus,
        task=ClassificationTask("rent_label", metric="accuracy", seed=seed),
        truth_columns={f"rents_batch_{i}" for i in range(n_good_unions)},
        key_columns=(),
    )


# ---------------------------------------------------------------------------
# Themed scenarios for Table II
# ---------------------------------------------------------------------------
_THEMES = {
    "schools": {
        "kind": "causal",
        "key": "school_id",
        "outcome": "test_score",
        "causes": [("attendance_rate", 1.2), ("tutoring_hours", 1.0), ("library_visits", 0.8)],
        "base_noise": ["n_students", "building_age"],
    },
    "taxi": {
        "kind": "causal",
        "key": "zone_id",
        "outcome": "trip_revenue",
        "causes": [("tourist_visits", 1.2), ("hotel_occupancy", 1.0)],
        "base_noise": ["zone_area", "meter_count"],
    },
    "crime": {
        "kind": "causal",
        "key": "district_id",
        "outcome": "incident_count",
        "causes": [("unemployment_rate", 1.2), ("vacant_buildings", 1.0), ("street_light_outages", 0.7)],
        "base_noise": ["district_area", "population_density"],
    },
    "housing": {
        "kind": "causal",
        "key": "zipcode",
        "outcome": "price_index",
        "causes": [("median_income", 1.3), ("school_rating", 1.0), ("transit_access", 0.8)],
        "base_noise": ["housing_stock", "avg_lot_size"],
    },
    "pharmacy": {
        "kind": "analytics",
        "key": "store_id",
        "target": "high_volume",
        "signals": [("prescriptions_filled", 1.5), ("nearby_clinics", 1.1), ("senior_population", 0.9)],
        "base_noise": ["floor_area", "parking_spots"],
    },
    "grocery": {
        "kind": "analytics",
        "key": "store_id",
        "target": "high_revenue",
        "signals": [("foot_traffic", 1.5), ("median_income", 1.1), ("competitor_distance", 0.9)],
        "base_noise": ["floor_area", "checkout_lanes"],
    },
}


def themed_scenario(
    theme: str,
    seed: int = 0,
    n_keys: int = 220,
    n_irrelevant: int = 12,
    n_erroneous: int = 6,
    n_traps: int = 5,
) -> Scenario:
    """One of the Table II datasets: causal themes run how-to analysis,
    analytics themes run classification (paper's (C) annotation)."""
    if theme not in _THEMES:
        raise ValueError(f"unknown theme {theme!r}; choose from {sorted(_THEMES)}")
    spec = _THEMES[theme]
    rng = ensure_rng(seed)
    keys = make_keys(n_keys, prefix=theme[:3], start=100)
    noise = lambda scale: rng.normal(scale=scale, size=n_keys)
    builder = RepositoryBuilder(keys, key_column=spec["key"], seed=seed)

    if spec["kind"] == "causal":
        causes = {}
        outcome = rng.normal(scale=0.5, size=n_keys)
        for column, weight in spec["causes"]:
            values = rng.normal(size=n_keys)
            causes[column] = values
            outcome = outcome + weight * values
            builder.add_relevant(f"{column}_records", column, (values + noise(0.2)).tolist())
        base_cols = {spec["key"]: keys, spec["outcome"]: outcome.tolist()}
        for col in spec["base_noise"]:
            base_cols[col] = rng.normal(size=n_keys).tolist()
        base = Table(f"{theme}_base", base_cols, source="open-data")
        task = HowToTask(
            spec["outcome"],
            truth_causes={c for c, _ in spec["causes"]},
            base_columns=tuple(spec["base_noise"]),
            exclude_columns=(spec["key"],),
        )
        truth = {c for c, _ in spec["causes"]}
    else:
        latent = rng.normal(size=n_keys)
        score = rng.normal(scale=0.5, size=n_keys)
        for column, weight in spec["signals"]:
            values = weight * latent + noise(0.5)
            builder.add_relevant(f"{column}_records", column, values.tolist())
            score = score + 0.5 * weight * latent
        label = np.where(score > np.median(score), "yes", "no")
        base_cols = {spec["key"]: keys, spec["target"]: label.tolist()}
        for col in spec["base_noise"]:
            base_cols[col] = rng.normal(size=n_keys).tolist()
        base = Table(f"{theme}_base", base_cols, source="open-data")
        task = ClassificationTask(
            spec["target"], metric="accuracy", exclude_columns=(spec["key"],), seed=seed
        )
        truth = {c for c, _ in spec["signals"]}

    builder.add_irrelevant(n_irrelevant)
    builder.add_erroneous(n_erroneous)
    builder.add_traps(n_traps, base_cols[spec["base_noise"][0]])
    return Scenario(
        name=f"{theme}_{spec['kind']}",
        base=base,
        corpus=builder.build(),
        task=task,
        truth_columns=truth,
        key_columns=(spec["key"],),
    )
