"""The versioned wire model: every dict that crosses a process boundary.

Requests, run records, events, and errors all used to be ad-hoc dict
shapes assembled inline by whoever needed one (``DiscoveryRequest.
to_record``, ``RunEvent.to_record``, ``event_from_record``, the run
record in :mod:`repro.api.run`).  This module is their single home: one
explicit dataclass↔JSON schema per payload kind, shared by the HTTP
server, the persistent result tier, and the CLI.

Two layers, deliberately separate:

* The **record forms** (:func:`request_to_wire`, :func:`run_to_wire`,
  :func:`event_to_wire` and their inverses) are byte-identical to the
  legacy ``to_record`` shapes — persisted run records, golden tests,
  and the result cache all keep working unchanged.  The legacy entry
  points still exist as deprecation shims delegating here.
* The **envelope** (:func:`envelope` / :func:`open_envelope`) stamps
  ``schema_version`` onto a payload for transport.  Everything the HTTP
  server sends is enveloped; everything it accepts is version-checked.
  Bumping :data:`SCHEMA_VERSION` is the explicit, reviewable act of
  changing the protocol.

:func:`request_from_wire` is the server-side constructor: it builds a
live :class:`~repro.api.request.DiscoveryRequest` from a JSON payload,
resolving the base table against a corpus and validating every field —
raising :class:`~repro.api.errors.InvalidRequest` (never a bare
``KeyError``) so the HTTP layer can map failures to statuses.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from typing import Any, Dict

from repro.api.errors import ERROR_CODES, Internal, InvalidRequest, Overloaded, ReproError

#: Version of every wire payload this build speaks.  Consumers reject
#: payloads from a different major version instead of misreading them.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Envelope
# ---------------------------------------------------------------------------
def envelope(payload: Dict[str, Any]) -> Dict[str, Any]:
    """``payload`` stamped with the wire schema version (a shallow copy;
    the input dict is never mutated)."""
    return {"schema_version": SCHEMA_VERSION, **payload}


def open_envelope(payload: Any) -> Dict[str, Any]:
    """Validate an incoming enveloped payload and return it.

    A missing ``schema_version`` is accepted as the current version
    (bare payloads predate the envelope); a *different* version is
    rejected — misreading a future schema is worse than refusing it.
    """
    if not isinstance(payload, dict):
        raise InvalidRequest(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise InvalidRequest(
            f"unsupported schema_version {version!r} (this build speaks "
            f"{SCHEMA_VERSION})",
            details={"schema_version": version},
        )
    return payload


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------
def request_to_wire(request) -> dict:
    """JSON-safe description of a request (the legacy ``to_record``
    shape, byte-identical — golden-pinned).

    Tables and task objects are described, not embedded — a record
    identifies what was asked, it does not re-ship the data.
    """
    return {
        "base_table": request.base.name,
        "base_rows": request.base.num_rows,
        "base_columns": request.base.num_columns,
        "task": request.task_name(),
        "task_options": jsonable(request.task_options),
        "searcher": request.searcher,
        "theta": request.theta,
        "query_budget": request.query_budget,
        "seed": request.seed,
        "prepare_seed": request.prepare_seed,
        "spec": spec_to_wire(request.spec),
        "config": (
            asdict(request.config) if request.config is not None else None
        ),
        "options": jsonable(request.options),
        "candidates_supplied": request.candidates is not None,
        "label": request.label,
    }


#: Wire fields `request_from_wire` accepts, with coercion functions.
_REQUEST_SCALARS = {
    "searcher": str,
    "theta": float,
    "query_budget": int,
    "seed": int,
    "label": str,
}

_REQUEST_KEYS = frozenset(
    {
        "schema_version",
        "base",
        "base_table",
        "task",
        "task_options",
        "searcher",
        "theta",
        "query_budget",
        "seed",
        "prepare_seed",
        "spec",
        "config",
        "options",
        "label",
    }
)


def request_from_wire(payload: Any, corpus: Dict[str, Any]):
    """Build a live :class:`~repro.api.request.DiscoveryRequest` from a
    wire payload served over ``corpus``.

    The payload names the base table (``base`` or ``base_table``) and
    the task (registry name + ``task_options``); ``spec`` and ``config``
    are plain dicts validated field-by-field.  Unknown keys, missing
    keys, and type mismatches raise
    :class:`~repro.api.errors.InvalidRequest` with the offending field
    in ``details`` — a serving layer maps that straight to HTTP 400.
    """
    from repro.api.request import DiscoveryRequest

    payload = open_envelope(payload)
    unknown = sorted(set(payload) - _REQUEST_KEYS)
    if unknown:
        raise InvalidRequest(
            f"unknown request field(s): {', '.join(unknown)}",
            details={"fields": unknown},
        )
    base_name = payload.get("base", payload.get("base_table"))
    if not isinstance(base_name, str) or not base_name:
        raise InvalidRequest(
            "request must name its base table (field 'base')",
            details={"field": "base"},
        )
    base = corpus.get(base_name)
    if base is None:
        raise InvalidRequest(
            f"unknown base table {base_name!r} (not in the served corpus)",
            details={"field": "base", "base": base_name},
        )
    task = payload.get("task")
    if not isinstance(task, str) or not task:
        raise InvalidRequest(
            "request must name its task (field 'task'); tasks go by "
            "registry name on the wire",
            details={"field": "task"},
        )
    kwargs: Dict[str, Any] = {"base": base, "task": task}
    for key, coerce in _REQUEST_SCALARS.items():
        if key in payload and payload[key] is not None:
            try:
                kwargs[key] = coerce(payload[key])
            except (TypeError, ValueError):
                raise InvalidRequest(
                    f"field {key!r} must be a {coerce.__name__}, got "
                    f"{payload[key]!r}",
                    details={"field": key},
                ) from None
    if payload.get("prepare_seed") is not None:
        try:
            kwargs["prepare_seed"] = int(payload["prepare_seed"])
        except (TypeError, ValueError):
            raise InvalidRequest(
                f"field 'prepare_seed' must be an int, got "
                f"{payload['prepare_seed']!r}",
                details={"field": "prepare_seed"},
            ) from None
    for key in ("task_options", "options"):
        value = payload.get(key)
        if value is not None:
            if not isinstance(value, dict):
                raise InvalidRequest(
                    f"field {key!r} must be an object",
                    details={"field": key},
                )
            kwargs[key] = dict(value)
    if payload.get("spec") is not None:
        kwargs["spec"] = spec_from_wire(payload["spec"])
    if payload.get("config") is not None:
        kwargs["config"] = config_from_wire(payload["config"])
    return DiscoveryRequest(**kwargs)


def spec_to_wire(spec) -> dict:
    """JSON-safe form of a :class:`~repro.api.request.CandidateSpec`."""
    return asdict(spec)


def spec_from_wire(payload: Any):
    """Rebuild a :class:`~repro.api.request.CandidateSpec` from its wire
    dict (unknown fields raise :class:`InvalidRequest`)."""
    from repro.api.request import CandidateSpec

    return _dataclass_from_wire(CandidateSpec, payload, "spec")


def config_from_wire(payload: Any):
    """Rebuild a :class:`~repro.core.config.MetamConfig` from its wire
    dict (unknown fields and invalid values raise
    :class:`InvalidRequest` — ``MetamConfig.__post_init__`` validation
    included)."""
    from repro.core.config import MetamConfig

    return _dataclass_from_wire(MetamConfig, payload, "config")


def _dataclass_from_wire(cls, payload: Any, field_name: str):
    if not isinstance(payload, dict):
        raise InvalidRequest(
            f"field {field_name!r} must be an object, got "
            f"{type(payload).__name__}",
            details={"field": field_name},
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise InvalidRequest(
            f"unknown {field_name} field(s): {', '.join(unknown)}",
            details={"field": field_name, "fields": unknown},
        )
    try:
        return cls(**payload)
    except (TypeError, ValueError) as error:
        raise InvalidRequest(
            f"invalid {field_name}: {error}", details={"field": field_name}
        ) from error


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------
def event_to_wire(event) -> dict:
    """JSON-safe form of one run event: ``kind`` plus the event's
    fields (byte-identical to the legacy ``RunEvent.to_record``)."""
    return {"kind": event.kind, **asdict(event)}


def event_from_wire(record: Any):
    """Rebuild one event from its :func:`event_to_wire` form.

    Raises ``ValueError`` on an unknown kind or mismatched fields — a
    persisted run record from a future (or corrupt) store must fail the
    reconstruction loudly, never half-build an event."""
    from repro.api.events import EVENT_TYPES

    if not isinstance(record, dict):
        raise ValueError(
            f"event record must be a dict, got {type(record).__name__}"
        )
    kind = record.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    event_fields = {key: value for key, value in record.items() if key != "kind"}
    try:
        return cls(**event_fields)
    except TypeError as error:
        raise ValueError(f"bad {kind!r} event record: {error}") from error


# ---------------------------------------------------------------------------
# Run records
# ---------------------------------------------------------------------------
def run_to_wire(run) -> dict:
    """JSON-serializable record of a full run (the legacy
    ``DiscoveryRun.to_record`` shape, byte-identical)."""
    from repro.core.serialization import result_to_dict

    return {
        "run_id": run.run_id,
        "status": run.status,
        "request": request_to_wire(run.request),
        "result": (
            result_to_dict(run.result) if run.result is not None else None
        ),
        "n_candidates": run.n_candidates,
        "candidate_source": run.candidate_source,
        "cached": run.cached,
        "caches": dict(run.cache_info),
        "timings": {
            "prepare_seconds": run.prepare_seconds,
            "search_seconds": run.search_seconds,
        },
        "events": [event_to_wire(event) for event in run.events],
        **({"trace": run.trace} if run.trace is not None else {}),
    }


def run_from_wire(record: dict, request, run_id: int):
    """Rebuild a :class:`~repro.api.run.DiscoveryRun` from its
    :func:`run_to_wire` form.

    The record describes (not embeds) the original request, so the
    caller supplies the live ``request`` it matched against the
    record's key.  Raises ``ValueError``/``KeyError`` on malformed
    records; callers treating persisted runs as a cache catch and
    re-run.
    """
    from repro.api.run import DiscoveryRun
    from repro.core.serialization import result_from_dict

    result = record.get("result")
    return DiscoveryRun(
        run_id=run_id,
        request=request,
        status=str(record["status"]),
        result=result_from_dict(result) if result is not None else None,
        events=[event_from_wire(e) for e in record.get("events", [])],
        n_candidates=int(record.get("n_candidates", 0)),
        candidate_source=str(record.get("candidate_source", "prepared")),
        prepare_seconds=float(
            record.get("timings", {}).get("prepare_seconds", 0.0)
        ),
        search_seconds=float(
            record.get("timings", {}).get("search_seconds", 0.0)
        ),
        cache_info=dict(record.get("caches") or {}),
        trace=record.get("trace"),
    )


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------
def error_to_wire(error: BaseException) -> dict:
    """Enveloped wire form of any exception.

    Typed :class:`~repro.api.errors.ReproError`\\ s keep their code and
    details; anything else is wrapped as ``internal`` (message included
    — the server never leaks a traceback, only the summary line).
    """
    if not isinstance(error, ReproError):
        error = Internal(f"{type(error).__name__}: {error}")
    body: Dict[str, Any] = {
        "code": error.code,
        "message": error.message,
        "http_status": error.http_status,
    }
    if error.details:
        body["details"] = jsonable(error.details)
    if isinstance(error, Overloaded):
        body["retry_after"] = error.retry_after
    return envelope({"error": body})


def error_from_wire(payload: Any) -> ReproError:
    """Rebuild the typed error from its :func:`error_to_wire` form
    (unknown codes come back as :class:`~repro.api.errors.Internal`)."""
    payload = open_envelope(payload)
    body = payload.get("error")
    if not isinstance(body, dict):
        raise InvalidRequest("payload carries no 'error' object")
    cls = ERROR_CODES.get(body.get("code"), Internal)
    message = str(body.get("message", "unknown error"))
    details = body.get("details") or None
    if cls is Overloaded:
        return Overloaded(
            message,
            retry_after=float(body.get("retry_after", 1.0)),
            details=details,
        )
    return cls(message, details=details)


# ---------------------------------------------------------------------------
# Shared coercion helpers
# ---------------------------------------------------------------------------
def jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for user-supplied option dicts."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


def dumps(payload: Dict[str, Any]) -> bytes:
    """Canonical UTF-8 JSON bytes of one wire payload (compact
    separators, sorted keys — what the HTTP layer puts on the socket)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def loads(raw: bytes) -> Any:
    """Parse one wire payload, mapping JSON syntax errors to
    :class:`InvalidRequest` (the server's 400, never a 500)."""
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise InvalidRequest(f"request body is not valid JSON: {error}") from None


__all__ = [
    "SCHEMA_VERSION",
    "envelope",
    "open_envelope",
    "request_to_wire",
    "request_from_wire",
    "spec_to_wire",
    "spec_from_wire",
    "config_from_wire",
    "event_to_wire",
    "event_from_wire",
    "run_to_wire",
    "run_from_wire",
    "error_to_wire",
    "error_from_wire",
    "jsonable",
    "dumps",
    "loads",
]
