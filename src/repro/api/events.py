"""Typed events of a discovery run, plus cooperative cancellation.

Every :meth:`DiscoveryEngine.discover` call records the milestones of its
run — candidates prepared, queries issued, augmentations accepted, rounds
committed — as immutable event objects.  The same events drive the
``progress`` callback (streaming observation while the run executes) and
the run's JSON record (archival after it completes), so a serving layer
never has to scrape logs to know what a search did.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass


class RunCancelled(RuntimeError):
    """Raised inside a searcher when its run's cancellation token fires.

    Cooperative: the search is interrupted at the next utility query, so
    a cancelled run stops within one task evaluation.
    """


class CancellationToken:
    """Thread-safe cancel flag shared between a caller and one run.

    Pass as ``cancel=`` to :meth:`DiscoveryEngine.discover`; calling
    :meth:`cancel` from any thread stops the run at its next query and
    the run completes with ``status == "cancelled"``.
    """

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise RunCancelled("discovery run cancelled")


@dataclass(frozen=True)
class RunEvent:
    """Base class of all run events (``kind`` names the concrete type)."""

    kind = "event"

    def to_record(self) -> dict:
        """JSON-serializable form: ``kind`` plus the event's fields
        (the wire schema; see :func:`repro.api.wire.event_to_wire`)."""
        from repro.api import wire

        return wire.event_to_wire(self)


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The engine accepted the request and began serving it."""

    kind = "run-started"

    run_id: int
    searcher: str
    base_table: str
    task: str


@dataclass(frozen=True)
class CandidatesPrepared(RunEvent):
    """The candidate set is ready (discovered, materialized, profiled)."""

    kind = "candidates-prepared"

    n_candidates: int
    source: str  # "prepared" | "cache" | "request"
    seconds: float


@dataclass(frozen=True)
class QueryIssued(RunEvent):
    """One utility-function query was spent (Definition 5 accounting)."""

    kind = "query-issued"

    query_index: int
    utility: float
    best_utility: float


@dataclass(frozen=True)
class AugmentationAccepted(RunEvent):
    """The monotone solution grew by one certified augmentation."""

    kind = "augmentation-accepted"

    aug_id: str
    utility: float
    n_selected: int


@dataclass(frozen=True)
class RoundCompleted(RunEvent):
    """One METAM outer-loop round finished (lines 7-22 of Algorithm 1)."""

    kind = "round-completed"

    round_index: int
    utility: float
    queries: int
    committed: bool


@dataclass(frozen=True)
class RunCompleted(RunEvent):
    """The run finished (successfully, cancelled, or budget-exhausted)."""

    kind = "run-completed"

    status: str
    utility: float
    queries: int
    seconds: float


#: Concrete event classes by their ``kind`` tag (the inverse of
#: :meth:`RunEvent.to_record`'s discriminator).
EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        RunStarted,
        CandidatesPrepared,
        QueryIssued,
        AugmentationAccepted,
        RoundCompleted,
        RunCompleted,
    )
}


def event_from_record(record: dict) -> RunEvent:
    """Deprecated alias of :func:`repro.api.wire.event_from_wire`
    (byte-identical reconstruction; same ``ValueError`` contract)."""
    warnings.warn(
        "event_from_record() is deprecated; use "
        "repro.api.wire.event_from_wire()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import wire

    return wire.event_from_wire(record)
