"""The typed :class:`ReproError` taxonomy: one failure vocabulary.

Every user-facing failure in the serving stack is (or is wrapped into)
one of five :class:`ReproError` kinds, and each kind carries its wire
``code``, its HTTP status, and its CLI exit code — so the HTTP layer,
the CLI, and tests all map failures the same way instead of each
inventing its own convention:

==================  ==============  ===========  =========
class               wire code       HTTP status  CLI exit
==================  ==============  ===========  =========
``InvalidRequest``  invalid-request 400          2
``NotFound``        not-found       404          1
``Overloaded``      overloaded      429          75
``Cancelled``       cancelled       499          130
``Internal``        internal        500          1
==================  ==============  ===========  =========

The CLI exit codes deliberately preserve the pre-taxonomy behavior:
usage errors always exited 2, missing catalogs and runtime failures 1,
and a Ctrl-C'd comparison 130 (128 + SIGINT).  ``Overloaded`` adopts
BSD's ``EX_TEMPFAIL`` (75): the request was well-formed and may succeed
if retried — :attr:`Overloaded.retry_after` says when (the HTTP layer
turns it into a ``Retry-After`` header).  ``Cancelled`` maps to 499,
nginx's "client closed request": the caller abandoned the run, the
server did nothing wrong.

:func:`repro.api.wire.error_to_wire` serializes any exception into the
versioned error envelope (foreign exceptions are wrapped as
``Internal``), and :func:`repro.api.wire.error_from_wire` rebuilds the
typed error client-side.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base of the typed failure taxonomy.

    Parameters
    ----------
    message:
        Human-readable description (the wire ``message`` field).
    details:
        Optional JSON-safe dict of machine-readable context (the field
        that failed validation, the budget that was exceeded, ...).
    """

    #: Stable wire identifier of this error kind (never the class name:
    #: renaming a class must not change the protocol).
    code = "internal"
    #: HTTP response status the server maps this error to.
    http_status = 500
    #: Process exit code the CLI maps this error to.
    exit_code = 1

    def __init__(self, message: str, *, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.message = str(message)
        self.details = dict(details) if details else {}


class InvalidRequest(ReproError):
    """The request itself is malformed: unparseable payload, unknown
    field, bad value, unknown searcher/task/base-table name."""

    code = "invalid-request"
    http_status = 400
    exit_code = 2


class NotFound(ReproError):
    """The referenced resource does not exist: unknown run id, unknown
    session, a catalog directory with nothing in it."""

    code = "not-found"
    http_status = 404
    exit_code = 1


class Overloaded(ReproError):
    """Admission control rejected the request: queue budget exhausted,
    tenant quota empty, or the server is draining.

    ``retry_after`` (seconds, >= 0) estimates when a retry could be
    admitted; the HTTP layer sends it as the ``Retry-After`` header.
    """

    code = "overloaded"
    http_status = 429
    exit_code = 75  # EX_TEMPFAIL: transient, retry later

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        details: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, details=details)
        self.retry_after = max(0.0, float(retry_after))


class Cancelled(ReproError):
    """The caller cancelled the work before it finished (Ctrl-C on the
    CLI, ``DELETE /v1/runs/{id}`` over HTTP)."""

    code = "cancelled"
    http_status = 499  # nginx convention: client closed request
    exit_code = 130  # 128 + SIGINT, what an interrupted process exits with


class Internal(ReproError):
    """Anything that is the server's fault: an unexpected exception, a
    corrupt store, a failing subsystem."""

    code = "internal"
    http_status = 500
    exit_code = 1


#: Wire ``code`` -> error class (the inverse of each class's ``code``).
ERROR_CODES = {
    cls.code: cls
    for cls in (InvalidRequest, NotFound, Overloaded, Cancelled, Internal)
}
