"""The :class:`DiscoveryEngine`: a stateful, serving-oriented facade.

One engine owns the expensive shared state of goal-oriented discovery —
an optional persistent :class:`~repro.catalog.Catalog`, the corpus, the
warm discovery index, prepared-candidate caches, and the searcher/task/
scenario registries — and serves many :class:`DiscoveryRequest`s against
it::

    engine = DiscoveryEngine.open("my_catalog").attach_corpus(corpus)
    run = engine.discover(DiscoveryRequest(base=din, task=task,
                                           searcher="metam",
                                           config=MetamConfig(theta=0.8)))
    print(run.result.summary())

``discover`` is thread-safe: candidate preparation is lock-scoped (the
first request pays, concurrent requests for the same spec share the
result), while each run gets its own searcher, query accounting, and RNG
— so N callers can serve requests against one warm engine concurrently
(see ``benchmarks/bench_engine_concurrency.py``).
"""

from __future__ import annotations

import threading
import time

from repro.api.events import (
    AugmentationAccepted,
    CancellationToken,
    CandidatesPrepared,
    QueryIssued,
    RoundCompleted,
    RunCancelled,
    RunCompleted,
    RunStarted,
)
from repro.api.registries import (
    Registry,
    default_scenarios,
    default_searchers,
    default_tasks,
)
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.api.run import DiscoveryRun
from repro.catalog import Catalog
from repro.catalog.fingerprint import registry_fingerprint, table_fingerprint
from repro.dataframe.table import Table
from repro.discovery.candidates import (
    Candidate,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.discovery.index import DiscoveryIndex
from repro.discovery.unions import find_union_candidates
from repro.profiles.registry import default_registry
from repro.tasks.base import Task
from repro.utils.lru import LruDict


class EngineStateError(RuntimeError):
    """The engine is missing state a call needs (usually a corpus)."""


class DiscoveryEngine:
    """Serves goal-oriented discovery requests over one corpus + catalog.

    Parameters
    ----------
    corpus:
        Repository tables (dict by name, or an iterable of Tables); may
        also be attached later with :meth:`attach_corpus`.
    catalog:
        Optional persistent :class:`~repro.catalog.Catalog` — switches
        candidate preparation to warm-start mode (incremental refresh +
        profile-vector cache).
    profile_registry:
        Default profile registry for candidate preparation (``None`` =
        :func:`~repro.profiles.registry.default_registry`).
    searchers / tasks / scenarios:
        Registry overrides; defaults carry every built-in.  Mutate them
        (``engine.searchers.register(...)``) to plug in new strategies
        without touching core code.
    max_prepared_sets:
        Bound on cached prepared-candidate sets (LRU-evicted beyond it;
        ``None`` disables eviction).  A long-lived serving engine sees
        many (base, spec, seed) combinations, and each set holds every
        candidate's materialized values — without a bound the cache
        grows with the request history instead of the working set.
    """

    def __init__(
        self,
        corpus=None,
        catalog: Catalog = None,
        profile_registry=None,
        searchers: Registry = None,
        tasks: Registry = None,
        scenarios: Registry = None,
        max_prepared_sets: int = 32,
    ):
        try:
            prepared = LruDict(capacity=max_prepared_sets)
        except ValueError:
            raise ValueError(
                f"max_prepared_sets must be >= 1 or None, got {max_prepared_sets}"
            ) from None
        self.catalog = catalog
        self.searchers = searchers if searchers is not None else default_searchers()
        self.tasks = tasks if tasks is not None else default_tasks()
        self.scenarios = scenarios if scenarios is not None else default_scenarios()
        self._profile_registry = profile_registry
        self._corpus = None
        self._lock = threading.RLock()
        self.max_prepared_sets = max_prepared_sets
        self._prepared = prepared  # prepare key -> candidates (LRU-bounded)
        self._next_run_id = 1
        self.runs_started = 0
        self.runs_completed = 0
        self.runs_cancelled = 0
        self.runs_failed = 0
        self.queries_served = 0
        if corpus is not None:
            self.attach_corpus(corpus)

    # ------------------------------------------------------------------
    # Construction / state
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, catalog_dir, corpus=None, create: bool = True, **config
    ) -> "DiscoveryEngine":
        """Engine backed by the persistent catalog at ``catalog_dir``.

        ``create=True`` (default) creates the catalog when none exists
        (``config`` applies only then); ``create=False`` requires a saved
        catalog and raises :class:`~repro.catalog.CatalogStoreError`
        otherwise.  ``corpus`` is attached when given.
        """
        if create:
            catalog = Catalog.open(catalog_dir, **config)
        else:
            catalog = Catalog.load(catalog_dir)
        return cls(corpus=corpus, catalog=catalog)

    def attach_corpus(self, corpus) -> "DiscoveryEngine":
        """Attach (or replace) the repository; returns ``self``.

        Accepts a ``{name: Table}`` dict or an iterable of Tables.
        Replacing the corpus drops the prepared-candidate cache — cached
        candidate sets are only valid for the corpus they were built on.
        """
        tables = corpus.values() if isinstance(corpus, dict) else corpus
        normalized = {}
        for table in tables:
            if not isinstance(table, Table):
                raise TypeError(f"corpus entries must be Tables, got {table!r}")
            if table.name in normalized and normalized[table.name] is not table:
                raise ValueError(f"duplicate table name {table.name!r} in corpus")
            normalized[table.name] = table
        with self._lock:
            self._corpus = normalized
            self._prepared.clear()
        return self

    @property
    def corpus(self) -> dict:
        """The attached repository (raises until :meth:`attach_corpus`)."""
        if self._corpus is None:
            raise EngineStateError(
                "no corpus attached; call engine.attach_corpus(corpus) first"
            )
        return self._corpus

    def profile_registry(self):
        """The engine's default profile registry (built lazily)."""
        with self._lock:
            if self._profile_registry is None:
                self._profile_registry = default_registry()
            return self._profile_registry

    # ------------------------------------------------------------------
    # Candidate preparation (lock-scoped, cached)
    # ------------------------------------------------------------------
    def prepare(
        self,
        base: Table,
        spec: CandidateSpec = None,
        registry=None,
        seed: int = 0,
    ) -> list:
        """Discovery + materialization + profiling for one base table.

        Returns profiled :class:`~repro.discovery.candidates.Candidate`
        objects — the common input of METAM and every baseline.  Results
        are cached by (base content, spec, seed, profile registry), so
        concurrent requests against the same base share one preparation;
        the whole step runs under the engine lock because it mutates
        shared state (the catalog's index and profile cache).
        """
        candidates, _from_cache, _corpus = self._prepare_cached(
            base, spec, registry, seed
        )
        return candidates

    def _prepare_cached(self, base, spec, registry, seed):
        """Lock-scoped prepare.

        Returns ``(candidates, from_cache, corpus)`` — the corpus
        snapshot the candidates were prepared from, taken under the same
        lock, so callers run their searcher against exactly the tables
        the candidates reference even if ``attach_corpus`` races.
        """
        spec = spec or CandidateSpec()
        registry = registry if registry is not None else self.profile_registry()
        key = (
            table_fingerprint(base),
            spec,
            int(seed),
            registry_fingerprint(registry),
        )
        with self._lock:
            corpus = self.corpus
            cached = self._prepared.get(key)
            if cached is not None:
                return list(cached), True, corpus
            candidates = self._prepare_locked(base, spec, registry, seed, corpus)
            self._prepared.put(key, candidates)
            return list(candidates), False, corpus

    def _prepare_locked(self, base, spec, registry, seed, corpus) -> list:
        """The discovery front-end (exactly the legacy ``prepare_candidates``
        semantics, so warm and cold paths stay byte-identical)."""
        cache = None
        if self.catalog is not None:
            catalog = self.catalog
            overridden = []
            if catalog.config["min_containment"] != spec.min_containment:
                overridden.append(
                    f"min_containment={catalog.config['min_containment']} "
                    f"(requested {spec.min_containment})"
                )
            if catalog.config["seed"] != seed:
                overridden.append(
                    f"index seed={catalog.config['seed']} (requested {seed}; "
                    f"the requested seed still governs profile sampling)"
                )
            if overridden:
                import warnings

                warnings.warn(
                    "catalog config overrides the requested values for "
                    "discovery in warm-start mode: " + ", ".join(overridden),
                    stacklevel=3,
                )
            diff = catalog.refresh(corpus)
            if (
                catalog.store is not None
                and (diff.added or diff.updated)
                and not catalog.removed_since_save
            ):
                # Keep the on-disk manifest/snapshot current, so the next
                # process warm-starts from the packed snapshot.  Only
                # additive changes are persisted implicitly: a partial
                # corpus must not silently shrink the saved catalog.
                catalog.save()
            index = catalog.index
            cache = catalog.profile_cache(
                base, registry, sample_size=spec.sample_size, seed=seed
            )
        else:
            index = DiscoveryIndex(
                min_containment=spec.min_containment, seed=seed
            )
            index.build(corpus.values())
        augmentations = generate_candidates(
            base, index, max_hops=spec.max_hops, max_fanout=spec.max_fanout
        )
        candidates = materialize_candidates(base, augmentations, corpus)
        if spec.include_unions:
            for union in find_union_candidates(
                base, corpus, min_shared=spec.min_union_shared
            ):
                candidates.append(
                    Candidate(
                        aug=union,
                        values=union.materialize(base, corpus),
                        overlap=union.shared_fraction,
                    )
                )
        return profile_candidates(
            candidates,
            base,
            corpus,
            registry,
            sample_size=spec.sample_size,
            seed=seed,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def discover(
        self,
        request: DiscoveryRequest,
        progress=None,
        cancel: CancellationToken = None,
    ) -> DiscoveryRun:
        """Serve one request; returns the completed :class:`DiscoveryRun`.

        ``progress`` (a callable taking one
        :class:`~repro.api.events.RunEvent`) streams every event as it
        happens; ``cancel`` stops the run cooperatively at its next
        utility query (the run then finishes with status
        ``"cancelled"`` and ``result=None``).
        """
        task = self._resolve_task(request)
        factory = self.searchers.get(request.searcher)  # fail before any work
        self.corpus  # fail fast when none is attached
        with self._lock:
            run_id = self._next_run_id
            self._next_run_id += 1
            self.runs_started += 1
        try:
            return self._serve(request, task, factory, run_id, progress, cancel)
        except BaseException:
            # Anything that escapes (bad searcher options, a task that
            # raises, a progress callback bug) still balances the books.
            with self._lock:
                self.runs_failed += 1
            raise

    def _serve(self, request, task, factory, run_id, progress, cancel):
        events = []

        def emit(event):
            events.append(event)
            if progress is not None:
                progress(event)

        emit(
            RunStarted(
                run_id=run_id,
                searcher=request.searcher,
                base_table=request.base.name,
                task=request.task_name(),
            )
        )

        # The corpus snapshot travels with the candidates: prepared runs
        # use the snapshot taken under the prepare lock, so a concurrent
        # attach_corpus() can never pair one corpus's candidates with
        # another corpus's tables.
        start = time.perf_counter()
        if request.candidates is not None:
            candidates = list(request.candidates)
            source = "request"
            with self._lock:
                corpus = self.corpus
        else:
            prepare_seed = (
                request.seed
                if request.prepare_seed is None
                else request.prepare_seed
            )
            candidates, from_cache, corpus = self._prepare_cached(
                request.base, request.spec, request.registry, prepare_seed
            )
            source = "cache" if from_cache else "prepared"
        prepare_seconds = time.perf_counter() - start
        emit(
            CandidatesPrepared(
                n_candidates=len(candidates),
                source=source,
                seconds=prepare_seconds,
            )
        )

        searcher = factory(
            candidates,
            request.base,
            corpus,
            task,
            theta=request.theta,
            query_budget=request.query_budget,
            seed=request.seed,
            config=request.config,
            **request.options,
        )
        self._attach_hooks(searcher, emit, cancel)

        start = time.perf_counter()
        status = "completed"
        result = None
        try:
            result = searcher.run()
        except RunCancelled:
            status = "cancelled"
        search_seconds = time.perf_counter() - start

        query_engine = getattr(searcher, "engine", None)
        queries = query_engine.queries if query_engine is not None else 0
        emit(
            RunCompleted(
                status=status,
                utility=result.utility if result is not None else 0.0,
                queries=result.queries if result is not None else queries,
                seconds=search_seconds,
            )
        )
        with self._lock:
            self.queries_served += queries
            if status == "completed":
                self.runs_completed += 1
            else:
                self.runs_cancelled += 1
        return DiscoveryRun(
            run_id=run_id,
            request=request,
            status=status,
            result=result,
            events=events,
            n_candidates=len(candidates),
            candidate_source=source,
            prepare_seconds=prepare_seconds,
            search_seconds=search_seconds,
        )

    def _resolve_task(self, request: DiscoveryRequest) -> Task:
        if isinstance(request.task, str):
            return self.tasks.create(request.task, **request.task_options)
        if request.task_options:
            raise ValueError(
                "task_options only apply when the task is given by name"
            )
        return request.task

    @staticmethod
    def _attach_hooks(searcher, emit, cancel: CancellationToken) -> None:
        """Wire the run's event stream into the searcher's query engine."""
        query_engine = getattr(searcher, "engine", None)
        if query_engine is not None:
            if cancel is not None:
                query_engine.pre_query = cancel.raise_if_cancelled
            query_engine.on_query = lambda index, value, best: emit(
                QueryIssued(query_index=index, utility=value, best_utility=best)
            )
            query_engine.on_accept = lambda aug_id, utility, n_selected: emit(
                AugmentationAccepted(
                    aug_id=aug_id, utility=utility, n_selected=n_selected
                )
            )
        if hasattr(searcher, "on_round"):
            searcher.on_round = lambda index, utility, queries, committed: emit(
                RoundCompleted(
                    round_index=index,
                    utility=utility,
                    queries=queries,
                    committed=committed,
                )
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def corpus_stats(self, batch_tables: int = 256, seed: int = 0) -> dict:
        """Table-I corpus characteristics.

        Served from the catalog's disk artifacts when one is attached
        (``batch_tables`` bounds resident entries during the joinable
        pass; the stored config's seed applies); otherwise computed from
        the live corpus with a transient index seeded by ``seed``.
        """
        if self.catalog is not None and self.catalog.store is not None:
            return self.catalog.corpus_stats(batch_tables=batch_tables)
        from repro.data import corpus_characteristics

        corpus = list(self.corpus.values())
        index = DiscoveryIndex(min_containment=0.3, seed=seed).build(corpus)
        return corpus_characteristics(corpus, index)

    def stats(self) -> dict:
        """Engine-level serving statistics."""
        with self._lock:
            out = {
                "runs_started": self.runs_started,
                "runs_completed": self.runs_completed,
                "runs_cancelled": self.runs_cancelled,
                "runs_failed": self.runs_failed,
                "queries_served": self.queries_served,
                "prepared_candidate_sets": len(self._prepared),
                "corpus_tables": len(self._corpus) if self._corpus else 0,
                "searchers": self.searchers.names(),
            }
            # Read under the same lock that guards prepare(): a catalog
            # mid-refresh must not leak a half-applied view into stats.
            if self.catalog is not None:
                out["catalog"] = self.catalog.stats()
        return out
