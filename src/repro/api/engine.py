"""The :class:`DiscoveryEngine`: a stateful, serving-oriented facade.

One engine owns the expensive shared state of goal-oriented discovery —
an optional persistent :class:`~repro.catalog.Catalog`, the corpus, the
warm discovery index, prepared-candidate caches, and the searcher/task/
scenario registries — and serves many :class:`DiscoveryRequest`s against
it::

    engine = DiscoveryEngine.open("my_catalog").attach_corpus(corpus)
    run = engine.discover(DiscoveryRequest(base=din, task=task,
                                           searcher="metam",
                                           config=MetamConfig(theta=0.8)))
    print(run.result.summary())

``discover`` is thread-safe: candidate preparation is striped — every
``(base content, spec, seed, registry)`` key has its own lock, so the
first request for a key pays, concurrent requests for the same key share
the result, and requests for *disjoint* keys prepare fully in parallel
(see ``benchmarks/bench_engine_parallel.py``; catalog mutations are
serialized internally, and the on-disk store is concurrency-safe in its
own right).  Each run gets its own searcher, query accounting, and RNG —
so N callers can serve requests against one warm engine concurrently
(``benchmarks/bench_engine_concurrency.py``).

``submit`` is the non-blocking variant: it queues the request on a
bounded worker pool and returns a
:class:`~repro.api.futures.DiscoveryFuture` immediately.  An optional
result cache (``result_cache_bytes``) serves repeated identical requests
from their recorded runs without re-searching; with
``persist_results=True`` (and a store-backed catalog) completed run
records additionally spill into the catalog store under content-
addressed keys, so repeated requests warm-start across processes and
survive restarts.  Submitting an identical cacheable request while one
is already in flight *reserves* its cache slot: the follower waits for
the owner and replays the recorded run instead of searching twice.

A :class:`~repro.catalog.CatalogRefresher` can be attached
(:meth:`attach_refresher`): the engine then swaps the refresher's
published :class:`~repro.catalog.CatalogSnapshot` in atomically between
requests — reads never block on background maintenance — and a
``staleness_budget`` bounds how old a served snapshot may be.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
import weakref
from dataclasses import replace

from repro.api.events import (
    AugmentationAccepted,
    CancellationToken,
    CandidatesPrepared,
    QueryIssued,
    RoundCompleted,
    RunCancelled,
    RunCompleted,
    RunStarted,
)
from repro.api.registries import (
    Registry,
    default_scenarios,
    default_searchers,
    default_tasks,
)
from repro.api.futures import DiscoveryFuture
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.api.run import DiscoveryRun
from repro.catalog import Catalog
from repro.catalog.refresh import register_refresher_metrics
from repro.catalog.store import register_store_metrics
from repro.catalog.fingerprint import (
    config_fingerprint,
    corpus_fingerprint,
    registry_fingerprint,
    result_key,
    table_fingerprint,
)
from repro.dataframe.table import Table, normalize_corpus
from repro.discovery.candidates import (
    Candidate,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.discovery.index import DiscoveryIndex
from repro.discovery.unions import find_union_candidates
from repro.obs.logcfg import get_logger, log_context
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import Tracer, mark, span
from repro.profiles.registry import default_registry
from repro.tasks.base import Task
from repro.utils.locks import KeyedMutex
from repro.utils.lru import LruDict

_log = get_logger(__name__)


class EngineStateError(RuntimeError):
    """The engine is missing state a call needs (usually a corpus)."""


class DiscoveryEngine:
    """Serves goal-oriented discovery requests over one corpus + catalog.

    Parameters
    ----------
    corpus:
        Repository tables (dict by name, or an iterable of Tables); may
        also be attached later with :meth:`attach_corpus`.
    catalog:
        Optional persistent :class:`~repro.catalog.Catalog` — switches
        candidate preparation to warm-start mode (incremental refresh +
        profile-vector cache).
    profile_registry:
        Default profile registry for candidate preparation (``None`` =
        :func:`~repro.profiles.registry.default_registry`).
    searchers / tasks / scenarios:
        Registry overrides; defaults carry every built-in.  Mutate them
        (``engine.searchers.register(...)``) to plug in new strategies
        without touching core code.
    max_prepared_sets:
        Bound on cached prepared-candidate sets (LRU-evicted beyond it;
        ``None`` disables eviction).  A long-lived serving engine sees
        many (base, spec, seed) combinations, and each set holds every
        candidate's materialized values — without a bound the cache
        grows with the request history instead of the working set.
    striped_prepare:
        ``True`` (default) gives every prepare key its own lock, so
        disjoint keys prepare in parallel.  ``False`` restores the
        engine-wide prepare lock of earlier releases — the baseline the
        parallel benchmark compares against; results are identical
        either way.
    max_workers:
        Size of the bounded worker pool behind :meth:`submit` (created
        lazily on the first submit; :meth:`shutdown` drains it).
    result_cache_bytes:
        Byte budget of the engine-level result cache (measured as the
        JSON run-record size, LRU-evicted).  ``0``/``None`` (default)
        disables it.  Cached runs are exact replays — the recorded
        result, events, and timings — keyed by a canonical request
        fingerprint, and the cache is invalidated whenever the corpus
        or catalog content changes.
    persist_results:
        Add the result cache's on-disk tier: completed cacheable runs
        spill their JSON records into the attached catalog's store,
        keyed by a content-addressed request fingerprint (base table
        content + registry + request descriptor + whole-corpus content
        + catalog config + library version), so identical requests
        replay across processes and restarts.  Where the in-memory tier
        invalidates by in-process counters (corpus epoch, catalog
        mutation count), the persistent tier's keys *embed* the content
        those counters track — a changed corpus simply makes old
        records unreachable, and reverting the content makes them valid
        again.  Requires ``result_cache_bytes``; quietly inactive until
        a store-backed catalog is attached.
    refresher:
        Optional :class:`~repro.catalog.CatalogRefresher` to adopt
        snapshots from (see :meth:`attach_refresher`).
    staleness_budget:
        Default bound (seconds) on the age of the served snapshot when
        a refresher is attached; ``None`` serves whatever is current.
    metrics:
        Telemetry registry wiring: ``None`` (default) gives the engine
        its own private :class:`~repro.obs.MetricsRegistry`; pass a
        registry to share one across engines; ``False`` installs the
        no-op registry (instrumentation compiled out — the honest
        baseline ``benchmarks/bench_obs_overhead.py`` measures against).
        The attached catalog store and refresher record into the same
        registry.  Serving counters (``runs_started`` & co.) are views
        over the registry either way.
    tracing:
        ``True`` (default) records a per-run trace tree (request →
        prepare → per-round query evaluation) into every
        :class:`DiscoveryRun`; ``False`` skips span bookkeeping
        entirely (``run.trace`` stays ``None``).
    """

    def __init__(
        self,
        corpus=None,
        catalog: Catalog = None,
        profile_registry=None,
        searchers: Registry = None,
        tasks: Registry = None,
        scenarios: Registry = None,
        max_prepared_sets: int = 32,
        striped_prepare: bool = True,
        max_workers: int = 4,
        result_cache_bytes: int = None,
        persist_results: bool = False,
        refresher=None,
        staleness_budget: float = None,
        metrics=None,
        tracing: bool = True,
    ):
        try:
            prepared = LruDict(capacity=max_prepared_sets)
        except ValueError:
            raise ValueError(
                f"max_prepared_sets must be >= 1 or None, got {max_prepared_sets}"
            ) from None
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if persist_results and not result_cache_bytes:
            raise ValueError(
                "persist_results requires result_cache_bytes (the on-disk "
                "tier extends the result cache, it does not replace it)"
            )
        self.catalog = catalog
        self.searchers = searchers if searchers is not None else default_searchers()
        self.tasks = tasks if tasks is not None else default_tasks()
        self.scenarios = scenarios if scenarios is not None else default_scenarios()
        self._profile_registry = profile_registry
        self._corpus = None
        self._corpus_epoch = 0
        self._lock = threading.RLock()
        # Catalog mutations (refresh/save, lazy index paging, profile
        # cache construction) stay serialized even under striped
        # preparation: the in-memory index is shared mutable state.
        self._catalog_lock = threading.RLock()
        self.striped_prepare = bool(striped_prepare)
        self._prepare_keys = KeyedMutex()  # per-key locks (striped mode)
        self._prepare_gate = threading.RLock()  # engine-wide (legacy mode)
        self.max_prepared_sets = max_prepared_sets
        self._prepared = prepared  # prepare key -> candidates (LRU-bounded)
        self.max_workers = max_workers
        self._executor = None
        if result_cache_bytes:
            self._results = LruDict(max_bytes=result_cache_bytes)
        else:
            self._results = None  # disabled
        self.result_cache_bytes = result_cache_bytes
        self.persist_results = bool(persist_results)
        #: In-flight reservations of result-cache slots: cache-key prefix
        #: -> threading.Event set when the owning submitted run resolves
        #: (completes, fails, or is cancelled while still queued).
        self._reservations = {}
        self._refresher = None
        self._staleness_budget = (
            float(staleness_budget) if staleness_budget is not None else None
        )
        self._snapshot_epoch = 0  # epoch of the adopted refresher snapshot
        self.last_sync_staleness = None
        #: Single-slot memo of the corpus-content digest, keyed by the
        #: corpus dict's identity (corpora are replaced, never mutated).
        self._corpus_fp_memo = None
        #: Table-content digests memoized by object *identity* (Tables
        #: are immutable by library convention and unhashable, so this
        #: maps ``id(table)`` with a weakref that both guards against id
        #: reuse and evicts dead entries).  The cache key of a request
        #: then hashes its base table once per object — not once per
        #: submit, once per discover, and once per corpus scan.
        #: Registry fingerprints are deliberately NOT memoized:
        #: ProfileRegistry mutates in place (``add``/``remove``), and a
        #: stale digest would replay runs recorded under the old
        #: profile set.
        self._table_fp_memo = {}
        #: Registry mutation counts at construction: the persistent
        #: result tier stays active only while they are unchanged (a
        #: factory re-registered mid-life has no content identity the
        #: on-disk keys could carry, so the tier goes conservative).
        self._registry_baseline = (self.searchers.mutations, self.tasks.mutations)
        self._next_run_id = 1
        if metrics is False:
            registry = NULL_REGISTRY
        elif metrics is None:
            registry = MetricsRegistry()
        else:
            registry = metrics
        self._init_metrics(registry)
        self.tracer = Tracer(enabled=tracing)
        #: Serialized trace trees of the most recent live runs (replays
        #: carry their original trace) — what ``--trace-out`` dumps.
        self.recent_traces = deque(maxlen=32)
        if self.catalog is not None and self.catalog.store is not None:
            self.catalog.store.attach_metrics(registry)
        if corpus is not None:
            self.attach_corpus(corpus)
        if refresher is not None:
            self.attach_refresher(refresher, staleness_budget=staleness_budget)

    def _init_metrics(self, registry) -> None:
        """Register (get-or-create) every engine family on ``registry``,
        plus the store and refresher families — so a metrics snapshot
        names the full catalog of series even before a catalog or
        refresher is attached.  Labeled children the serving path uses
        are pre-touched for the same reason: zero shows as zero."""
        self.metrics = registry
        self._m_runs_started = registry.counter(
            "repro_engine_runs_started_total",
            "Runs started, live executions and cache replays alike.",
        )
        self._m_runs = registry.counter(
            "repro_engine_runs_total",
            "Runs finished, by terminal status.",
            labels=("status",),
        )
        for status in ("completed", "cancelled", "failed"):
            self._m_runs.labels(status=status)
        self._m_queries = registry.counter(
            "repro_engine_queries_served_total",
            "Utility queries charged across all served runs.",
        )
        self._m_result_cache = registry.counter(
            "repro_engine_result_cache_events_total",
            "Result-cache activity (store_hit rides along with hit).",
            labels=("event",),
        )
        for event in ("hit", "miss", "store_hit", "spill"):
            self._m_result_cache.labels(event=event)
        self._m_prepare_cache = registry.counter(
            "repro_engine_prepare_cache_events_total",
            "Prepared-candidate cache activity.",
            labels=("event",),
        )
        for event in ("hit", "miss"):
            self._m_prepare_cache.labels(event=event)
        self._m_queue_depth = registry.gauge(
            "repro_engine_submit_queue_depth",
            "Submitted runs accepted but not yet executing.",
        )
        self._m_pool_active = registry.gauge(
            "repro_engine_pool_active_workers",
            "Worker-pool threads currently executing runs.",
        )
        self._m_pool_max = registry.gauge(
            "repro_engine_pool_max_workers",
            "Size of the bounded worker pool behind submit().",
        )
        self._m_pool_max.set(self.max_workers)
        self._m_prepared_sets = registry.gauge(
            "repro_engine_prepared_sets",
            "Prepared-candidate sets resident in the LRU cache.",
        )
        self._m_cache_entries = registry.gauge(
            "repro_engine_result_cache_entries",
            "Recorded runs resident in the result cache.",
        )
        self._m_cache_bytes = registry.gauge(
            "repro_engine_result_cache_bytes",
            "Result-cache footprint (JSON run-record bytes).",
        )
        self._m_cache_reserved = registry.gauge(
            "repro_engine_result_cache_reserved",
            "In-flight reservations of result-cache slots.",
        )
        self._m_staleness_gauge = registry.gauge(
            "repro_engine_last_sync_staleness_seconds",
            "Refresher staleness observed at the last snapshot sync.",
        )
        self._m_staleness = registry.histogram(
            "repro_engine_staleness_served_seconds",
            "Refresher staleness at each request-boundary sync.",
            buckets=(0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0),
        )
        self._m_run_seconds = registry.histogram(
            "repro_engine_run_seconds",
            "End-to-end wall time of live runs, by terminal status.",
            labels=("status",),
        )
        self._m_prepare_seconds = registry.histogram(
            "repro_engine_prepare_seconds",
            "Candidate-preparation wall time, by provenance.",
            labels=("source",),
        )
        self._m_search_seconds = registry.histogram(
            "repro_engine_search_seconds",
            "Searcher wall time of live runs.",
        )
        self._m_run_rounds = registry.histogram(
            "repro_engine_run_rounds",
            "Search rounds per live run.",
            buckets=(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
        )
        self._m_round_gain = registry.histogram(
            "repro_engine_round_utility_gain",
            "Utility gained per completed search round.",
            buckets=(0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.5, 0.75, 1.0),
        )
        # Pre-register the families instrumented layers record into.
        register_store_metrics(registry)
        register_refresher_metrics(registry)

    # Serving counters are read-only views over the metrics registry —
    # one source of truth for stats(), exposition, and tests alike.
    @property
    def runs_started(self) -> int:
        return int(self._m_runs_started.value)

    @property
    def runs_completed(self) -> int:
        return int(self._m_runs.labels(status="completed").value)

    @property
    def runs_cancelled(self) -> int:
        return int(self._m_runs.labels(status="cancelled").value)

    @property
    def runs_failed(self) -> int:
        return int(self._m_runs.labels(status="failed").value)

    @property
    def queries_served(self) -> int:
        return int(self._m_queries.value)

    @property
    def result_cache_hits(self) -> int:
        return int(self._m_result_cache.labels(event="hit").value)

    @property
    def result_store_hits(self) -> int:
        return int(self._m_result_cache.labels(event="store_hit").value)

    # ------------------------------------------------------------------
    # Construction / state
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        catalog_dir,
        corpus=None,
        create: bool = True,
        backend=None,
        object_codec: int = None,
        **config,
    ) -> "DiscoveryEngine":
        """Engine backed by the persistent catalog at ``catalog_dir``.

        ``create=True`` (default) creates the catalog when none exists
        (``config`` applies only then — including ``hash_version=2`` for
        the blake2-free vectorized hash family); ``create=False``
        requires a saved catalog and raises
        :class:`~repro.catalog.CatalogStoreError` otherwise.  ``corpus``
        is attached when given.  ``backend`` selects the store layout
        (``"local"``/``"segments"``) for fresh roots; an existing root
        auto-detects its layout regardless.  ``object_codec`` selects
        the artifact codec new writes use (``3`` = the mmap-friendly
        fixed layout; default keeps the deflated binary format).
        Existing artifacts stay readable under any choice — the store
        reads through every registered codec.
        """
        from repro.catalog.store import CatalogStore

        root = (
            catalog_dir
            if isinstance(catalog_dir, CatalogStore)
            else CatalogStore(
                catalog_dir, backend=backend, object_codec=object_codec
            )
        )
        if create:
            catalog = Catalog.open(root, **config)
        else:
            catalog = Catalog.load(root)
        return cls(corpus=corpus, catalog=catalog)

    def attach_corpus(self, corpus) -> "DiscoveryEngine":
        """Attach (or replace) the repository; returns ``self``.

        Accepts a ``{name: Table}`` dict or an iterable of Tables.
        Replacing the corpus drops the prepared-candidate cache — cached
        candidate sets are only valid for the corpus they were built on.
        """
        normalized = normalize_corpus(corpus)
        with self._lock:
            self._corpus = normalized
            self._corpus_epoch += 1
            self._prepared.clear()
            # Drop the content-digest memo too: it pins the previous
            # corpus dict (and every Table in it) otherwise.
            self._corpus_fp_memo = None
            self._invalidate_results()
        return self

    def attach_refresher(self, refresher, staleness_budget: float = None) -> "DiscoveryEngine":
        """Adopt snapshots from a :class:`~repro.catalog.CatalogRefresher`.

        From now on every request first swaps in the refresher's latest
        published :class:`~repro.catalog.CatalogSnapshot` (corpus +
        hydrated catalog together, atomically, between requests — an
        in-flight run keeps the snapshot it started with).
        ``staleness_budget`` (default: the refresher's own) bounds how
        old the served snapshot may be; exceeding it forces one
        synchronous refresh before serving.  The engine does not own the
        refresher's lifecycle — start/stop it yourself (or use it as a
        context manager).  Returns ``self``; the initial snapshot is
        adopted immediately (running a first cycle if none exists yet).
        """
        self._refresher = refresher
        refresher.attach_metrics(self.metrics)
        # A different refresher numbers its epochs from 1 again; reset
        # so its first snapshot is always adopted.
        self._snapshot_epoch = 0
        if staleness_budget is not None:
            self._staleness_budget = float(staleness_budget)
        elif refresher.staleness_budget is not None:
            self._staleness_budget = refresher.staleness_budget
        self._sync_snapshot()
        return self

    def _sync_snapshot(self, staleness_budget: float = None) -> None:
        """Swap in the refresher's current snapshot if it is newer than
        the one being served (no-op without a refresher).

        Runs at request boundaries only, so the swap is atomic from any
        run's point of view: corpus, catalog, and the caches keyed on
        them change together under the engine locks, and runs already
        executing keep their own corpus/catalog snapshot to the end.
        """
        refresher = self._refresher
        if refresher is None:
            return
        budget = (
            staleness_budget
            if staleness_budget is not None
            else self._staleness_budget
        )
        snapshot = refresher.ensure_fresh(budget)
        staleness = refresher.staleness()
        self.last_sync_staleness = staleness
        if staleness != float("inf"):
            self._m_staleness.observe(staleness)
            self._m_staleness_gauge.set(staleness)
        # <= not ==: a request that raced a background cycle may hold an
        # *older* snapshot than one a concurrent request just adopted —
        # installing it would regress the served corpus.
        if snapshot is None or snapshot.epoch <= self._snapshot_epoch:
            return
        # Same nesting order as the prepare path (catalog lock outside
        # the engine lock) — never the reverse, which would deadlock
        # against a prepare invalidating the result cache.
        with self._catalog_lock:
            with self._lock:
                if snapshot.epoch <= self._snapshot_epoch:
                    return
                self._snapshot_epoch = snapshot.epoch
                self.catalog = snapshot.catalog
                self._corpus = dict(snapshot.corpus)
                self._corpus_epoch += 1
                self._prepared.clear()
                if self._results is not None:
                    self._results.clear()
                # Seed the content-digest memo from the refresher's scan
                # — the swap costs no re-fingerprinting.
                self._corpus_fp_memo = (
                    self._corpus,
                    corpus_fingerprint(snapshot.fingerprints),
                )

    def shutdown(self, wait: bool = True) -> None:
        """Drain the async worker pool (no-op when none was created).

        ``wait=True`` blocks until queued runs finish.  The engine stays
        usable — a later :meth:`submit` lazily builds a fresh pool.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "DiscoveryEngine":
        return self

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False

    @property
    def corpus(self) -> dict:
        """The attached repository (raises until :meth:`attach_corpus`)."""
        if self._corpus is None:
            raise EngineStateError(
                "no corpus attached; call engine.attach_corpus(corpus) first"
            )
        return self._corpus

    def profile_registry(self):
        """The engine's default profile registry (built lazily)."""
        with self._lock:
            if self._profile_registry is None:
                self._profile_registry = default_registry()
            return self._profile_registry

    # ------------------------------------------------------------------
    # Candidate preparation (striped per-key locks, cached)
    # ------------------------------------------------------------------
    def prepare(
        self,
        base: Table,
        spec: CandidateSpec = None,
        registry=None,
        seed: int = 0,
    ) -> list:
        """Discovery + materialization + profiling for one base table.

        Returns profiled :class:`~repro.discovery.candidates.Candidate`
        objects — the common input of METAM and every baseline.  Results
        are cached by (base content, spec, seed, profile registry), and
        preparation is locked per key: concurrent requests for the same
        key share one preparation, while disjoint keys prepare in
        parallel (catalog mutations are serialized internally, and the
        catalog store's own writes are concurrency-safe).
        """
        self._sync_snapshot()
        candidates, _from_cache, _corpus = self._prepare_cached(
            base, spec, registry, seed
        )
        return candidates

    def _prepare_cached(
        self, base, spec, registry, seed,
        base_fingerprint=None, registry_fp=None,
    ):
        """Per-key-locked prepare.

        Returns ``(candidates, from_cache, corpus)`` — the corpus
        snapshot the candidates were prepared from, taken under the
        engine lock, so callers run their searcher against exactly the
        tables the candidates reference even if ``attach_corpus`` races
        (a prepare that overlaps a corpus swap keeps its own snapshot
        and is not admitted into the cache of the new corpus).

        ``base_fingerprint``/``registry_fp`` let callers that already
        fingerprinted those inputs (the result-cache path) skip the
        second hash of each.
        """
        spec = spec or CandidateSpec()
        registry = registry if registry is not None else self.profile_registry()
        key = (
            base_fingerprint or self._fingerprint_table(base),
            spec,
            int(seed),
            registry_fp or registry_fingerprint(registry),
        )
        with self._lock:
            corpus = self.corpus
            cached = self._prepared.get(key)
            if cached is not None:
                self._m_prepare_cache.labels(event="hit").inc()
                return list(cached), True, corpus
        if self.striped_prepare:
            guard = self._prepare_keys(key)
        else:
            guard = self._prepare_gate
        with guard:
            with self._lock:
                # Re-check under the key lock: a concurrent holder may
                # have prepared this exact key while we waited.
                corpus = self.corpus
                epoch = self._corpus_epoch
                cached = self._prepared.get(key)
                if cached is not None:
                    self._m_prepare_cache.labels(event="hit").inc()
                    return list(cached), True, corpus
            self._m_prepare_cache.labels(event="miss").inc()
            candidates = self._prepare_uncached(base, spec, registry, seed, corpus)
            with self._lock:
                if epoch == self._corpus_epoch:
                    self._prepared.put(key, candidates)
            return list(candidates), False, corpus

    def _prepare_uncached(self, base, spec, registry, seed, corpus) -> list:
        """The discovery front-end (exactly the legacy ``prepare_candidates``
        semantics, so warm and cold paths stay byte-identical).

        Runs outside the engine lock.  With a catalog attached, the
        catalog-touching section (refresh/save, index queries with their
        lazy entry paging, profile-cache construction) holds the
        engine's catalog lock; materialization and profiling — the
        dominant cost — run in parallel across keys either way."""
        cache = None
        if self.catalog is not None:
            with self._catalog_lock:
                catalog = self.catalog
                overridden = []
                if catalog.config["min_containment"] != spec.min_containment:
                    overridden.append(
                        f"min_containment={catalog.config['min_containment']} "
                        f"(requested {spec.min_containment})"
                    )
                if catalog.config["seed"] != seed:
                    overridden.append(
                        f"index seed={catalog.config['seed']} (requested {seed}; "
                        f"the requested seed still governs profile sampling)"
                    )
                if overridden:
                    import warnings

                    warnings.warn(
                        "catalog config overrides the requested values for "
                        "discovery in warm-start mode: " + ", ".join(overridden),
                        stacklevel=3,
                    )
                diff = catalog.refresh(corpus)
                if diff.changed:
                    # Changed catalog content means previously recorded
                    # results may no longer reproduce.
                    self._invalidate_results()
                if (
                    catalog.store is not None
                    and (diff.added or diff.updated)
                    and not catalog.removed_since_save
                ):
                    # Keep the on-disk manifest/snapshot current, so the
                    # next process warm-starts from the packed snapshot.
                    # Only additive changes are persisted implicitly: a
                    # partial corpus must not silently shrink the saved
                    # catalog.
                    catalog.save()
                cache = catalog.profile_cache(
                    base, registry, sample_size=spec.sample_size, seed=seed
                )
                augmentations = generate_candidates(
                    base,
                    catalog.index,
                    max_hops=spec.max_hops,
                    max_fanout=spec.max_fanout,
                )
        else:
            index = DiscoveryIndex(
                min_containment=spec.min_containment, seed=seed
            )
            index.build(corpus.values())
            augmentations = generate_candidates(
                base, index, max_hops=spec.max_hops, max_fanout=spec.max_fanout
            )
        candidates = materialize_candidates(base, augmentations, corpus)
        if spec.include_unions:
            for union in find_union_candidates(
                base, corpus, min_shared=spec.min_union_shared
            ):
                candidates.append(
                    Candidate(
                        aug=union,
                        values=union.materialize(base, corpus),
                        overlap=union.shared_fraction,
                    )
                )
        return profile_candidates(
            candidates,
            base,
            corpus,
            registry,
            sample_size=spec.sample_size,
            seed=seed,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def discover(
        self,
        request: DiscoveryRequest,
        progress=None,
        cancel: CancellationToken = None,
        staleness_budget: float = None,
    ) -> DiscoveryRun:
        """Serve one request; returns the completed :class:`DiscoveryRun`.

        ``progress`` (a callable taking one
        :class:`~repro.api.events.RunEvent`) streams every event as it
        happens; ``cancel`` stops the run cooperatively at its next
        utility query (the run then finishes with status
        ``"cancelled"`` and ``result=None``).  ``staleness_budget``
        overrides the engine's default bound on snapshot age for this
        request (only meaningful with a refresher attached).

        With the result cache enabled, a request identical to a
        previously completed one is served as an exact replay: the
        recorded run comes back under a fresh ``run_id`` with
        ``cached=True``, and its recorded events are re-streamed to
        ``progress`` (they carry the original run's id).  With
        ``persist_results``, a record spilled by an earlier process is
        replayed the same way (and re-admitted to the in-memory tier).
        """
        task = self._resolve_task(request)
        factory = self.searchers.get(request.searcher)  # fail before any work
        self._sync_snapshot(staleness_budget)
        self.corpus  # fail fast when none is attached
        cache_key = self._result_cache_key(request)
        if cancel is not None and cancel.cancelled:
            # An already-cancelled token must yield a cancelled run, not
            # a completed replay — skip the cache and serve normally
            # (the run stops at its first utility query, as ever).
            cache_key = None
        if cache_key is not None:
            with self._lock:
                # Lookup under the *current* catalog mutation count:
                # out-of-band catalog changes (engine.catalog.add/...)
                # shift the count and make older entries unreachable.
                hit = self._results.get(cache_key + (self._catalog_mutations(),))
            if hit is not None:
                return self._replay(hit, request, progress)
            stored = self._load_persistent(cache_key, request)
            if stored is not None:
                run, size = stored
                with self._lock:
                    # Re-admit to the in-memory tier under the current
                    # counters, so the next identical request skips disk.
                    self._results.put(
                        cache_key + (self._catalog_mutations(),), run, size=size
                    )
                return self._replay(run, request, progress, tier="store")
            self._m_result_cache.labels(event="miss").inc()
        with self._lock:
            run_id = self._next_run_id
            self._next_run_id += 1
        self._m_runs_started.inc()
        context_box = [] if cache_key is not None else None
        try:
            run = self._serve(
                request,
                task,
                factory,
                run_id,
                progress,
                cancel,
                # The cache key leads with the base-table and registry
                # fingerprints; reuse both so a cache-enabled discover
                # hashes each input once, not twice.
                base_fingerprint=cache_key[0] if cache_key else None,
                registry_fp=cache_key[1] if cache_key else None,
                context_box=context_box,
            )
        except BaseException:
            # Anything that escapes (bad searcher options, a task that
            # raises, a progress callback bug) still balances the books.
            self._m_runs.labels(status="failed").inc()
            raise
        if cache_key is not None and run.completed and context_box:
            # Size by the JSON run record — the serializable footprint
            # the LRU budget is defined over (computed outside the lock).
            # The key embeds the corpus epoch this run was requested
            # under; if attach_corpus raced the search, the entry lands
            # under the superseded epoch and no future request can hit
            # it (their keys carry the new epoch).  The catalog mutation
            # count was stamped after this run's prepare (it reflects
            # the run's own catalog refresh) and before its search (a
            # catalog mutated mid-search leaves the entry under the
            # older, unreachable count).
            record = run.to_record()
            size = len(json.dumps(record).encode("utf-8"))
            mutations, corpus_used = context_box[0]
            with self._lock:
                self._results.put(cache_key + (mutations,), run, size=size)
            self._spill_persistent(cache_key, record, corpus_used)
            self._m_result_cache.labels(event="spill").inc()
        return run

    def _replay(self, hit: DiscoveryRun, request, progress, tier="memory"):
        """Serve a recorded run as an exact replay (fresh ``run_id``,
        ``cached=True``, recorded events re-streamed to ``progress``)."""
        with self._lock:
            run_id = self._next_run_id
            self._next_run_id += 1
        self._m_runs_started.inc()
        try:
            if progress is not None:
                for event in hit.events:
                    progress(event)
        except BaseException:
            # A progress callback bug during a replay still balances the
            # books, exactly like a live run's.
            self._m_runs.labels(status="failed").inc()
            raise
        self._m_runs.labels(status="completed").inc()
        self._m_result_cache.labels(event="hit").inc()
        if tier == "store":
            self._m_result_cache.labels(event="store_hit").inc()
        # The replayed result's queries count as served: accounting
        # stays comparable whether a run executed or replayed.
        self._m_queries.inc(hit.queries)
        _log.debug(
            "run replayed from result cache",
            run_id=run_id,
            searcher=request.searcher,
            tier=tier,
            original_run_id=hit.run_id,
        )
        return replace(
            hit,
            run_id=run_id,
            request=request,
            events=list(hit.events),
            cached=True,
            cache_info={
                **hit.cache_info,
                "result_cache_hit": True,
                "result_cache_tier": tier,
            },
        )

    def submit(
        self,
        request: DiscoveryRequest,
        progress=None,
        cancel: CancellationToken = None,
        staleness_budget: float = None,
    ) -> DiscoveryFuture:
        """Non-blocking :meth:`discover`: returns immediately.

        The request is queued on the engine's bounded worker pool (at
        most ``max_workers`` runs execute at once; further submissions
        wait their turn) and served with exactly the synchronous
        semantics — same preparation sharing, result cache, events, and
        records.  The returned :class:`DiscoveryFuture` owns the run's
        cancellation token (``cancel`` to supply your own), so queued
        runs can be dropped and executing runs stopped cooperatively.

        A cacheable request *reserves* its result-cache slot while in
        flight: an identical request submitted meanwhile waits for the
        owner to resolve and then replays the recorded run instead of
        executing the same search twice.  The reservation is released
        when the owning future resolves — including a future cancelled
        while still queued (its run never executes, so the release rides
        the future's done callback; anything else would leak the slot
        until shutdown and leave followers waiting forever).
        """
        token = cancel if cancel is not None else CancellationToken()
        # Computed on the submitting thread because the reservation must
        # exist before this call returns; the fingerprints it needs are
        # memoized by object identity, so the worker's own key
        # computation inside discover() reuses them instead of hashing
        # the base table a second time.
        reservation_key = self._result_cache_key(request)
        owner_event = None
        wait_for = None

        def _tracked(fn, *args):
            # Runs on the worker thread: the handoff from "queued" to
            # "executing" is what the two gauges chart.
            self._m_queue_depth.dec()
            self._m_pool_active.inc()
            try:
                return fn(*args)
            finally:
                self._m_pool_active.dec()

        def _follow():
            # By the time the owner resolves its record is admitted (or
            # it failed/cancelled, in which case this executes a normal
            # run) — either way a plain discover is correct.
            wait_for.wait()
            return self.discover(request, progress, token, staleness_budget)

        # Reservation registration and enqueueing happen under ONE lock
        # acquisition: a follower can only observe a reservation whose
        # owner is already ahead of it in the pool's FIFO queue, so a
        # follower can never occupy the last worker while its owner
        # waits behind it.  Holding the lock across submit also means a
        # racing shutdown() either drains this run or never sees it.
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine",
                )
            if reservation_key is not None:
                existing = self._reservations.get(reservation_key)
                if existing is None:
                    owner_event = threading.Event()
                    self._reservations[reservation_key] = owner_event
                else:
                    wait_for = existing
            self._m_queue_depth.inc()
            if wait_for is not None:
                future = self._executor.submit(_tracked, _follow)
            else:
                future = self._executor.submit(
                    _tracked,
                    self.discover,
                    request,
                    progress,
                    token,
                    staleness_budget,
                )

        def _queue_drop(f):
            # Cancelled-while-queued is the one resolution path where the
            # tracked body never runs, so the queue gauge must be
            # balanced here or it leaks one slot per dropped run.
            if f.cancelled():
                self._m_queue_depth.dec()

        future.add_done_callback(_queue_drop)
        if owner_event is not None:
            def _release(_inner, key=reservation_key, event=owner_event):
                with self._lock:
                    if self._reservations.get(key) is event:
                        del self._reservations[key]
                event.set()

            # A done callback fires on completion, failure, *and*
            # cancellation-while-queued — the one path where the run
            # body never executes and an in-run release would leak.
            future.add_done_callback(_release)
        return DiscoveryFuture(future, token, request)

    def _memo_fingerprint(self, obj, memo: dict, compute) -> str:
        """Identity-memoized content digest of an immutable object.

        Entries are ``id(obj) -> (weakref, digest)``: the weakref check
        guards against id reuse after the original object dies, and its
        callback evicts the entry so the memo never outgrows the set of
        live objects."""
        key = id(obj)
        with self._lock:
            entry = memo.get(key)
            if entry is not None and entry[0]() is obj:
                return entry[1]
        fingerprint = compute(obj)
        try:
            ref = weakref.ref(obj, lambda _r, key=key: memo.pop(key, None))
        except TypeError:  # pragma: no cover - unweakrefable stub
            return fingerprint
        with self._lock:
            memo[key] = (ref, fingerprint)
        return fingerprint

    def _fingerprint_table(self, table) -> str:
        """Content fingerprint of ``table``, memoized by identity
        (Tables are immutable by library convention)."""
        return self._memo_fingerprint(
            table, self._table_fp_memo, table_fingerprint
        )

    def _catalog_mutations(self) -> int:
        """The attached catalog's structural mutation count (``-1``
        without one) — the cache-key component that makes entries
        recorded before any catalog change unreachable."""
        return self.catalog.mutations if self.catalog is not None else -1

    def _result_cache_key(self, request: DiscoveryRequest):
        """Cache-key prefix for ``request``, or ``None`` when uncacheable
        (cache disabled, candidates supplied, task given as an object, or
        options without a canonical form).

        The prefix embeds the current corpus epoch: entries recorded
        under a previous corpus are unreachable by construction, so a
        run that races an ``attach_corpus`` can never be replayed
        against the new corpus (the explicit clear then just reclaims
        the memory).  Callers append the catalog mutation count — at
        lookup time for reads, at admission time for writes (a run's own
        prepare may legitimately refresh the catalog)."""
        if self._results is None:
            return None
        descriptor = request.cache_descriptor()
        if descriptor is None:
            return None
        registry = (
            request.registry
            if request.registry is not None
            else self.profile_registry()
        )
        with self._lock:
            epoch = self._corpus_epoch
        return (
            self._fingerprint_table(request.base),
            registry_fingerprint(registry),
            descriptor,
            epoch,
            # Re-registering a searcher or task under the same name
            # (overwrite=True) must not replay runs of the old factory.
            self.searchers.mutations,
            self.tasks.mutations,
        )

    def _invalidate_results(self) -> None:
        """Drop every cached run (corpus or catalog content changed).

        Only the in-memory tier needs explicit clearing: persistent
        records embed the content they were recorded under in their
        keys, so changed content makes them unreachable by construction
        (and reverting the content makes them valid again)."""
        with self._lock:
            if self._results is not None:
                self._results.clear()

    # ------------------------------------------------------------------
    # Persistent result tier
    # ------------------------------------------------------------------
    def _persist_store(self):
        """The catalog store backing the persistent result tier, or
        ``None`` when the tier is inactive.

        The tier also deactivates as soon as a searcher or task factory
        is (re-)registered after construction: a live factory has no
        content identity the on-disk keys could embed, so neither
        replaying old records under it nor spilling its runs for other
        processes is sound.  (Factories registered *before* engine
        construction are part of the application's cross-process
        contract, like the library version the keys do embed.  Catalog
        content mutations, by contrast, need no counter here: the keys
        embed the corpus content and catalog config, and candidate
        preparation re-syncs the catalog to the corpus, so a replay
        always matches what a live run would have produced.)"""
        if not self.persist_results or self.catalog is None:
            return None
        if (
            self.searchers.mutations,
            self.tasks.mutations,
        ) != self._registry_baseline:
            return None
        return self.catalog.store

    def _corpus_content_fingerprint(self, corpus: dict):
        """Content digest of ``corpus`` (a specific corpus dict, not
        "whatever is attached right now" — the spill path stamps the
        corpus a run actually used, even if a swap raced the search).

        Memoized by dict identity: corpora are replaced wholesale, never
        mutated, so one digest per attached corpus suffices.  Snapshot
        swaps seed the memo from the refresher's scan; a manually
        attached corpus pays one fingerprint pass on first use.
        """
        with self._lock:
            memo = self._corpus_fp_memo
        if memo is not None and memo[0] is corpus:
            return memo[1]
        fingerprints = {
            name: self._fingerprint_table(table)
            for name, table in corpus.items()
        }
        digest = corpus_fingerprint(fingerprints)
        with self._lock:
            if self._corpus is corpus:
                self._corpus_fp_memo = (corpus, digest)
        return digest

    def _persistent_key(self, cache_key, corpus: dict):
        """On-disk key for one cacheable request served over ``corpus``,
        or ``None`` when the persistent tier is inactive."""
        if self._persist_store() is None:
            return None
        from repro import __version__

        with self._catalog_lock:
            catalog_config = config_fingerprint(self.catalog.config)
        return result_key(
            cache_key[0],  # base-table content fingerprint
            cache_key[1],  # profile-registry fingerprint
            cache_key[2],  # canonical request descriptor
            self._corpus_content_fingerprint(corpus),
            catalog_config,
            __version__,
        )

    def _load_persistent(self, cache_key, request):
        """Replayable run from the on-disk tier, or ``None`` on a miss.

        Returns ``(run, record size)``.  Malformed or foreign payloads
        are treated as misses — persisted runs are a cache, damage
        degrades to re-running."""
        store = self._persist_store()
        if store is None:
            return None
        with self._lock:
            corpus = self._corpus
        if corpus is None:
            return None
        key = self._persistent_key(cache_key, corpus)
        if key is None:
            return None
        payload = store.read_result(key)
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return None
        record = payload.get("record")
        try:
            run = DiscoveryRun.from_record(record, request, run_id=0)
        except (KeyError, ValueError, TypeError, AttributeError):
            return None
        if not run.completed:
            return None
        # Budget the in-memory admission by the stored file's size (the
        # wrapper stamp adds a few bytes over the bare record — close
        # enough for the LRU, and it skips re-serializing the payload
        # we just parsed).
        size = store.result_record_size(key) or len(
            json.dumps(record).encode("utf-8")
        )
        return run, size

    def _spill_persistent(self, cache_key, record: dict, corpus: dict) -> None:
        """Best-effort write of one completed run record to the on-disk
        tier (a failed spill degrades to a warning — persistence is an
        optimization, never a serving failure)."""
        store = self._persist_store()
        if store is None:
            return
        key = self._persistent_key(cache_key, corpus)
        if key is None:
            return
        try:
            store.write_result(
                key,
                {
                    "version": 1,
                    "stamp": {
                        "corpus": self._corpus_content_fingerprint(corpus),
                        "tables": len(corpus),
                    },
                    "record": record,
                },
            )
        except OSError as error:
            import warnings

            warnings.warn(
                f"could not persist run record: {error}", stacklevel=2
            )

    def _serve(
        self, request, task, factory, run_id, progress, cancel,
        base_fingerprint=None, registry_fp=None, context_box=None,
    ):
        with self.tracer.trace(
            "discover",
            run_id=run_id,
            searcher=request.searcher,
            task=request.task_name(),
            base=request.base.name,
        ) as trace_root:
            # Ambient run/searcher fields: every log line emitted below
            # this frame (query engine, tasks, catalog) carries them.
            with log_context(run_id=run_id, searcher=request.searcher):
                run = self._serve_inner(
                    request, task, factory, run_id, progress, cancel,
                    base_fingerprint, registry_fp, context_box,
                )
        _log.debug(
            "run served",
            run_id=run_id,
            searcher=request.searcher,
            status=run.status,
            utility=run.utility,
            queries=run.queries,
            prepare_seconds=round(run.prepare_seconds, 6),
            search_seconds=round(run.search_seconds, 6),
        )
        if trace_root is not None:
            trace = trace_root.to_record()
            run = replace(run, trace=trace)
            with self._lock:
                self.recent_traces.append(trace)
        return run

    def _serve_inner(
        self, request, task, factory, run_id, progress, cancel,
        base_fingerprint, registry_fp, context_box,
    ):
        events = []

        def emit(event):
            events.append(event)
            if progress is not None:
                progress(event)

        emit(
            RunStarted(
                run_id=run_id,
                searcher=request.searcher,
                base_table=request.base.name,
                task=request.task_name(),
            )
        )

        # The corpus snapshot travels with the candidates: prepared runs
        # use the snapshot taken under the prepare lock, so a concurrent
        # attach_corpus() can never pair one corpus's candidates with
        # another corpus's tables.
        start = time.perf_counter()
        with span("prepare"):
            if request.candidates is not None:
                candidates = list(request.candidates)
                source = "request"
                with self._lock:
                    corpus = self.corpus
            else:
                prepare_seed = (
                    request.seed
                    if request.prepare_seed is None
                    else request.prepare_seed
                )
                candidates, from_cache, corpus = self._prepare_cached(
                    request.base,
                    request.spec,
                    request.registry,
                    prepare_seed,
                    base_fingerprint=base_fingerprint,
                    registry_fp=registry_fp,
                )
                source = "cache" if from_cache else "prepared"
        if context_box is not None:
            # Stamp the catalog state the run's inputs reflect *before*
            # the search: a catalog mutated while the search runs must
            # not get this run admitted under its post-mutation key.
            # The corpus snapshot travels along so the persistent tier
            # stamps the content this run *actually* searched, even if
            # an attach_corpus or snapshot swap races the search.
            with self._catalog_lock:
                context_box.append((self._catalog_mutations(), corpus))
        prepare_seconds = time.perf_counter() - start
        self._m_prepare_seconds.labels(source=source).observe(prepare_seconds)
        emit(
            CandidatesPrepared(
                n_candidates=len(candidates),
                source=source,
                seconds=prepare_seconds,
            )
        )

        searcher = factory(
            candidates,
            request.base,
            corpus,
            task,
            theta=request.theta,
            query_budget=request.query_budget,
            seed=request.seed,
            config=request.config,
            **request.options,
        )
        rounds_box = [0]
        restore_hooks = self._attach_hooks(searcher, emit, cancel, rounds_box)

        start = time.perf_counter()
        status = "completed"
        result = None
        try:
            with span("search", n_candidates=len(candidates)):
                result = searcher.run()
        except RunCancelled:
            status = "cancelled"
        finally:
            restore_hooks()
        search_seconds = time.perf_counter() - start

        query_engine = getattr(searcher, "engine", None)
        queries = query_engine.queries if query_engine is not None else 0
        emit(
            RunCompleted(
                status=status,
                utility=result.utility if result is not None else 0.0,
                queries=result.queries if result is not None else queries,
                seconds=search_seconds,
            )
        )
        self._m_queries.inc(queries)
        self._m_runs.labels(status=status).inc()
        self._m_run_seconds.labels(status=status).observe(
            prepare_seconds + search_seconds
        )
        self._m_search_seconds.observe(search_seconds)
        if rounds_box[0]:
            self._m_run_rounds.observe(rounds_box[0])
        return DiscoveryRun(
            run_id=run_id,
            request=request,
            status=status,
            result=result,
            events=events,
            n_candidates=len(candidates),
            candidate_source=source,
            prepare_seconds=prepare_seconds,
            search_seconds=search_seconds,
            cache_info={
                "prepare_source": source,
                "prepare_cache_hit": source == "cache",
                "result_cache_hit": False,
            },
        )

    def _resolve_task(self, request: DiscoveryRequest) -> Task:
        if isinstance(request.task, str):
            return self.tasks.create(request.task, **request.task_options)
        if request.task_options:
            raise ValueError(
                "task_options only apply when the task is given by name"
            )
        return request.task

    def _attach_hooks(
        self, searcher, emit, cancel: CancellationToken, rounds_box
    ):
        """Wire the run's event stream into the searcher's query engine.

        Every hook *chains* to whatever observer was already installed
        (a searcher wired by its creator keeps its own callbacks), and
        the returned restore callable puts the prior observers back —
        a searcher instance reused across runs must not keep emitting
        into a finished run's event list through a stale closure.
        """
        restores = []
        query_engine = getattr(searcher, "engine", None)
        if query_engine is not None:
            prior_pre = query_engine.pre_query
            prior_query = query_engine.on_query
            prior_accept = query_engine.on_accept
            if cancel is not None:

                def pre_query():
                    if prior_pre is not None:
                        prior_pre()
                    cancel.raise_if_cancelled()

                query_engine.pre_query = pre_query
                restores.append(
                    lambda: setattr(query_engine, "pre_query", prior_pre)
                )

            def on_query(index, value, best):
                if prior_query is not None:
                    prior_query(index, value, best)
                mark("query", index=index, utility=value, best=best)
                emit(
                    QueryIssued(
                        query_index=index, utility=value, best_utility=best
                    )
                )

            query_engine.on_query = on_query
            restores.append(lambda: setattr(query_engine, "on_query", prior_query))

            def on_accept(aug_id, utility, n_selected):
                if prior_accept is not None:
                    prior_accept(aug_id, utility, n_selected)
                emit(
                    AugmentationAccepted(
                        aug_id=aug_id, utility=utility, n_selected=n_selected
                    )
                )

            query_engine.on_accept = on_accept
            restores.append(
                lambda: setattr(query_engine, "on_accept", prior_accept)
            )
        if hasattr(searcher, "on_round"):
            # ``on_round`` is usually a class-level default (None): track
            # whether the *instance* carried one, so restoring removes
            # our shadow instead of pinning the class default in place.
            had_instance = "on_round" in getattr(searcher, "__dict__", {})
            prior_round = searcher.on_round
            prev_utility = [None]

            def on_round(index, utility, queries, committed):
                if prior_round is not None:
                    prior_round(index, utility, queries, committed)
                prev = prev_utility[0]
                if prev is None and query_engine is not None:
                    # The base (unaugmented) utility is the first query
                    # every searcher issues, so it is always cached by
                    # round one — the natural zero of per-round gain.
                    prev = query_engine.cached_utility(frozenset())
                if prev is not None:
                    self._m_round_gain.observe(max(0.0, utility - prev))
                prev_utility[0] = utility
                rounds_box[0] = index
                mark(
                    "round",
                    index=index,
                    utility=utility,
                    queries=queries,
                    committed=committed,
                )
                emit(
                    RoundCompleted(
                        round_index=index,
                        utility=utility,
                        queries=queries,
                        committed=committed,
                    )
                )

            searcher.on_round = on_round

            def restore_round():
                if had_instance:
                    searcher.on_round = prior_round
                else:
                    try:
                        del searcher.on_round
                    except AttributeError:
                        pass

            restores.append(restore_round)

        def restore():
            for undo in reversed(restores):
                undo()

        return restore

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def corpus_stats(self, batch_tables: int = 256, seed: int = 0) -> dict:
        """Table-I corpus characteristics.

        Served from the catalog's disk artifacts when one is attached
        (``batch_tables`` bounds resident entries during the joinable
        pass; the stored config's seed applies); otherwise computed from
        the live corpus with a transient index seeded by ``seed``.
        """
        self._sync_snapshot()
        if self.catalog is not None and self.catalog.store is not None:
            # The catalog-backed pass pages lazy index entries — shared
            # mutable state, serialized against concurrent prepares.
            with self._catalog_lock:
                return self.catalog.corpus_stats(batch_tables=batch_tables)
        from repro.data import corpus_characteristics

        corpus = list(self.corpus.values())
        index = DiscoveryIndex(min_containment=0.3, seed=seed).build(corpus)
        return corpus_characteristics(corpus, index)

    def _refresh_gauges(self) -> None:
        """Bring the derived gauges (cache occupancy, pool shape) up to
        date with the engine's live state — counters and histograms are
        written at the event sites and never need this."""
        with self._lock:
            self._m_prepared_sets.set(len(self._prepared))
            self._m_cache_entries.set(
                len(self._results) if self._results is not None else 0
            )
            self._m_cache_bytes.set(
                self._results.total_bytes if self._results is not None else 0
            )
            self._m_cache_reserved.set(len(self._reservations))
        self._m_pool_max.set(self.max_workers)

    def stats(self) -> dict:
        """Engine-level serving statistics (registry-backed)."""
        self._refresh_gauges()
        result_hits = self.result_cache_hits
        result_misses = int(self._m_result_cache.labels(event="miss").value)
        prepare_hits = int(self._m_prepare_cache.labels(event="hit").value)
        prepare_misses = int(self._m_prepare_cache.labels(event="miss").value)
        with self._lock:
            out = {
                "runs_started": self.runs_started,
                "runs_completed": self.runs_completed,
                "runs_cancelled": self.runs_cancelled,
                "runs_failed": self.runs_failed,
                "queries_served": self.queries_served,
                "prepared_candidate_sets": len(self._prepared),
                "active_prepares": len(self._prepare_keys),
                "async_pool_active": self._executor is not None,
                "queue_depth": int(self._m_queue_depth.value),
                "pool_active": int(self._m_pool_active.value),
                "pool_utilization": (
                    self._m_pool_active.value / self.max_workers
                ),
                "prepare_cache_hits": prepare_hits,
                "prepare_cache_misses": prepare_misses,
                "prepare_cache_hit_rate": (
                    prepare_hits / (prepare_hits + prepare_misses)
                    if prepare_hits + prepare_misses
                    else 0.0
                ),
                "result_cache_hits": result_hits,
                "result_cache_misses": result_misses,
                "result_cache_hit_rate": (
                    result_hits / (result_hits + result_misses)
                    if result_hits + result_misses
                    else 0.0
                ),
                "result_cache_entries": (
                    len(self._results) if self._results is not None else 0
                ),
                "result_cache_bytes": (
                    self._results.total_bytes if self._results is not None else 0
                ),
                "result_cache_reserved": len(self._reservations),
                "result_store_hits": self.result_store_hits,
                "result_store_active": self._persist_store() is not None,
                "snapshot_epoch": self._snapshot_epoch,
                "refresher_attached": self._refresher is not None,
                "last_sync_staleness": self.last_sync_staleness,
                "corpus_tables": len(self._corpus) if self._corpus else 0,
                "searchers": self.searchers.names(),
            }
        # Catalog state is guarded by the catalog lock, not the engine
        # lock — and deliberately taken *after* releasing it: a prepare
        # holds the catalog lock while it invalidates the result cache
        # (engine lock), so nesting them here in the opposite order
        # would deadlock.  A catalog mid-refresh must still not leak a
        # half-applied view into stats.
        if self.catalog is not None:
            with self._catalog_lock:
                out["catalog"] = self.catalog.stats()
        return out

    def metrics_snapshot(self) -> dict:
        """JSON-safe snapshot of every registered metric family (derived
        gauges refreshed first).  Empty with ``metrics=False``."""
        self._refresh_gauges()
        return self.metrics.snapshot()

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition of the engine's registry (derived
        gauges refreshed first).  Empty with ``metrics=False``."""
        self._refresh_gauges()
        return self.metrics.to_prometheus()
