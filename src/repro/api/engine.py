"""The :class:`DiscoveryEngine`: a stateful, serving-oriented facade.

One engine owns the expensive shared state of goal-oriented discovery —
an optional persistent :class:`~repro.catalog.Catalog`, the corpus, the
warm discovery index, prepared-candidate caches, and the searcher/task/
scenario registries — and serves many :class:`DiscoveryRequest`s against
it::

    engine = DiscoveryEngine.open("my_catalog").attach_corpus(corpus)
    run = engine.discover(DiscoveryRequest(base=din, task=task,
                                           searcher="metam",
                                           config=MetamConfig(theta=0.8)))
    print(run.result.summary())

``discover`` is thread-safe: candidate preparation is striped — every
``(base content, spec, seed, registry)`` key has its own lock, so the
first request for a key pays, concurrent requests for the same key share
the result, and requests for *disjoint* keys prepare fully in parallel
(see ``benchmarks/bench_engine_parallel.py``; catalog mutations are
serialized internally, and the on-disk store is concurrency-safe in its
own right).  Each run gets its own searcher, query accounting, and RNG —
so N callers can serve requests against one warm engine concurrently
(``benchmarks/bench_engine_concurrency.py``).

``submit`` is the non-blocking variant: it queues the request on a
bounded worker pool and returns a
:class:`~repro.api.futures.DiscoveryFuture` immediately.  An optional
result cache (``result_cache_bytes``) serves repeated identical requests
from their recorded runs without re-searching.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.api.events import (
    AugmentationAccepted,
    CancellationToken,
    CandidatesPrepared,
    QueryIssued,
    RoundCompleted,
    RunCancelled,
    RunCompleted,
    RunStarted,
)
from repro.api.registries import (
    Registry,
    default_scenarios,
    default_searchers,
    default_tasks,
)
from repro.api.futures import DiscoveryFuture
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.api.run import DiscoveryRun
from repro.catalog import Catalog
from repro.catalog.fingerprint import registry_fingerprint, table_fingerprint
from repro.dataframe.table import Table
from repro.discovery.candidates import (
    Candidate,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.discovery.index import DiscoveryIndex
from repro.discovery.unions import find_union_candidates
from repro.profiles.registry import default_registry
from repro.tasks.base import Task
from repro.utils.locks import KeyedMutex
from repro.utils.lru import LruDict


class EngineStateError(RuntimeError):
    """The engine is missing state a call needs (usually a corpus)."""


class DiscoveryEngine:
    """Serves goal-oriented discovery requests over one corpus + catalog.

    Parameters
    ----------
    corpus:
        Repository tables (dict by name, or an iterable of Tables); may
        also be attached later with :meth:`attach_corpus`.
    catalog:
        Optional persistent :class:`~repro.catalog.Catalog` — switches
        candidate preparation to warm-start mode (incremental refresh +
        profile-vector cache).
    profile_registry:
        Default profile registry for candidate preparation (``None`` =
        :func:`~repro.profiles.registry.default_registry`).
    searchers / tasks / scenarios:
        Registry overrides; defaults carry every built-in.  Mutate them
        (``engine.searchers.register(...)``) to plug in new strategies
        without touching core code.
    max_prepared_sets:
        Bound on cached prepared-candidate sets (LRU-evicted beyond it;
        ``None`` disables eviction).  A long-lived serving engine sees
        many (base, spec, seed) combinations, and each set holds every
        candidate's materialized values — without a bound the cache
        grows with the request history instead of the working set.
    striped_prepare:
        ``True`` (default) gives every prepare key its own lock, so
        disjoint keys prepare in parallel.  ``False`` restores the
        engine-wide prepare lock of earlier releases — the baseline the
        parallel benchmark compares against; results are identical
        either way.
    max_workers:
        Size of the bounded worker pool behind :meth:`submit` (created
        lazily on the first submit; :meth:`shutdown` drains it).
    result_cache_bytes:
        Byte budget of the engine-level result cache (measured as the
        JSON run-record size, LRU-evicted).  ``0``/``None`` (default)
        disables it.  Cached runs are exact replays — the recorded
        result, events, and timings — keyed by a canonical request
        fingerprint, and the cache is invalidated whenever the corpus
        or catalog content changes.
    """

    def __init__(
        self,
        corpus=None,
        catalog: Catalog = None,
        profile_registry=None,
        searchers: Registry = None,
        tasks: Registry = None,
        scenarios: Registry = None,
        max_prepared_sets: int = 32,
        striped_prepare: bool = True,
        max_workers: int = 4,
        result_cache_bytes: int = None,
    ):
        try:
            prepared = LruDict(capacity=max_prepared_sets)
        except ValueError:
            raise ValueError(
                f"max_prepared_sets must be >= 1 or None, got {max_prepared_sets}"
            ) from None
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.catalog = catalog
        self.searchers = searchers if searchers is not None else default_searchers()
        self.tasks = tasks if tasks is not None else default_tasks()
        self.scenarios = scenarios if scenarios is not None else default_scenarios()
        self._profile_registry = profile_registry
        self._corpus = None
        self._corpus_epoch = 0
        self._lock = threading.RLock()
        # Catalog mutations (refresh/save, lazy index paging, profile
        # cache construction) stay serialized even under striped
        # preparation: the in-memory index is shared mutable state.
        self._catalog_lock = threading.RLock()
        self.striped_prepare = bool(striped_prepare)
        self._prepare_keys = KeyedMutex()  # per-key locks (striped mode)
        self._prepare_gate = threading.RLock()  # engine-wide (legacy mode)
        self.max_prepared_sets = max_prepared_sets
        self._prepared = prepared  # prepare key -> candidates (LRU-bounded)
        self.max_workers = max_workers
        self._executor = None
        if result_cache_bytes:
            self._results = LruDict(max_bytes=result_cache_bytes)
        else:
            self._results = None  # disabled
        self.result_cache_bytes = result_cache_bytes
        self.result_cache_hits = 0
        self._next_run_id = 1
        self.runs_started = 0
        self.runs_completed = 0
        self.runs_cancelled = 0
        self.runs_failed = 0
        self.queries_served = 0
        if corpus is not None:
            self.attach_corpus(corpus)

    # ------------------------------------------------------------------
    # Construction / state
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, catalog_dir, corpus=None, create: bool = True, **config
    ) -> "DiscoveryEngine":
        """Engine backed by the persistent catalog at ``catalog_dir``.

        ``create=True`` (default) creates the catalog when none exists
        (``config`` applies only then); ``create=False`` requires a saved
        catalog and raises :class:`~repro.catalog.CatalogStoreError`
        otherwise.  ``corpus`` is attached when given.
        """
        if create:
            catalog = Catalog.open(catalog_dir, **config)
        else:
            catalog = Catalog.load(catalog_dir)
        return cls(corpus=corpus, catalog=catalog)

    def attach_corpus(self, corpus) -> "DiscoveryEngine":
        """Attach (or replace) the repository; returns ``self``.

        Accepts a ``{name: Table}`` dict or an iterable of Tables.
        Replacing the corpus drops the prepared-candidate cache — cached
        candidate sets are only valid for the corpus they were built on.
        """
        tables = corpus.values() if isinstance(corpus, dict) else corpus
        normalized = {}
        for table in tables:
            if not isinstance(table, Table):
                raise TypeError(f"corpus entries must be Tables, got {table!r}")
            if table.name in normalized and normalized[table.name] is not table:
                raise ValueError(f"duplicate table name {table.name!r} in corpus")
            normalized[table.name] = table
        with self._lock:
            self._corpus = normalized
            self._corpus_epoch += 1
            self._prepared.clear()
            self._invalidate_results()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Drain the async worker pool (no-op when none was created).

        ``wait=True`` blocks until queued runs finish.  The engine stays
        usable — a later :meth:`submit` lazily builds a fresh pool.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "DiscoveryEngine":
        return self

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False

    @property
    def corpus(self) -> dict:
        """The attached repository (raises until :meth:`attach_corpus`)."""
        if self._corpus is None:
            raise EngineStateError(
                "no corpus attached; call engine.attach_corpus(corpus) first"
            )
        return self._corpus

    def profile_registry(self):
        """The engine's default profile registry (built lazily)."""
        with self._lock:
            if self._profile_registry is None:
                self._profile_registry = default_registry()
            return self._profile_registry

    # ------------------------------------------------------------------
    # Candidate preparation (striped per-key locks, cached)
    # ------------------------------------------------------------------
    def prepare(
        self,
        base: Table,
        spec: CandidateSpec = None,
        registry=None,
        seed: int = 0,
    ) -> list:
        """Discovery + materialization + profiling for one base table.

        Returns profiled :class:`~repro.discovery.candidates.Candidate`
        objects — the common input of METAM and every baseline.  Results
        are cached by (base content, spec, seed, profile registry), and
        preparation is locked per key: concurrent requests for the same
        key share one preparation, while disjoint keys prepare in
        parallel (catalog mutations are serialized internally, and the
        catalog store's own writes are concurrency-safe).
        """
        candidates, _from_cache, _corpus = self._prepare_cached(
            base, spec, registry, seed
        )
        return candidates

    def _prepare_cached(
        self, base, spec, registry, seed,
        base_fingerprint=None, registry_fp=None,
    ):
        """Per-key-locked prepare.

        Returns ``(candidates, from_cache, corpus)`` — the corpus
        snapshot the candidates were prepared from, taken under the
        engine lock, so callers run their searcher against exactly the
        tables the candidates reference even if ``attach_corpus`` races
        (a prepare that overlaps a corpus swap keeps its own snapshot
        and is not admitted into the cache of the new corpus).

        ``base_fingerprint``/``registry_fp`` let callers that already
        fingerprinted those inputs (the result-cache path) skip the
        second hash of each.
        """
        spec = spec or CandidateSpec()
        registry = registry if registry is not None else self.profile_registry()
        key = (
            base_fingerprint or table_fingerprint(base),
            spec,
            int(seed),
            registry_fp or registry_fingerprint(registry),
        )
        with self._lock:
            corpus = self.corpus
            cached = self._prepared.get(key)
            if cached is not None:
                return list(cached), True, corpus
        if self.striped_prepare:
            guard = self._prepare_keys(key)
        else:
            guard = self._prepare_gate
        with guard:
            with self._lock:
                # Re-check under the key lock: a concurrent holder may
                # have prepared this exact key while we waited.
                corpus = self.corpus
                epoch = self._corpus_epoch
                cached = self._prepared.get(key)
                if cached is not None:
                    return list(cached), True, corpus
            candidates = self._prepare_uncached(base, spec, registry, seed, corpus)
            with self._lock:
                if epoch == self._corpus_epoch:
                    self._prepared.put(key, candidates)
            return list(candidates), False, corpus

    def _prepare_uncached(self, base, spec, registry, seed, corpus) -> list:
        """The discovery front-end (exactly the legacy ``prepare_candidates``
        semantics, so warm and cold paths stay byte-identical).

        Runs outside the engine lock.  With a catalog attached, the
        catalog-touching section (refresh/save, index queries with their
        lazy entry paging, profile-cache construction) holds the
        engine's catalog lock; materialization and profiling — the
        dominant cost — run in parallel across keys either way."""
        cache = None
        if self.catalog is not None:
            with self._catalog_lock:
                catalog = self.catalog
                overridden = []
                if catalog.config["min_containment"] != spec.min_containment:
                    overridden.append(
                        f"min_containment={catalog.config['min_containment']} "
                        f"(requested {spec.min_containment})"
                    )
                if catalog.config["seed"] != seed:
                    overridden.append(
                        f"index seed={catalog.config['seed']} (requested {seed}; "
                        f"the requested seed still governs profile sampling)"
                    )
                if overridden:
                    import warnings

                    warnings.warn(
                        "catalog config overrides the requested values for "
                        "discovery in warm-start mode: " + ", ".join(overridden),
                        stacklevel=3,
                    )
                diff = catalog.refresh(corpus)
                if diff.changed:
                    # Changed catalog content means previously recorded
                    # results may no longer reproduce.
                    self._invalidate_results()
                if (
                    catalog.store is not None
                    and (diff.added or diff.updated)
                    and not catalog.removed_since_save
                ):
                    # Keep the on-disk manifest/snapshot current, so the
                    # next process warm-starts from the packed snapshot.
                    # Only additive changes are persisted implicitly: a
                    # partial corpus must not silently shrink the saved
                    # catalog.
                    catalog.save()
                cache = catalog.profile_cache(
                    base, registry, sample_size=spec.sample_size, seed=seed
                )
                augmentations = generate_candidates(
                    base,
                    catalog.index,
                    max_hops=spec.max_hops,
                    max_fanout=spec.max_fanout,
                )
        else:
            index = DiscoveryIndex(
                min_containment=spec.min_containment, seed=seed
            )
            index.build(corpus.values())
            augmentations = generate_candidates(
                base, index, max_hops=spec.max_hops, max_fanout=spec.max_fanout
            )
        candidates = materialize_candidates(base, augmentations, corpus)
        if spec.include_unions:
            for union in find_union_candidates(
                base, corpus, min_shared=spec.min_union_shared
            ):
                candidates.append(
                    Candidate(
                        aug=union,
                        values=union.materialize(base, corpus),
                        overlap=union.shared_fraction,
                    )
                )
        return profile_candidates(
            candidates,
            base,
            corpus,
            registry,
            sample_size=spec.sample_size,
            seed=seed,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def discover(
        self,
        request: DiscoveryRequest,
        progress=None,
        cancel: CancellationToken = None,
    ) -> DiscoveryRun:
        """Serve one request; returns the completed :class:`DiscoveryRun`.

        ``progress`` (a callable taking one
        :class:`~repro.api.events.RunEvent`) streams every event as it
        happens; ``cancel`` stops the run cooperatively at its next
        utility query (the run then finishes with status
        ``"cancelled"`` and ``result=None``).

        With the result cache enabled, a request identical to a
        previously completed one is served as an exact replay: the
        recorded run comes back under a fresh ``run_id`` with
        ``cached=True``, and its recorded events are re-streamed to
        ``progress`` (they carry the original run's id).
        """
        task = self._resolve_task(request)
        factory = self.searchers.get(request.searcher)  # fail before any work
        self.corpus  # fail fast when none is attached
        cache_key = self._result_cache_key(request)
        if cancel is not None and cancel.cancelled:
            # An already-cancelled token must yield a cancelled run, not
            # a completed replay — skip the cache and serve normally
            # (the run stops at its first utility query, as ever).
            cache_key = None
        if cache_key is not None:
            hit = None
            with self._lock:
                # Lookup under the *current* catalog mutation count:
                # out-of-band catalog changes (engine.catalog.add/...)
                # shift the count and make older entries unreachable.
                hit = self._results.get(cache_key + (self._catalog_mutations(),))
                if hit is not None:
                    run_id = self._next_run_id
                    self._next_run_id += 1
                    self.runs_started += 1
            if hit is not None:
                try:
                    if progress is not None:
                        for event in hit.events:
                            progress(event)
                except BaseException:
                    # A progress callback bug during a replay still
                    # balances the books, exactly like a live run's.
                    with self._lock:
                        self.runs_failed += 1
                    raise
                with self._lock:
                    self.runs_completed += 1
                    self.result_cache_hits += 1
                    # The replayed result's queries count as served:
                    # accounting stays comparable whether a run executed
                    # or replayed.
                    self.queries_served += hit.queries
                return replace(
                    hit,
                    run_id=run_id,
                    request=request,
                    events=list(hit.events),
                    cached=True,
                )
        with self._lock:
            run_id = self._next_run_id
            self._next_run_id += 1
            self.runs_started += 1
        mutations_box = [] if cache_key is not None else None
        try:
            run = self._serve(
                request,
                task,
                factory,
                run_id,
                progress,
                cancel,
                # The cache key leads with the base-table and registry
                # fingerprints; reuse both so a cache-enabled discover
                # hashes each input once, not twice.
                base_fingerprint=cache_key[0] if cache_key else None,
                registry_fp=cache_key[1] if cache_key else None,
                mutations_box=mutations_box,
            )
        except BaseException:
            # Anything that escapes (bad searcher options, a task that
            # raises, a progress callback bug) still balances the books.
            with self._lock:
                self.runs_failed += 1
            raise
        if cache_key is not None and run.completed and mutations_box:
            # Size by the JSON run record — the serializable footprint
            # the LRU budget is defined over (computed outside the lock).
            # The key embeds the corpus epoch this run was requested
            # under; if attach_corpus raced the search, the entry lands
            # under the superseded epoch and no future request can hit
            # it (their keys carry the new epoch).  The catalog mutation
            # count was stamped after this run's prepare (it reflects
            # the run's own catalog refresh) and before its search (a
            # catalog mutated mid-search leaves the entry under the
            # older, unreachable count).
            size = len(json.dumps(run.to_record()).encode("utf-8"))
            with self._lock:
                self._results.put(
                    cache_key + (mutations_box[0],), run, size=size
                )
        return run

    def submit(
        self,
        request: DiscoveryRequest,
        progress=None,
        cancel: CancellationToken = None,
    ) -> DiscoveryFuture:
        """Non-blocking :meth:`discover`: returns immediately.

        The request is queued on the engine's bounded worker pool (at
        most ``max_workers`` runs execute at once; further submissions
        wait their turn) and served with exactly the synchronous
        semantics — same preparation sharing, result cache, events, and
        records.  The returned :class:`DiscoveryFuture` owns the run's
        cancellation token (``cancel`` to supply your own), so queued
        runs can be dropped and executing runs stopped cooperatively.
        """
        token = cancel if cancel is not None else CancellationToken()
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine",
                )
            future = self._executor.submit(self.discover, request, progress, token)
        return DiscoveryFuture(future, token, request)

    def _catalog_mutations(self) -> int:
        """The attached catalog's structural mutation count (``-1``
        without one) — the cache-key component that makes entries
        recorded before any catalog change unreachable."""
        return self.catalog.mutations if self.catalog is not None else -1

    def _result_cache_key(self, request: DiscoveryRequest):
        """Cache-key prefix for ``request``, or ``None`` when uncacheable
        (cache disabled, candidates supplied, task given as an object, or
        options without a canonical form).

        The prefix embeds the current corpus epoch: entries recorded
        under a previous corpus are unreachable by construction, so a
        run that races an ``attach_corpus`` can never be replayed
        against the new corpus (the explicit clear then just reclaims
        the memory).  Callers append the catalog mutation count — at
        lookup time for reads, at admission time for writes (a run's own
        prepare may legitimately refresh the catalog)."""
        if self._results is None:
            return None
        descriptor = request.cache_descriptor()
        if descriptor is None:
            return None
        registry = (
            request.registry
            if request.registry is not None
            else self.profile_registry()
        )
        with self._lock:
            epoch = self._corpus_epoch
        return (
            table_fingerprint(request.base),
            registry_fingerprint(registry),
            descriptor,
            epoch,
            # Re-registering a searcher or task under the same name
            # (overwrite=True) must not replay runs of the old factory.
            self.searchers.mutations,
            self.tasks.mutations,
        )

    def _invalidate_results(self) -> None:
        """Drop every cached run (corpus or catalog content changed)."""
        with self._lock:
            if self._results is not None:
                self._results.clear()

    def _serve(
        self, request, task, factory, run_id, progress, cancel,
        base_fingerprint=None, registry_fp=None, mutations_box=None,
    ):
        events = []

        def emit(event):
            events.append(event)
            if progress is not None:
                progress(event)

        emit(
            RunStarted(
                run_id=run_id,
                searcher=request.searcher,
                base_table=request.base.name,
                task=request.task_name(),
            )
        )

        # The corpus snapshot travels with the candidates: prepared runs
        # use the snapshot taken under the prepare lock, so a concurrent
        # attach_corpus() can never pair one corpus's candidates with
        # another corpus's tables.
        start = time.perf_counter()
        if request.candidates is not None:
            candidates = list(request.candidates)
            source = "request"
            with self._lock:
                corpus = self.corpus
        else:
            prepare_seed = (
                request.seed
                if request.prepare_seed is None
                else request.prepare_seed
            )
            candidates, from_cache, corpus = self._prepare_cached(
                request.base,
                request.spec,
                request.registry,
                prepare_seed,
                base_fingerprint=base_fingerprint,
                registry_fp=registry_fp,
            )
            source = "cache" if from_cache else "prepared"
        if mutations_box is not None:
            # Stamp the catalog state the run's inputs reflect *before*
            # the search: a catalog mutated while the search runs must
            # not get this run admitted under its post-mutation key.
            with self._catalog_lock:
                mutations_box.append(self._catalog_mutations())
        prepare_seconds = time.perf_counter() - start
        emit(
            CandidatesPrepared(
                n_candidates=len(candidates),
                source=source,
                seconds=prepare_seconds,
            )
        )

        searcher = factory(
            candidates,
            request.base,
            corpus,
            task,
            theta=request.theta,
            query_budget=request.query_budget,
            seed=request.seed,
            config=request.config,
            **request.options,
        )
        self._attach_hooks(searcher, emit, cancel)

        start = time.perf_counter()
        status = "completed"
        result = None
        try:
            result = searcher.run()
        except RunCancelled:
            status = "cancelled"
        search_seconds = time.perf_counter() - start

        query_engine = getattr(searcher, "engine", None)
        queries = query_engine.queries if query_engine is not None else 0
        emit(
            RunCompleted(
                status=status,
                utility=result.utility if result is not None else 0.0,
                queries=result.queries if result is not None else queries,
                seconds=search_seconds,
            )
        )
        with self._lock:
            self.queries_served += queries
            if status == "completed":
                self.runs_completed += 1
            else:
                self.runs_cancelled += 1
        return DiscoveryRun(
            run_id=run_id,
            request=request,
            status=status,
            result=result,
            events=events,
            n_candidates=len(candidates),
            candidate_source=source,
            prepare_seconds=prepare_seconds,
            search_seconds=search_seconds,
        )

    def _resolve_task(self, request: DiscoveryRequest) -> Task:
        if isinstance(request.task, str):
            return self.tasks.create(request.task, **request.task_options)
        if request.task_options:
            raise ValueError(
                "task_options only apply when the task is given by name"
            )
        return request.task

    @staticmethod
    def _attach_hooks(searcher, emit, cancel: CancellationToken) -> None:
        """Wire the run's event stream into the searcher's query engine."""
        query_engine = getattr(searcher, "engine", None)
        if query_engine is not None:
            if cancel is not None:
                query_engine.pre_query = cancel.raise_if_cancelled
            query_engine.on_query = lambda index, value, best: emit(
                QueryIssued(query_index=index, utility=value, best_utility=best)
            )
            query_engine.on_accept = lambda aug_id, utility, n_selected: emit(
                AugmentationAccepted(
                    aug_id=aug_id, utility=utility, n_selected=n_selected
                )
            )
        if hasattr(searcher, "on_round"):
            searcher.on_round = lambda index, utility, queries, committed: emit(
                RoundCompleted(
                    round_index=index,
                    utility=utility,
                    queries=queries,
                    committed=committed,
                )
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def corpus_stats(self, batch_tables: int = 256, seed: int = 0) -> dict:
        """Table-I corpus characteristics.

        Served from the catalog's disk artifacts when one is attached
        (``batch_tables`` bounds resident entries during the joinable
        pass; the stored config's seed applies); otherwise computed from
        the live corpus with a transient index seeded by ``seed``.
        """
        if self.catalog is not None and self.catalog.store is not None:
            # The catalog-backed pass pages lazy index entries — shared
            # mutable state, serialized against concurrent prepares.
            with self._catalog_lock:
                return self.catalog.corpus_stats(batch_tables=batch_tables)
        from repro.data import corpus_characteristics

        corpus = list(self.corpus.values())
        index = DiscoveryIndex(min_containment=0.3, seed=seed).build(corpus)
        return corpus_characteristics(corpus, index)

    def stats(self) -> dict:
        """Engine-level serving statistics."""
        with self._lock:
            out = {
                "runs_started": self.runs_started,
                "runs_completed": self.runs_completed,
                "runs_cancelled": self.runs_cancelled,
                "runs_failed": self.runs_failed,
                "queries_served": self.queries_served,
                "prepared_candidate_sets": len(self._prepared),
                "active_prepares": len(self._prepare_keys),
                "async_pool_active": self._executor is not None,
                "result_cache_hits": self.result_cache_hits,
                "result_cache_entries": (
                    len(self._results) if self._results is not None else 0
                ),
                "result_cache_bytes": (
                    self._results.total_bytes if self._results is not None else 0
                ),
                "corpus_tables": len(self._corpus) if self._corpus else 0,
                "searchers": self.searchers.names(),
            }
        # Catalog state is guarded by the catalog lock, not the engine
        # lock — and deliberately taken *after* releasing it: a prepare
        # holds the catalog lock while it invalidates the result cache
        # (engine lock), so nesting them here in the opposite order
        # would deadlock.  A catalog mid-refresh must still not leak a
        # half-applied view into stats.
        if self.catalog is not None:
            with self._catalog_lock:
                out["catalog"] = self.catalog.stats()
        return out
