"""Pluggable registries: searchers, tasks, and scenarios by name.

The engine never hard-codes a strategy list.  Searchers, tasks, and
evaluation scenarios live in :class:`Registry` instances with
entry-point-style registration, so a new baseline or workload plugs in
without touching core code::

    engine = DiscoveryEngine(corpus=corpus)

    @engine.searchers.register("my_ranker")
    def build(candidates, base, corpus, task, *, theta, query_budget,
              seed, config=None, **options):
        return MyRanker(candidates, base, corpus, task, theta=theta,
                        query_budget=query_budget, seed=seed, **options)

    engine.discover(DiscoveryRequest(base=b, task=t, searcher="my_ranker"))

Searcher factories receive ``(candidates, base, corpus, task)`` plus the
request's keyword knobs and must return an object with ``run() ->
SearchResult`` and an ``engine`` attribute holding the
:class:`~repro.core.querying.QueryEngine` it spends queries through
(that is where the event hooks attach).
"""

from __future__ import annotations

from repro.baselines.arda import IArdaSearcher
from repro.baselines.join_everything import JoinEverythingSearcher
from repro.baselines.mw import MultiplicativeWeightsSearcher
from repro.baselines.overlap_ranking import OverlapSearcher
from repro.baselines.uniform import UniformSearcher
from repro.baselines.variants import VARIANT_NAMES, metam_variant
from repro.core.config import MetamConfig


class RegistryError(LookupError):
    """Unknown name, or a name collision without ``overwrite=True``."""


class Registry:
    """A name → factory map with decorator-style registration."""

    def __init__(self, kind: str, entries: dict = None):
        self.kind = kind
        self._entries = dict(entries or {})
        #: Monotone count of (re-)registrations and removals.  Cheap
        #: change detection for caches keyed on registry contents (the
        #: engine's result cache must not replay a run recorded under a
        #: factory that has since been replaced).
        self.mutations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list:
        return sorted(self._entries)

    def register(self, name: str, factory=None, overwrite: bool = False):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", build_x)``) or as a
        decorator (``@registry.register("x")``).  Re-registering an
        existing name raises unless ``overwrite=True`` — silent
        replacement of a built-in is how plug-in bugs hide.
        """
        if factory is None:
            return lambda f: self.register(name, f, overwrite=overwrite)
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        self._entries[name] = factory
        self.mutations += 1
        return factory

    def unregister(self, name: str) -> None:
        if name not in self._entries:
            raise RegistryError(f"no {self.kind} named {name!r} to unregister")
        del self._entries[name]
        self.mutations += 1

    def get(self, name: str):
        """The factory for ``name``; unknown names fail with the choices."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)


# ---------------------------------------------------------------------------
# Built-in searchers
# ---------------------------------------------------------------------------
def _metam_factory(variant: str):
    def build(
        candidates,
        base,
        corpus,
        task,
        *,
        theta: float = 1.0,
        query_budget: int = 1000,
        seed: int = 0,
        config: MetamConfig = None,
        **options,
    ):
        if config is None:
            config = MetamConfig(
                theta=theta, query_budget=query_budget, seed=seed, **options
            )
        elif options:
            # A full config and loose knobs together is ambiguous — the
            # knobs would be silently ignored in favor of the config.
            raise ValueError(
                f"searcher options {sorted(options)} conflict with an "
                "explicit MetamConfig; set them on the config instead"
            )
        return metam_variant(variant, candidates, base, corpus, task, config)

    build.__name__ = f"build_{variant}"
    return build


def _ranking_factory(searcher_class):
    def build(
        candidates,
        base,
        corpus,
        task,
        *,
        theta: float = 1.0,
        query_budget: int = 1000,
        seed: int = 0,
        config: MetamConfig = None,
        **options,
    ):
        if config is not None:
            raise ValueError(
                f"{searcher_class.__name__} takes no MetamConfig; pass "
                "theta/query_budget/seed directly"
            )
        return searcher_class(
            candidates,
            base,
            corpus,
            task,
            theta=theta,
            query_budget=query_budget,
            seed=seed,
            **options,
        )

    build.__name__ = f"build_{searcher_class.__name__}"
    return build


def default_searchers() -> Registry:
    """All built-in searchers: METAM, its ablations, and the baselines."""
    registry = Registry("searcher")
    for variant in VARIANT_NAMES:  # metam, eq, nc, nceq
        registry.register(variant, _metam_factory(variant))
    for name, cls in (
        ("mw", MultiplicativeWeightsSearcher),
        ("overlap", OverlapSearcher),
        ("uniform", UniformSearcher),
        ("iarda", IArdaSearcher),
        ("join_everything", JoinEverythingSearcher),
    ):
        registry.register(name, _ranking_factory(cls))
    return registry


# ---------------------------------------------------------------------------
# Built-in tasks and scenarios (imported lazily: the task/scenario layers
# pull in the ml/ and data/ packages, which engine users may never need)
# ---------------------------------------------------------------------------
def default_tasks() -> Registry:
    """Built-in downstream tasks, constructible by name."""
    from repro.tasks import (
        AutoMLTask,
        ClassificationTask,
        ClusteringTask,
        EntityLinkingTask,
        FairClassificationTask,
        HowToTask,
        RegressionTask,
        WhatIfTask,
    )

    registry = Registry("task")
    for name, cls in (
        ("classification", ClassificationTask),
        ("regression", RegressionTask),
        ("automl", AutoMLTask),
        ("clustering", ClusteringTask),
        ("entity_linking", EntityLinkingTask),
        ("fairness", FairClassificationTask),
        ("whatif", WhatIfTask),
        ("howto", HowToTask),
    ):
        registry.register(name, cls)
    return registry


def default_scenarios() -> Registry:
    """Built-in evaluation scenarios (the CLI's ``run`` choices)."""
    from repro.data import (
        clustering_scenario,
        collisions_scenario,
        entity_linking_scenario,
        fairness_scenario,
        housing_scenario,
        sat_howto_scenario,
        sat_whatif_scenario,
        schools_scenario,
    )

    registry = Registry("scenario")
    for name, factory in (
        ("housing", housing_scenario),
        ("schools", schools_scenario),
        ("collisions", collisions_scenario),
        ("sat-whatif", sat_whatif_scenario),
        ("sat-howto", sat_howto_scenario),
        ("entity-linking", entity_linking_scenario),
        ("fairness", fairness_scenario),
        ("clustering", clustering_scenario),
    ):
        registry.register(name, factory)
    return registry
