"""Asynchronous serving handles: :class:`DiscoveryFuture`.

:meth:`DiscoveryEngine.submit` returns immediately with a future backed
by the engine's bounded worker pool.  The future owns the run's
:class:`~repro.api.events.CancellationToken`, so ``cancel()`` works at
every stage of the lifecycle: a run still queued behind the pool is
dropped before it starts, and a run already executing is stopped
cooperatively at its next utility query (completing with status
``"cancelled"``, exactly like a synchronous cancelled ``discover``).
"""

from __future__ import annotations

import concurrent.futures

from repro.api.events import CancellationToken, RunCancelled


class DiscoveryFuture:
    """Handle on one asynchronously served discovery request."""

    def __init__(
        self,
        future: concurrent.futures.Future,
        cancel_token: CancellationToken,
        request,
    ):
        self._future = future
        self.cancel_token = cancel_token
        self.request = request

    def done(self) -> bool:
        """True once the run finished, was cancelled, or failed."""
        return self._future.done()

    def running(self) -> bool:
        return self._future.running()

    def cancel(self) -> None:
        """Stop the run at whatever stage it is in.

        Queued-but-not-started runs never execute (their ``result()``
        raises :class:`~repro.api.events.RunCancelled`); executing runs
        stop cooperatively at the next utility query and resolve to a
        :class:`~repro.api.run.DiscoveryRun` with status
        ``"cancelled"``.
        """
        self.cancel_token.cancel()
        self._future.cancel()

    def result(self, timeout: float = None):
        """The completed :class:`~repro.api.run.DiscoveryRun`.

        Blocks up to ``timeout`` seconds (forever by default).  Raises
        :class:`~repro.api.events.RunCancelled` when the run was
        cancelled before it ever started, and re-raises whatever the
        run itself raised.
        """
        try:
            return self._future.result(timeout=timeout)
        except concurrent.futures.CancelledError:
            raise RunCancelled("run cancelled before it started") from None

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback(future)`` (this wrapper) when the run
        resolves; runs immediately if it already has."""
        self._future.add_done_callback(lambda _inner: callback(self))
