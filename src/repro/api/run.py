"""The :class:`DiscoveryRun` handle: one served request, fully recorded.

A run bundles the final :class:`~repro.core.result.SearchResult` with the
typed event stream that produced it and the timings of each phase, and
serializes the whole thing to a JSON-safe record for archival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.api.request import DiscoveryRequest
from repro.core.result import SearchResult


@dataclass
class DiscoveryRun:
    """Outcome of one :meth:`DiscoveryEngine.discover` call.

    Attributes
    ----------
    run_id:
        Engine-scoped sequential id (unique per engine instance).
    request:
        The request this run served.
    status:
        ``"completed"`` or ``"cancelled"``.
    result:
        The search result; ``None`` when the run was cancelled before a
        result existed.
    events:
        Ordered :class:`~repro.api.events.RunEvent` stream.
    n_candidates / candidate_source:
        Size and provenance (``prepared``/``cache``/``request``) of the
        candidate set the searcher saw.
    prepare_seconds / search_seconds:
        Wall-clock of the two phases.
    cached:
        ``True`` when the engine served this run from its result cache —
        result, events, and timings are those of the original execution;
        only ``run_id`` (and this flag) are fresh.
    cache_info:
        Cache behavior of this serving, recorded explicitly so archived
        records (and benchmarks) can assert on it instead of inferring
        from timings: ``prepare_source`` / ``prepare_cache_hit`` for the
        prepared-candidate cache, ``result_cache_hit`` (plus
        ``result_cache_tier``, ``"memory"`` or ``"store"``) for replays.
    trace:
        Serialized per-run trace tree (``Span.to_record()`` form), or
        ``None`` when tracing was disabled; replays carry the original
        execution's trace.
    """

    run_id: int
    request: DiscoveryRequest
    status: str
    result: SearchResult = None
    events: list = field(default_factory=list)
    n_candidates: int = 0
    candidate_source: str = "prepared"
    prepare_seconds: float = 0.0
    search_seconds: float = 0.0
    cached: bool = False
    cache_info: dict = field(default_factory=dict)
    trace: dict = None

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def cancelled(self) -> bool:
        return self.status == "cancelled"

    @property
    def selected(self) -> list:
        """Selected augmentation ids (empty when no result exists)."""
        return list(self.result.selected) if self.result is not None else []

    @property
    def utility(self) -> float:
        return self.result.utility if self.result is not None else 0.0

    @property
    def queries(self) -> int:
        return self.result.queries if self.result is not None else 0

    def events_of(self, kind: str) -> list:
        """Events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> str:
        if self.result is not None:
            return f"run {self.run_id} [{self.status}] {self.result.summary()}"
        return f"run {self.run_id} [{self.status}] no result"

    def to_record(self) -> dict:
        """JSON-serializable record of the full run (the wire schema;
        see :func:`repro.api.wire.run_to_wire`)."""
        from repro.api import wire

        return wire.run_to_wire(self)

    def save(self, path: str) -> None:
        """Write the run record as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_record(), handle, indent=2)

    @classmethod
    def from_record(
        cls, record: dict, request: DiscoveryRequest, run_id: int
    ) -> "DiscoveryRun":
        """Rebuild a run from its :meth:`to_record` form.

        The record describes (not embeds) the original request, so the
        caller supplies the live ``request`` it matched against the
        record's key — exactly like an in-memory replay, which also
        pairs the recorded outcome with the fresh request object.
        Raises ``ValueError``/``KeyError`` on malformed records; callers
        treating persisted runs as a cache catch and re-run.
        """
        from repro.api import wire

        return wire.run_from_wire(record, request, run_id)
