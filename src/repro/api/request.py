"""The reified information need: what one discovery run should do.

A :class:`DiscoveryRequest` packages everything METAM's pipeline used to
take as loose function arguments — the input dataset, the task, the
searcher, the candidate-generation knobs — into one declarative object
the :class:`~repro.api.engine.DiscoveryEngine` can serve, record, and
replay.  Requests are cheap to construct and JSON-describable
(:meth:`DiscoveryRequest.to_wire`, schema in :mod:`repro.api.wire`), so
a serving layer can log every information need it answered — and
:meth:`DiscoveryRequest.from_wire` rebuilds one from a wire payload
against a served corpus.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field

from repro.core.config import MetamConfig
from repro.dataframe.table import Table


@dataclass(frozen=True)
class CandidateSpec:
    """Candidate-generation knobs (discovery + materialization + profiling).

    Mirrors the legacy ``prepare_candidates`` signature; two equal specs
    against the same base/corpus/seed yield byte-identical candidate
    sets, which is what lets the engine cache prepared candidates across
    runs.  ``min_containment`` only governs the cold path — with a
    catalog attached, the catalog's own index config applies.
    """

    min_containment: float = 0.3
    max_hops: int = 1
    max_fanout: int = 500
    include_unions: bool = False
    min_union_shared: float = 0.5
    sample_size: int = 100

    def to_record(self) -> dict:
        return asdict(self)


@dataclass
class DiscoveryRequest:
    """One goal-oriented discovery request.

    Attributes
    ----------
    base:
        The input dataset ``Din``.
    task:
        The downstream task — a :class:`~repro.tasks.base.Task` instance,
        or the name of a task registered with the engine's task registry
        (constructed with ``task_options``).
    searcher:
        Name of a searcher registered with the engine (``metam``, ``mw``,
        ``overlap``, ``uniform``, ``iarda``, ``join_everything``, the
        ablation variants, or any plug-in).
    theta / query_budget / seed:
        The shared searcher knobs: target utility, query cap, and the
        run's RNG seed (also governs profile sampling during prepare
        unless ``prepare_seed`` overrides it).
    prepare_seed:
        Seed for candidate preparation only (``None`` = use ``seed``).
        Setting it lets many runs with different search seeds share one
        cached candidate set on a warm engine.
    spec:
        Candidate-generation parameters (see :class:`CandidateSpec`).
    config:
        Full :class:`~repro.core.config.MetamConfig` for METAM-family
        searchers; overrides ``theta``/``query_budget``/``seed`` when
        given.
    options:
        Extra searcher-specific keyword arguments (e.g. iARDA's
        ``target_column``), passed through to the searcher factory.
    task_options:
        Constructor keyword arguments when ``task`` is a registry name.
    registry:
        Profile registry override for candidate preparation (``None`` =
        the engine's default).
    candidates:
        Pre-prepared candidate list; skips the engine's prepare step
        entirely (the legacy two-phase calling convention).
    label:
        Free-form tag recorded with the run (for experiment bookkeeping).
    """

    base: Table
    task: object
    searcher: str = "metam"
    theta: float = 1.0
    query_budget: int = 1000
    seed: int = 0
    prepare_seed: int = None
    spec: CandidateSpec = field(default_factory=CandidateSpec)
    config: MetamConfig = None
    options: dict = field(default_factory=dict)
    task_options: dict = field(default_factory=dict)
    registry: object = None
    candidates: list = None
    label: str = None

    def task_name(self) -> str:
        """Human-readable task identifier for records and events."""
        if isinstance(self.task, str):
            return self.task
        return getattr(self.task, "name", type(self.task).__name__)

    def to_wire(self) -> dict:
        """JSON-serializable description of this request (the versioned
        wire schema; see :func:`repro.api.wire.request_to_wire`).

        Tables and task objects are described, not embedded — a record
        identifies what was asked, it does not re-ship the data.
        """
        from repro.api import wire

        return wire.request_to_wire(self)

    @classmethod
    def from_wire(cls, payload: dict, corpus: dict) -> "DiscoveryRequest":
        """Build a request from a wire payload served over ``corpus``
        (see :func:`repro.api.wire.request_from_wire`; raises
        :class:`~repro.api.errors.InvalidRequest` on bad payloads)."""
        from repro.api import wire

        return wire.request_from_wire(payload, corpus)

    def to_record(self) -> dict:
        """Deprecated alias of :meth:`to_wire` (byte-identical)."""
        warnings.warn(
            "DiscoveryRequest.to_record() is deprecated; use "
            "DiscoveryRequest.to_wire() (repro.api.wire schema)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.to_wire()

    def cache_descriptor(self) -> str | None:
        """Canonical description of everything (besides engine state)
        that determines this request's result — the engine's result
        cache combines it with the base table's content fingerprint and
        the profile registry's fingerprint to form the cache key.

        ``None`` marks the request uncacheable: pre-supplied candidate
        lists and task *objects* carry arbitrary state the descriptor
        cannot canonicalize, and options that are not plain JSON values
        have no stable identity.  Cacheable requests serialize
        deterministically (sorted keys, primitives only), so equal
        descriptors imply equal results on an unchanged engine.
        """
        if self.candidates is not None or not isinstance(self.task, str):
            return None
        try:
            return json.dumps(
                {
                    "task": self.task,
                    "task_options": _canonical(self.task_options),
                    "searcher": self.searcher,
                    "theta": self.theta,
                    "query_budget": self.query_budget,
                    "seed": self.seed,
                    "prepare_seed": self.prepare_seed,
                    "spec": self.spec.to_record(),
                    "config": (
                        asdict(self.config) if self.config is not None else None
                    ),
                    "options": _canonical(self.options),
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return None


def _canonical(value):
    """Strictly canonical form of a user-supplied option value.

    Unlike :func:`repro.api.wire.jsonable` there is no ``repr`` fallback
    — an object without a stable JSON identity raises ``TypeError``,
    which marks the whole request uncacheable rather than risking a
    false cache hit.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"no canonical form for {type(value).__name__}")
