"""Session-oriented discovery API: one engine, many requests.

The serving layer of this reproduction: a stateful
:class:`DiscoveryEngine` that owns the catalog, corpus, and registries,
and answers declarative :class:`DiscoveryRequest`s with fully recorded
:class:`DiscoveryRun` handles (final result + typed event stream + JSON
run record).  See the module docstrings of :mod:`repro.api.engine`,
:mod:`repro.api.request`, and :mod:`repro.api.registries` for usage.

Everything that crosses a process boundary — requests, run records,
events, errors — has its versioned JSON schema in :mod:`repro.api.wire`,
and every user-facing failure is one of the typed
:class:`~repro.api.errors.ReproError` kinds.
"""

from repro.api.engine import DiscoveryEngine, EngineStateError
from repro.api.errors import (
    Cancelled,
    Internal,
    InvalidRequest,
    NotFound,
    Overloaded,
    ReproError,
)
from repro.api.futures import DiscoveryFuture
from repro.api.events import (
    AugmentationAccepted,
    CancellationToken,
    CandidatesPrepared,
    QueryIssued,
    RoundCompleted,
    RunCancelled,
    RunCompleted,
    RunEvent,
    RunStarted,
)
from repro.api.registries import (
    Registry,
    RegistryError,
    default_scenarios,
    default_searchers,
    default_tasks,
)
from repro.api.request import CandidateSpec, DiscoveryRequest
from repro.api.run import DiscoveryRun
from repro.api.wire import SCHEMA_VERSION

__all__ = [
    "SCHEMA_VERSION",
    "ReproError",
    "InvalidRequest",
    "NotFound",
    "Overloaded",
    "Cancelled",
    "Internal",
    "DiscoveryEngine",
    "EngineStateError",
    "DiscoveryFuture",
    "DiscoveryRequest",
    "CandidateSpec",
    "DiscoveryRun",
    "RunEvent",
    "RunStarted",
    "CandidatesPrepared",
    "QueryIssued",
    "AugmentationAccepted",
    "RoundCompleted",
    "RunCompleted",
    "RunCancelled",
    "CancellationToken",
    "Registry",
    "RegistryError",
    "default_searchers",
    "default_tasks",
    "default_scenarios",
]
