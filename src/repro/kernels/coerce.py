"""Vectorized coercion kernels (float arrays, categorical codes, type
inference).

Each kernel has a *fast path* whose preconditions are checked up front
(concrete cell types, no NUL bytes that numpy's fixed-width unicode
dtype would truncate); any column outside the preconditions falls back
to the scalar reference, so the result is exact on every input — the
fast path only ever changes speed, never values.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference

__all__ = [
    "coerce_number",
    "encode_categorical",
    "infer_column_type",
    "is_missing",
    "to_float_array",
]

#: Cell types whose float() coercion numpy reproduces exactly.  Anything
#: else (``np.bool_``, Decimal, arbitrary objects with __float__)
#: coerces differently from the reference — which recognizes only these
#: exact families and maps the rest to NaN — and must take the scalar
#: path.  (Caught by the differential suite: numpy would happily turn
#: ``np.bool_(True)`` into 1.0 where the reference yields NaN.)
_NUMERIC_TYPES = (bool, int, float, np.integer, np.floating)
_FLOATABLE_TYPES = _NUMERIC_TYPES + (str, type(None))

is_missing = reference.is_missing
coerce_number = reference.coerce_number


def _vectorized() -> bool:
    from repro.kernels import active_mode

    return active_mode() != "reference"


def _str_cells(values) -> bool:
    """True when every cell is exactly ``str`` with no NUL bytes —
    the precondition for numpy unicode-dtype fast paths (U-dtype
    silently drops trailing NULs)."""
    return all(type(v) is str and "\x00" not in v for v in values)


def to_float_array(values) -> np.ndarray:
    """Float array with NaN for missing/non-numeric cells."""
    values = list(values)
    if _vectorized() and all(isinstance(v, _FLOATABLE_TYPES) for v in values):
        try:
            # numpy parses numeric strings with float()'s grammar and
            # maps None -> NaN; whitespace-only / non-numeric strings
            # raise, dropping us to the exact scalar path.
            return np.array(values, dtype=float).reshape(len(values))
        except (ValueError, TypeError):
            pass
    return reference.to_float_array(values)


def encode_categorical(values) -> np.ndarray:
    """Sorted-distinct integer codes as floats, NaN for missing."""
    values = list(values)
    if _vectorized() and values and _str_cells(values):
        arr = np.asarray(values, dtype=np.str_)
        missing = np.strings.strip(arr) == ""
        keys = np.unique(arr[~missing])
        codes = np.searchsorted(keys, arr) if keys.size else np.zeros(len(arr))
        return np.where(missing, np.nan, codes.astype(float))
    return reference.encode_categorical(values)


def infer_column_type(values, categorical_threshold: int = 20) -> str:
    """Column type as its value string (see reference.infer_column_type)."""
    values = list(values)
    if _vectorized() and values and all(
        isinstance(v, _NUMERIC_TYPES) or v is None for v in values
    ):
        # All-numeric cells: any non-missing value (None/NaN map to NaN
        # here) makes the column numeric, none at all makes it empty.
        floats = np.array(values, dtype=float)
        return "empty" if np.isnan(floats).all() else "numeric"
    return reference.infer_column_type(values, categorical_threshold)
