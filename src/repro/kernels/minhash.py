"""Batch MinHash signing.

The reference path builds one ``(num_values, num_perm)`` permutation
matrix per column.  The kernels keep that exact uint64 expression —
``(h * a + b) mod p mod 2^32`` with numpy wraparound semantics, so
signatures stay byte-identical — but evaluate it for **many columns per
call**: all hashed columns are concatenated, permuted in bounded-memory
chunks, and reduced per column with ``np.minimum.reduceat``.  One numpy
dispatch per chunk instead of one per column is where the batch win
comes from on wide corpora (thousands of short columns).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference
from repro.kernels.reference import MAX_HASH, MERSENNE

__all__ = ["empty_signature", "minhash_from_hashes", "minhash_many"]

#: Bound on the permutation-matrix intermediate, in elements (uint64);
#: 16K elements ≈ 128 KiB so the chunk plus its temporaries stays
#: L2-resident instead of streaming through DRAM.  Swept empirically:
#: 1<<14 runs ~3× faster than a 1<<18 budget and ~6× faster than 1<<22
#: on a 9000-column corpus-shaped workload.
_CHUNK_ELEMENTS = 1 << 14

_U64_MERSENNE = np.uint64(MERSENNE)
_U64_MAX_HASH = np.uint64(MAX_HASH)
_U64_SHIFT = np.uint64(61)


def empty_signature(num_perm: int) -> np.ndarray:
    """Signature of the empty value set (all slots at the hash max)."""
    return np.full(num_perm, MAX_HASH, dtype=np.uint64)


def _permute(hashes: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``((h*a + b) mod p) mod 2^32`` elementwise, value for value what
    the reference expression computes, with the expensive modulos
    replaced: ``mod p`` for the Mersenne ``p = 2^61 - 1`` is a shift-add
    (``2^61 ≡ 1 mod p``) with one conditional subtract, and ``mod 2^32``
    is a mask."""
    y = hashes[:, None] * a[None, :]
    y += b[None, :]
    hi = y >> _U64_SHIFT
    y &= _U64_MERSENNE
    y += hi
    np.subtract(y, _U64_MERSENNE, out=y, where=y >= _U64_MERSENNE)
    y &= _U64_MAX_HASH
    return y


def _permute_min(hashes: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise signature with the permutation matrix chunked so the
    intermediate never exceeds the element budget."""
    num_perm = a.shape[0]
    step = max(1, _CHUNK_ELEMENTS // num_perm)
    if hashes.shape[0] <= step:
        return _permute(hashes, a, b).min(axis=0)
    out = np.full(num_perm, MAX_HASH, dtype=np.uint64)
    for lo in range(0, hashes.shape[0], step):
        chunk = hashes[lo : lo + step]
        np.minimum(out, _permute(chunk, a, b).min(axis=0), out=out)
    return out


def minhash_from_hashes(
    hashes: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """MinHash signature of one pre-hashed column (empty → max-filled)."""
    from repro.kernels import active_mode

    if active_mode() == "reference":
        return reference.minhash_from_hashes(hashes, a, b)
    if hashes.size == 0:
        return empty_signature(a.shape[0])
    return _permute_min(np.ascontiguousarray(hashes, dtype=np.uint64), a, b)


def minhash_many(hash_columns, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Signatures for many pre-hashed columns in one batched evaluation.

    ``hash_columns`` is a sequence of uint64 arrays (one per column);
    returns a ``(len(hash_columns), num_perm)`` uint64 matrix whose rows
    equal :func:`minhash_from_hashes` of each column.
    """
    from repro.kernels import active_mode

    num_perm = a.shape[0]
    columns = list(hash_columns)
    if not columns:
        return np.empty((0, num_perm), dtype=np.uint64)
    if active_mode() == "reference":
        return np.stack(
            [reference.minhash_from_hashes(h, a, b) for h in columns]
        )
    lengths = np.array([h.shape[0] for h in columns], dtype=np.int64)
    out = np.empty((len(columns), num_perm), dtype=np.uint64)
    empty = lengths == 0
    if empty.any():
        out[empty] = MAX_HASH
    if not empty.all():
        # Group consecutive non-empty columns so each group's permutation
        # matrix fits the chunk budget, then min-reduce per column.
        live = [i for i, h in enumerate(columns) if h.shape[0]]
        budget = max(1, _CHUNK_ELEMENTS // num_perm)
        group: list = []
        group_size = 0

        def flush() -> None:
            nonlocal group, group_size
            if not group:
                return
            concat = np.concatenate([columns[i] for i in group])
            permuted = _permute(concat, a, b)
            starts = np.zeros(len(group), dtype=np.int64)
            np.cumsum(lengths[group][:-1], out=starts[1:])
            out[group] = np.minimum.reduceat(permuted, starts, axis=0)
            group, group_size = [], 0

        for i in live:
            size = int(lengths[i])
            if size > budget:
                flush()
                out[i] = _permute_min(columns[i], a, b)
                continue
            if group_size + size > budget:
                flush()
            group.append(i)
            group_size += size
        flush()
    return out
