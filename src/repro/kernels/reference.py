"""Retained scalar reference implementations of every kernel.

These are the per-value Python loops the vectorized kernels replaced,
kept verbatim (same math, same edge handling) for three reasons:

* the **differential test suite** (``tests/kernels/``) drives every
  vectorized kernel against these on adversarial columns — the reference
  is the executable specification;
* ``REPRO_KERNELS=reference`` forces the whole library back onto this
  path at runtime, the debugging escape hatch when a vectorized result
  looks wrong;
* a few inputs (exotic cell types, NUL-embedded strings) are outside the
  vectorized fast paths' preconditions, and the dispatchers fall back to
  these functions for exactness.

Nothing here may import from the vectorized modules or from
``repro.dataframe`` — the reference stands alone so a kernel bug can
never contaminate its own oracle.
"""

from __future__ import annotations

import hashlib

import numpy as np

MERSENNE = (1 << 61) - 1
MAX_HASH = (1 << 32) - 1

_U64 = (1 << 64) - 1
#: Multiplier/fold constants of the hash_version-2 finalizer (the
#: splitmix64/murmur3 mixers; any fixed odd constants work, these are
#: the well-studied ones).
_GOLDEN = 0x9E3779B97F4A7C15
_MIX = 0xFF51AFD7ED558CCD


def stable_hash_v1(value: str) -> int:
    """Stable 32-bit hash of a string (independent of PYTHONHASHSEED).

    This is the hash every stored v2 signature was computed with; it is
    pinned forever (``blake2b(utf-8, digest_size=4)``, big-endian).
    """
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def tabulation_tables(seed: int) -> np.ndarray:
    """The ``(8, 256)`` uint64 tabulation tables of hash_version 2.

    Derived from ``seed`` via counter-mode blake2b so the tables are
    stable across numpy and Python versions forever (no RNG stream
    dependency).  Shared by the scalar and vectorized paths — the hash
    *function* is identical, only the evaluation strategy differs.
    """
    blob = bytearray()
    counter = 0
    while len(blob) < 8 * 256 * 8:
        digest = hashlib.blake2b(
            f"repro-tab64:{seed}:{counter}".encode("utf-8"), digest_size=64
        ).digest()
        blob += digest
        counter += 1
    table = np.frombuffer(bytes(blob[: 8 * 256 * 8]), dtype="<u8")
    return table.reshape(8, 256).astype(np.uint64)


def stable_hash_v2(value: str, tables: np.ndarray) -> int:
    """Scalar hash_version-2 tabulation hash (32-bit output).

    XOR of per-byte table lookups, each multiplied by an odd
    position-dependent constant (so transposed bytes never collide
    structurally), length-mixed and splitmix-folded to 32 bits.  The
    vectorized kernel computes exactly this expression with numpy
    uint64 wraparound arithmetic.
    """
    data = value.encode("utf-8")
    h = 0
    for i, byte in enumerate(data):
        term = (int(tables[i & 7, byte]) * (2 * i + 1)) & _U64
        h ^= term
    h = (h * _GOLDEN + len(data)) & _U64
    h ^= h >> 33
    h = (h * _MIX) & _U64
    h ^= h >> 33
    return h & MAX_HASH


def hash_strings(values, hash_version: int, tables=None) -> np.ndarray:
    """uint64 array of stable hashes, one per value, in input order."""
    if hash_version == 1:
        return np.array(
            [stable_hash_v1(v) for v in values], dtype=np.uint64
        ).reshape(len(values))
    return np.array(
        [stable_hash_v2(v, tables) for v in values], dtype=np.uint64
    ).reshape(len(values))


def minhash_from_hashes(
    hashes: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """MinHash signature from pre-hashed values — the original
    ``MinHasher.signature`` matrix expression, verbatim."""
    num_perm = a.shape[0]
    if hashes.size == 0:
        return np.full(num_perm, MAX_HASH, dtype=np.uint64)
    permuted = (
        hashes[:, None] * a[None, :] + b[None, :]
    ) % np.uint64(MERSENNE) % np.uint64(MAX_HASH + 1)
    return permuted.min(axis=0)


# ----------------------------------------------------------------------
# Scalar coercion / missing-value reference (the original
# repro.dataframe.types loops, kept verbatim).
# ----------------------------------------------------------------------
def is_missing(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    if isinstance(value, str) and value.strip() == "":
        return True
    return False


def coerce_number(value):
    """``float(value)`` or ``None`` if it is not numeric."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return None if isinstance(value, float) and np.isnan(value) else float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def to_float_array(values) -> np.ndarray:
    out = np.empty(len(values), dtype=float)
    for i, v in enumerate(values):
        num = None if is_missing(v) else coerce_number(v)
        out[i] = np.nan if num is None else num
    return out


def encode_categorical(values) -> np.ndarray:
    keys = sorted({str(v) for v in values if not is_missing(v)})
    mapping = {k: float(i) for i, k in enumerate(keys)}
    out = np.empty(len(values), dtype=float)
    for i, v in enumerate(values):
        out[i] = np.nan if is_missing(v) else mapping[str(v)]
    return out


def infer_column_type(values, categorical_threshold: int = 20) -> str:
    """Reference type inference; returns the ColumnType *value* string
    (``"numeric"``/``"categorical"``/``"text"``/``"empty"``) so this
    module stays import-independent of ``repro.dataframe``."""
    non_missing = [v for v in values if not is_missing(v)]
    if not non_missing:
        return "empty"
    if all(coerce_number(v) is not None for v in non_missing):
        return "numeric"
    distinct = {str(v) for v in non_missing}
    if len(distinct) <= max(categorical_threshold, int(0.05 * len(non_missing))):
        return "categorical"
    return "text"


def distinct_strings(cells) -> set:
    """Distinct non-missing values as strings (``Table.distinct_values``)."""
    return {str(v) for v in cells if not is_missing(v)}


def count_non_missing(values) -> int:
    return sum(1 for v in values if not is_missing(v))


def normalize_strings(values) -> set:
    """The containment normalization: ``strip().lower()`` of each value."""
    return {v.strip().lower() for v in values}


def containment_count(query_values: set, candidate_values) -> int:
    """``|Q ∩ C|`` by exact set intersection."""
    if not isinstance(candidate_values, (set, frozenset)):
        candidate_values = set(candidate_values)
    return len(query_values & candidate_values)
