"""Whole-column stable hashing.

Two hash families, selected by ``hash_version``:

* **Version 1** — the pinned compatibility hash: ``blake2b(utf-8,
  digest_size=4)``, the function every stored v2 catalog signature was
  computed with.  blake2b itself cannot be vectorized from Python —
  the per-value digest is this version's hard floor (measured: a
  process-wide memo costs more in dict traffic than it saves on
  mostly-unique columns, so there is none).
* **Version 2** — the vectorized blake2-free path: seeded uint64
  tabulation hashing evaluated over the whole column's concatenated
  UTF-8 bytes with ``np.frombuffer`` + XOR segment reduction.  Opt-in
  per catalog (``hash_version=2``); artifacts are addressed by hash
  version, so v2-hashed stores never cross-contaminate v1 signatures.

Both versions produce values in the 32-bit MinHash domain, and both
have scalar references in :mod:`repro.kernels.reference` that the
differential suite pins them against.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference
from repro.kernels.reference import MAX_HASH, MERSENNE, tabulation_tables

__all__ = [
    "HASH_VERSIONS",
    "MAX_HASH",
    "MERSENNE",
    "hash_strings",
    "stable_hash",
    "tabulation_tables",
]

#: Registered hash families.  Version 1 is the stored-artifact default.
HASH_VERSIONS = (1, 2)

#: Per-seed tabulation tables for hash_version 2 (16 KiB each).
_TAB_CACHE: dict = {}

_U64_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_U64_MIX = np.uint64(0xFF51AFD7ED558CCD)


def _tables(seed: int) -> np.ndarray:
    tables = _TAB_CACHE.get(seed)
    if tables is None:
        tables = _TAB_CACHE[seed] = tabulation_tables(seed)
    return tables


def check_hash_version(hash_version: int) -> int:
    if hash_version not in HASH_VERSIONS:
        raise ValueError(
            f"unknown hash_version {hash_version!r}; registered: {HASH_VERSIONS}"
        )
    return int(hash_version)


def stable_hash(value: str, hash_version: int = 1, seed: int = 0) -> int:
    """Scalar stable hash (both versions; exact kernel semantics)."""
    if hash_version == 1:
        return reference.stable_hash_v1(value)
    check_hash_version(hash_version)
    return reference.stable_hash_v2(value, _tables(seed))


def _hash_strings_v1(values) -> np.ndarray:
    digest = reference.stable_hash_v1
    return np.array([digest(v) for v in values], dtype=np.uint64).reshape(
        len(values)
    )


def _hash_strings_v2(values, seed: int) -> np.ndarray:
    tables = _tables(seed)
    encoded = [v.encode("utf-8") for v in values]
    lengths = np.array([len(e) for e in encoded], dtype=np.int64)
    total = int(lengths.sum())
    n = len(values)
    if total == 0:
        mixed = np.zeros(n, dtype=np.uint64)
    else:
        data = np.frombuffer(b"".join(encoded), dtype=np.uint8)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        position = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        # term_i = T[i & 7][byte_i] * (2 i + 1)  (uint64 wraparound),
        # exactly reference.stable_hash_v2's per-byte expression.
        terms = tables[position & 7, data]
        terms *= (2 * position.astype(np.uint64) + np.uint64(1))
        # XOR-reduce each value's byte range.  A trailing XOR-identity
        # dummy keeps every ``starts`` index valid (a zero-length value
        # at the end starts at ``total``); empty segments still yield
        # reduceat's element-at-start quirk and are patched below.
        terms = np.append(terms, np.uint64(0))
        mixed = np.bitwise_xor.reduceat(terms, starts)
        mixed[lengths == 0] = 0
    mixed = mixed * _U64_GOLDEN + lengths.astype(np.uint64)
    mixed ^= mixed >> np.uint64(33)
    mixed *= _U64_MIX
    mixed ^= mixed >> np.uint64(33)
    return mixed & np.uint64(MAX_HASH)


def hash_strings(values, hash_version: int = 1, seed: int = 0) -> np.ndarray:
    """uint64 hash of every string in ``values``, in input order.

    ``values`` must be an ordered collection of ``str``.  The output
    lands in the 32-bit MinHash domain for both hash versions.
    """
    from repro.kernels import active_mode

    values = list(values)
    check_hash_version(hash_version)
    if active_mode() == "reference":
        tables = _tables(seed) if hash_version == 2 else None
        return reference.hash_strings(values, hash_version, tables)
    if hash_version == 1:
        return _hash_strings_v1(values)
    return _hash_strings_v2(values, seed)
