"""Numpy-backed columnar batch kernels.

Every hot per-value loop in the library (stable hashing, MinHash
signing, coercion, distinct/containment estimation) routes through this
package.  Each kernel has a retained scalar reference implementation in
:mod:`repro.kernels.reference` — the executable specification that the
differential suite (``tests/kernels/``) pins the vectorized paths
against — and the whole library can be forced back onto the reference
path at runtime:

* environment: ``REPRO_KERNELS=reference`` (read once at import);
* code: :func:`set_mode` / the :func:`force_mode` context manager.

Vectorized kernels are *exactness-preserving*: inputs outside a fast
path's preconditions fall back to the reference automatically, so mode
only ever changes speed, never results.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = [
    "KERNEL_MODES",
    "active_mode",
    "caching_enabled",
    "force_mode",
    "set_mode",
    # hashing
    "HASH_VERSIONS",
    "MAX_HASH",
    "MERSENNE",
    "check_hash_version",
    "hash_strings",
    "stable_hash",
    "tabulation_tables",
    # minhash
    "empty_signature",
    "minhash_from_hashes",
    "minhash_many",
    # coercion
    "coerce_number",
    "encode_categorical",
    "infer_column_type",
    "is_missing",
    "to_float_array",
    # sets
    "containment_count",
    "containment_count_arrays",
    "count_non_missing",
    "distinct_strings",
    "normalize_many",
    "normalize_strings",
    "sorted_unique_array",
    "reference",
]

KERNEL_MODES = ("vectorized", "reference")

_env = os.environ.get("REPRO_KERNELS", "vectorized").strip().lower()
_mode: str = _env if _env in KERNEL_MODES else "vectorized"


def active_mode() -> str:
    """The kernel mode every dispatcher consults per call."""
    return _mode


def caching_enabled() -> bool:
    """Whether derived-value caches (column arrays, distinct sets,
    per-key aggregates, shared profile samples) are in effect.

    Disabled in reference mode so ``REPRO_KERNELS=reference`` reproduces
    the pre-kernel library's cost model, not just its results — that is
    what the before/after benchmarks compare against.  Caches are pure
    memoization, so this flag never changes results either way.
    """
    return _mode != "reference"


def set_mode(mode: str) -> None:
    if mode not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; valid: {KERNEL_MODES}")
    global _mode
    _mode = mode


@contextmanager
def force_mode(mode: str):
    """Temporarily pin the kernel mode (used by the differential suite
    to compute both sides of an equivalence check)."""
    previous = _mode
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(previous)


from repro.kernels import reference  # noqa: E402
from repro.kernels.coerce import (  # noqa: E402
    coerce_number,
    encode_categorical,
    infer_column_type,
    is_missing,
    to_float_array,
)
from repro.kernels.hashing import (  # noqa: E402
    HASH_VERSIONS,
    MAX_HASH,
    MERSENNE,
    check_hash_version,
    hash_strings,
    stable_hash,
    tabulation_tables,
)
from repro.kernels.minhash import (  # noqa: E402
    empty_signature,
    minhash_from_hashes,
    minhash_many,
)
from repro.kernels.sets import (  # noqa: E402
    containment_count,
    containment_count_arrays,
    count_non_missing,
    distinct_strings,
    normalize_many,
    normalize_strings,
    sorted_unique_array,
)
