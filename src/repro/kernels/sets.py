"""Set-shaped kernels: distinct values, missing counts, normalization,
containment/overlap estimation.

The containment kernels work on sorted numpy unicode arrays so a query
can be matched against many candidate columns with ``searchsorted``
instead of building a Python set intersection per pair.  Arrays are
built once per column via :func:`sorted_unique_array` and cached by the
caller; any value outside the unicode fast path's preconditions (NUL
bytes, non-str cells) degrades to the exact set-based reference.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.kernels import reference

__all__ = [
    "containment_count",
    "containment_count_arrays",
    "count_non_missing",
    "distinct_strings",
    "normalize_many",
    "normalize_strings",
    "sorted_unique_array",
]


def _vectorized() -> bool:
    from repro.kernels import active_mode

    return active_mode() != "reference"


def distinct_strings(cells) -> set:
    """Distinct non-missing cells as strings (Table.distinct_values).

    Fast path dedups *before* stringifying, which is only sound when
    cell equality implies identical ``str()`` — true within a single
    concrete type for ``str`` and ``int``, false across mixed numerics
    (``1 == 1.0 == True`` but their strings differ, and ``-0.0 == 0.0``).
    """
    if _vectorized():
        cells = list(cells)
        if all(type(v) is str for v in cells):
            return {v for v in set(cells) if v.strip() != ""}
        if all(type(v) is int for v in cells):
            return {str(v) for v in set(cells)}
        if all(type(v) is float or v is None for v in cells):
            # numpy's float64→str conversion is the same shortest
            # round-trip formatting as Python's str() (dragon4), so the
            # stringify itself vectorizes; -0.0/0.0, inf, and subnormals
            # all format identically.  Pinned by the differential suite.
            arr = np.array(cells, dtype=float)
            keep = ~np.isnan(arr)
            if not keep.all():
                arr = arr[keep]
            return set(arr.astype(str).tolist())
    return reference.distinct_strings(cells)


def count_non_missing(values) -> int:
    """Number of non-missing cells; missingness tested once per
    *distinct* value instead of once per cell."""
    if _vectorized():
        try:
            counts = Counter(values)
        except TypeError:  # unhashable cells
            return reference.count_non_missing(values)
        return sum(
            n for v, n in counts.items() if not reference.is_missing(v)
        )
    return reference.count_non_missing(values)


def normalize_strings(values) -> set:
    """Containment normalization: ``strip().lower()`` per value.

    Kept scalar in both modes on purpose: CPython's ``str.strip`` /
    ``str.lower`` return the original object unchanged for
    already-normal ASCII strings, and a measured ``np.strings``
    round-trip (fixed-width unicode array construction + two passes +
    re-boxing) runs ~3× slower on real column domains.  The batch entry
    point below exists for call-shape so callers stay one-pass.
    """
    return reference.normalize_strings(values)


def normalize_many(collections) -> list:
    """:func:`normalize_strings` of each collection, batched."""
    return [reference.normalize_strings(c) for c in collections]


def sorted_unique_array(strings):
    """Sorted numpy unicode array of ``strings``, or ``None`` when the
    collection is outside the unicode fast path's preconditions."""
    strings = list(strings)
    if not strings:
        return np.empty(0, dtype=np.str_)
    if not all(type(v) is str and "\x00" not in v for v in strings):
        return None
    return np.unique(np.asarray(strings, dtype=np.str_))


def containment_count_arrays(query: np.ndarray, candidate: np.ndarray) -> int:
    """``|Q ∩ C|`` for two sorted-unique unicode arrays."""
    if query.size == 0 or candidate.size == 0:
        return 0
    idx = np.searchsorted(candidate, query)
    idx_clipped = np.minimum(idx, candidate.size - 1)
    return int(((idx < candidate.size) & (candidate[idx_clipped] == query)).sum())


def containment_count(query_values, candidate_values) -> int:
    """``|Q ∩ C|`` with set semantics; accepts sets or prebuilt sorted
    arrays (mixing is fine — arrays are rebuilt from sets as needed)."""
    if (
        _vectorized()
        and isinstance(query_values, np.ndarray)
        and isinstance(candidate_values, np.ndarray)
    ):
        return containment_count_arrays(query_values, candidate_values)
    if isinstance(query_values, np.ndarray):
        query_values = set(query_values.tolist())
    if isinstance(candidate_values, np.ndarray):
        candidate_values = set(candidate_values.tolist())
    if not isinstance(query_values, (set, frozenset)):
        query_values = set(query_values)
    return reference.containment_count(query_values, candidate_values)
