"""Candidate generation, materialization, and profiling.

``GENERATE-CANDIDATES`` (Algorithm 1, line 1) plus ``EVALUATE-PROFILE``
(line 2): enumerate join paths, expand each into per-column augmentations,
materialize them against ``Din``, and attach profile vectors.  The
resulting list of :class:`Candidate` objects is the shared input of METAM
and of all baselines — every searcher sees the same candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.dataframe.table import Table
from repro.discovery.index import DiscoveryIndex
from repro.discovery.join_graph import enumerate_join_paths
from repro.discovery.join_path import Augmentation
from repro.profiles.base import ProfileContext
from repro.profiles.registry import ProfileRegistry


@dataclass
class Candidate:
    """A materialized augmentation with its profile vector."""

    aug: object
    values: list = field(repr=False)
    overlap: float = 0.0
    profile_vector: np.ndarray = None

    @property
    def aug_id(self) -> str:
        return self.aug.aug_id


def generate_candidates(
    base: Table,
    index: DiscoveryIndex,
    max_hops: int = 1,
    max_fanout: int = 50,
    max_candidates=None,
) -> list:
    """Enumerate augmentations: one per (join path, projected column)."""
    augmentations = []
    tables = index.tables
    for path in enumerate_join_paths(base, index, max_hops=max_hops, max_fanout=max_fanout):
        final = tables[path.final_table]
        key_column = path.steps[-1].right_column
        for column in final.column_names:
            if column == key_column:
                continue
            augmentations.append(Augmentation(path, column))
            if max_candidates is not None and len(augmentations) >= max_candidates:
                return augmentations
    return augmentations


def materialize_candidates(
    base: Table,
    augmentations,
    corpus: dict,
    min_overlap: float = 0.0,
) -> list:
    """Materialize each augmentation against ``Din``; drop empty columns.

    ``min_overlap`` filters augmentations that match too few rows to ever
    matter (0 keeps everything that matches at least one row).
    """
    candidates = []
    for aug in augmentations:
        values = aug.materialize(base, corpus)
        matched = kernels.count_non_missing(values)
        overlap = matched / max(1, len(values))
        if matched == 0 or overlap < min_overlap:
            continue
        candidates.append(Candidate(aug=aug, values=values, overlap=overlap))
    return candidates


def profile_candidates(
    candidates,
    base: Table,
    corpus: dict,
    registry: ProfileRegistry,
    sample_size: int = 100,
    seed: int = 0,
    cache=None,
) -> list:
    """Attach a profile vector to every candidate (in place; returns list).

    ``cache`` (a :class:`repro.catalog.ProfileCache`) short-circuits
    computation for candidates profiled in a previous run: vectors derive
    deterministically from the base table plus the join-path tables, so a
    fingerprint-keyed hit is exact, not approximate.  Newly computed
    vectors are written back and flushed at the end.
    """
    # One pass shares base/sample state: every context below has the
    # same base, sample_size, and seed, so sampled base arrays are
    # computed once, not once per candidate (off in reference mode,
    # which reproduces the pre-kernel cost model).
    shared_cache = {} if kernels.caching_enabled() else None
    try:
        for candidate in candidates:
            if cache is not None:
                cached = cache.get(candidate)
                if cached is not None:
                    candidate.profile_vector = cached
                    continue
            context = ProfileContext(
                base=base,
                column_name=candidate.aug_id,
                column_values=candidate.values,
                candidate_table=corpus[candidate.aug.final_table],
                overlap_fraction=candidate.overlap,
                sample_size=sample_size,
                seed=seed,
                shared_cache=shared_cache,
            )
            candidate.profile_vector = registry.compute_vector(context)
            if cache is not None:
                cache.put(candidate, candidate.profile_vector)
    finally:
        # Persist whatever was computed even if a late candidate failed —
        # the finished vectors are valid and save the next run the work.
        if cache is not None:
            cache.flush()
    return candidates
