"""Banded LSH over MinHash signatures for sub-linear candidate lookup."""

from __future__ import annotations

import numpy as np


class LshIndex:
    """Split signatures into ``bands`` bands; items sharing any band bucket
    are returned as join candidates.

    With ``num_perm = bands * rows_per_band`` the standard S-curve applies:
    more bands → higher recall, lower precision.
    """

    def __init__(self, num_perm: int = 64, bands: int = 16):
        if num_perm % bands != 0:
            raise ValueError(
                f"num_perm ({num_perm}) must be divisible by bands ({bands})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows_per_band = num_perm // bands
        self._buckets = [dict() for _ in range(bands)]
        self._items = {}

    def __len__(self) -> int:
        return len(self._items)

    def _band_keys(self, signature: np.ndarray):
        if signature.shape != (self.num_perm,):
            raise ValueError(
                f"signature must have shape ({self.num_perm},), got {signature.shape}"
            )
        # Bucket keys are the bands' raw little-endian uint64 bytes: the
        # mapping band-values → bytes is bijective (fixed width), so
        # bucketing is identical to keying on value tuples, and slicing
        # one bytes object beats building a tuple per band.  Keys never
        # leave the process, so platform byte order is fine.
        raw = np.ascontiguousarray(signature, dtype=np.uint64).tobytes()
        width = self.rows_per_band * 8
        for band in range(self.bands):
            start = band * width
            yield band, raw[start : start + width]

    def insert(self, item, signature: np.ndarray) -> None:
        """Index ``item`` (hashable id) under its signature."""
        if item in self._items:
            raise ValueError(f"item {item!r} already indexed")
        self._items[item] = signature
        for band, key in self._band_keys(signature):
            self._buckets[band].setdefault(key, set()).add(item)

    def insert_many(self, items, signatures: np.ndarray) -> None:
        """Bulk :meth:`insert` from a stacked ``(len(items), num_perm)``
        signature matrix — one reshape+tolist instead of per-item band
        slicing, the hot path of warm-start hydration."""
        items = list(items)
        if signatures.shape != (len(items), self.num_perm):
            raise ValueError(
                f"signatures must have shape ({len(items)}, {self.num_perm}), "
                f"got {signatures.shape}"
            )
        duplicates = [item for item in items if item in self._items]
        if duplicates:
            raise ValueError(f"items already indexed: {duplicates!r}")
        if len(set(items)) != len(items):
            raise ValueError("duplicate items within batch")
        raw = np.ascontiguousarray(signatures, dtype=np.uint64).tobytes()
        row_width = self.num_perm * 8
        width = self.rows_per_band * 8
        buckets = self._buckets
        for i, item in enumerate(items):
            self._items[item] = signatures[i]
            row = i * row_width
            for band in range(self.bands):
                start = row + band * width
                buckets[band].setdefault(raw[start : start + width], set()).add(
                    item
                )

    def remove(self, item) -> None:
        """Drop ``item`` from the index (inverse of :meth:`insert`).

        Only the buckets the item's stored signature hashes to are
        touched, and buckets are sets, so removal is O(bands) even when
        many items share a bucket (e.g. the all-empty-column signature).
        """
        if item not in self._items:
            raise KeyError(f"item {item!r} not indexed")
        signature = self._items.pop(item)
        for band, key in self._band_keys(signature):
            bucket = self._buckets[band].get(key)
            if bucket is None:
                continue
            bucket.discard(item)
            if not bucket:
                del self._buckets[band][key]

    def query(self, signature: np.ndarray) -> set:
        """All items sharing at least one band bucket with ``signature``."""
        out = set()
        for band, key in self._band_keys(signature):
            out.update(self._buckets[band].get(key, ()))
        return out

    def signature_of(self, item) -> np.ndarray:
        """Stored signature of an indexed item."""
        if item not in self._items:
            raise KeyError(f"item {item!r} not indexed")
        return self._items[item]
