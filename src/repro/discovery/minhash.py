"""MinHash signatures for approximate set similarity (Aurum/Lazo-style)."""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.utils.rng import ensure_rng

_MERSENNE = kernels.MERSENNE
_MAX_HASH = kernels.MAX_HASH


def _stable_hash(value: str) -> int:
    """Stable 32-bit hash of a string (independent of PYTHONHASHSEED)."""
    return kernels.stable_hash(value, hash_version=1)


def jaccard(a: set, b: set) -> float:
    """Exact Jaccard similarity of two sets."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class MinHasher:
    """k-permutation MinHash over string sets.

    Uses the standard ``(a*h + b) mod p`` universal hash family.  The
    same ``(num_perm, seed, hash_version)`` triple always produces
    comparable signatures.  Hashing and permutation run on the batch
    kernels (:mod:`repro.kernels`); ``hash_version=1`` is the pinned
    blake2b compatibility hash every stored signature was computed
    with, ``hash_version=2`` the vectorized tabulation family.
    """

    def __init__(self, num_perm: int = 64, seed: int = 0, hash_version: int = 1):
        if num_perm < 4:
            raise ValueError(f"num_perm must be >= 4, got {num_perm}")
        self.num_perm = num_perm
        self.hash_version = kernels.check_hash_version(hash_version)
        self._hash_seed = int(seed)
        rng = ensure_rng(seed)
        self._a = rng.integers(1, _MERSENNE, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE, size=num_perm, dtype=np.uint64)

    def _hashes(self, values) -> np.ndarray:
        # Dedup exactly like the original set() pass; sorting is not
        # needed (min over values is order-independent) but dedup keeps
        # the permutation matrix small on repetitive columns.
        values = set(values)
        return kernels.hash_strings(
            [str(v) for v in values], self.hash_version, seed=self._hash_seed
        )

    def signature(self, values) -> np.ndarray:
        """MinHash signature (uint64 array of length ``num_perm``).

        Empty input yields the all-``MAX_HASH`` signature.
        """
        return kernels.minhash_from_hashes(self._hashes(values), self._a, self._b)

    def signatures(self, value_sets) -> np.ndarray:
        """Batch signatures: one row per value set in ``value_sets``.

        Equivalent to stacking :meth:`signature` of each set, but the
        permutation work is batched into a few large kernel calls.
        """
        return kernels.minhash_many(
            [self._hashes(values) for values in value_sets], self._a, self._b
        )

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimated Jaccard = fraction of matching signature slots."""
        if sig_a.shape != sig_b.shape:
            raise ValueError(
                f"signature shape mismatch: {sig_a.shape} vs {sig_b.shape}"
            )
        return float(np.mean(sig_a == sig_b))
