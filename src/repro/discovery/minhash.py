"""MinHash signatures for approximate set similarity (Aurum/Lazo-style)."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.rng import ensure_rng

_MERSENNE = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _stable_hash(value: str) -> int:
    """Stable 32-bit hash of a string (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def jaccard(a: set, b: set) -> float:
    """Exact Jaccard similarity of two sets."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class MinHasher:
    """k-permutation MinHash over string sets.

    Uses the standard ``(a*h + b) mod p`` universal hash family.  The same
    ``(num_perm, seed)`` pair always produces comparable signatures.
    """

    def __init__(self, num_perm: int = 64, seed: int = 0):
        if num_perm < 4:
            raise ValueError(f"num_perm must be >= 4, got {num_perm}")
        self.num_perm = num_perm
        rng = ensure_rng(seed)
        self._a = rng.integers(1, _MERSENNE, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE, size=num_perm, dtype=np.uint64)

    def signature(self, values) -> np.ndarray:
        """MinHash signature (uint64 array of length ``num_perm``)."""
        values = set(values)
        if not values:
            return np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        hashes = np.array([_stable_hash(str(v)) for v in values], dtype=np.uint64)
        # (num_values, num_perm) permuted hashes, min over values.
        permuted = (
            hashes[:, None] * self._a[None, :] + self._b[None, :]
        ) % np.uint64(_MERSENNE) % np.uint64(_MAX_HASH + 1)
        return permuted.min(axis=0)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimated Jaccard = fraction of matching signature slots."""
        if sig_a.shape != sig_b.shape:
            raise ValueError(
                f"signature shape mismatch: {sig_a.shape} vs {sig_b.shape}"
            )
        return float(np.mean(sig_a == sig_b))
