"""Data discovery substrate (Aurum substitute, §II-C).

Builds an approximate join-path index over a repository of noisy tables:
MinHash signatures + LSH banding find joinable column pairs, a join graph
enumerates (multi-hop) join paths, and candidate generation materializes
one :class:`Augmentation` per projected column (Definition 4).  Union
search ([15] substitute) provides row-addition candidates for Fig. 4b.
"""

from repro.discovery.minhash import MinHasher, jaccard
from repro.discovery.lsh import LshIndex
from repro.discovery.index import DiscoveryIndex, ColumnRef
from repro.discovery.join_path import JoinStep, JoinPath, Augmentation, UnionAugmentation
from repro.discovery.join_graph import build_join_graph, enumerate_join_paths
from repro.discovery.candidates import (
    Candidate,
    generate_candidates,
    materialize_candidates,
    profile_candidates,
)
from repro.discovery.unions import find_union_candidates

__all__ = [
    "MinHasher",
    "jaccard",
    "LshIndex",
    "DiscoveryIndex",
    "ColumnRef",
    "JoinStep",
    "JoinPath",
    "Augmentation",
    "UnionAugmentation",
    "build_join_graph",
    "enumerate_join_paths",
    "Candidate",
    "generate_candidates",
    "materialize_candidates",
    "profile_candidates",
    "find_union_candidates",
]
