"""Join paths (Definition 3) and augmentations (Definition 4).

An :class:`Augmentation` is a join path plus a single projected output
column; materializing it yields a column row-aligned with ``Din``.  A
:class:`UnionAugmentation` adds rows instead (the Fig. 4b setting).  Both
expose the same ``apply`` interface METAM's query engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro import kernels
from repro.dataframe.ops import _aggregate, _key
from repro.dataframe.table import Table


def _build_lookup(table: Table, column: str) -> dict:
    lookup = {}
    for i, cell in enumerate(table.column(column)):
        k = _key(cell)
        if k is not None:
            lookup.setdefault(k, []).append(i)
    return lookup


def _hop_lookup(table: Table, column: str) -> dict:
    """Join-key → row-indices map for one hop, cached on the (immutable)
    table so augmentations sharing a hop build it once."""
    if not kernels.caching_enabled():
        return _build_lookup(table, column)
    cache = table._derived_cache
    key = ("join_lookup", column)
    if key not in cache:
        cache[key] = _build_lookup(table, column)
    return cache[key]


def _row_keys(table: Table, column: str) -> list:
    """Normalized join key per row of ``column``, cached on the table —
    every augmentation starting from the same base column reuses it."""
    if not kernels.caching_enabled():
        return [_key(cell) for cell in table.column(column)]
    cache = table._derived_cache
    key = ("join_keys", column)
    if key not in cache:
        cache[key] = [_key(cell) for cell in table.column(column)]
    return cache[key]


@dataclass(frozen=True)
class JoinStep:
    """One hop: join the current table's ``left_column`` with
    ``right_table.right_column``."""

    left_column: str
    right_table: str
    right_column: str

    def __str__(self) -> str:
        return f"{self.left_column}→{self.right_table}.{self.right_column}"


@dataclass(frozen=True)
class JoinPath:
    """Ordered chain of join steps starting from ``Din``."""

    steps: tuple

    def __post_init__(self):
        if not self.steps:
            raise ValueError("a join path needs at least one step")
        object.__setattr__(self, "steps", tuple(self.steps))

    @property
    def final_table(self) -> str:
        return self.steps[-1].right_table

    @property
    def length(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return " ⋈ ".join(str(s) for s in self.steps)


class Augmentation:
    """A join path projected to one output column (Γ(Din, P[j])).

    ``materialize`` walks the chain via per-hop key lookups instead of full
    joins, returning cells aligned with the base table's rows; unmatched
    rows are missing.  Results are cached per (base identity, row count).
    """

    def __init__(self, path: JoinPath, output_column: str):
        self.path = path
        self.output_column = output_column
        self.aug_id = f"{path}#{output_column}"
        self._cache = {}

    def __repr__(self) -> str:
        return f"Augmentation({self.aug_id!r})"

    def __eq__(self, other):
        if not isinstance(other, Augmentation):
            return NotImplemented
        return self.aug_id == other.aug_id

    def __hash__(self):
        return hash(self.aug_id)

    @property
    def final_table(self) -> str:
        return self.path.final_table

    def materialize(self, base: Table, corpus: dict) -> list:
        """Cells of the output column aligned with ``base`` rows."""
        cache_key = (id(base), base.num_rows)
        if cache_key in self._cache:
            return self._cache[cache_key]

        # keys[i] is the current join key for base row i (None = dead row).
        first = self.path.steps[0]
        if first.left_column not in base:
            raise KeyError(
                f"join column {first.left_column!r} missing from base table"
            )
        keys = None  # raw join-key cells after hop > 0

        for hop, step in enumerate(self.path.steps):
            right = corpus.get(step.right_table)
            if right is None:
                raise KeyError(f"table {step.right_table!r} not in corpus")
            lookup = _hop_lookup(right, step.right_column)
            if hop == 0:
                norm_keys = _row_keys(base, first.left_column)
            else:
                norm_keys = [_key(cell) for cell in keys]
            is_last = hop == len(self.path.steps) - 1
            if is_last:
                bring_column = self.output_column
            else:
                bring_column = self.path.steps[hop + 1].left_column
            bring = right.column(bring_column)
            # Same inference as infer_column_type(bring), served from
            # the table's type cache (bring IS right's named column).
            col_type = right.column_type(bring_column)
            # The aggregate depends only on the join key (fixed lookup,
            # bring column, and type per hop), so base rows sharing a
            # key — the common case on categorical joins — compute it
            # once instead of once per row.  Memoization is off in
            # reference mode (kernels.caching_enabled) so that mode
            # reproduces the pre-kernel per-row cost model.
            memoize = kernels.caching_enabled()
            aggregated = {}
            next_keys = []
            for k in norm_keys:
                rows = lookup.get(k) if k is not None else None
                if not rows:
                    next_keys.append(None)
                    continue
                if not memoize:
                    next_keys.append(_aggregate([bring[i] for i in rows], col_type))
                    continue
                if k not in aggregated:
                    aggregated[k] = _aggregate(
                        [bring[i] for i in rows], col_type
                    )
                next_keys.append(aggregated[k])
            keys = next_keys

        self._cache[cache_key] = keys
        return keys

    def overlap_fraction(self, base: Table, corpus: dict) -> float:
        """Fraction of base rows with a non-missing materialized value."""
        values = self.materialize(base, corpus)
        if not values:
            return 0.0
        return kernels.count_non_missing(values) / len(values)

    def apply(self, table: Table, base: Table, corpus: dict) -> Table:
        """Add the materialized column to ``table`` (row-aligned with base)."""
        if table.num_rows != base.num_rows:
            raise ValueError(
                f"table has {table.num_rows} rows but base has {base.num_rows}; "
                "join augmentations require row alignment"
            )
        if self.aug_id in table:
            return table
        return table.with_column(self.aug_id, self.materialize(base, corpus))


class UnionAugmentation:
    """Row-addition augmentation: append a union-compatible table's rows.

    Only columns present in the table being augmented are appended;
    columns the union candidate lacks are padded with missing values.
    """

    def __init__(self, table_name: str, shared_fraction: float):
        self.table_name = table_name
        self.shared_fraction = shared_fraction
        self.aug_id = f"union:{table_name}"

    def __repr__(self) -> str:
        return f"UnionAugmentation({self.table_name!r})"

    def __eq__(self, other):
        if not isinstance(other, UnionAugmentation):
            return NotImplemented
        return self.aug_id == other.aug_id

    def __hash__(self):
        return hash(self.aug_id)

    @property
    def final_table(self) -> str:
        return self.table_name

    def materialize(self, base: Table, corpus: dict) -> list:
        """Representative cells for profiling: the union candidate's first
        shared column, trimmed/padded to base length."""
        other = corpus[self.table_name]
        shared = [c for c in base.column_names if c in other]
        if not shared:
            return [None] * base.num_rows
        cells = list(other.column(shared[0]))
        if len(cells) >= base.num_rows:
            return cells[: base.num_rows]
        return cells + [None] * (base.num_rows - len(cells))

    def overlap_fraction(self, base: Table, corpus: dict) -> float:
        return self.shared_fraction

    def apply(self, table: Table, base: Table, corpus: dict) -> Table:
        """Append the candidate's rows over the current table's columns."""
        other = corpus[self.table_name]
        new_cols = {}
        for c in table.column_names:
            extra = list(other.column(c)) if c in other else [None] * other.num_rows
            new_cols[c] = list(table.column(c)) + extra
        return Table(table.name, new_cols, source=table.source)
