"""Table-union search: row-addition candidates (Nargesian et al. [15])."""

from __future__ import annotations

from repro.dataframe.table import Table
from repro.discovery.join_path import UnionAugmentation


def find_union_candidates(
    base: Table,
    corpus: dict,
    min_shared: float = 0.5,
) -> list:
    """Tables whose schemas overlap ``base`` enough to union with it.

    ``min_shared`` is the minimum fraction of base columns that must appear
    (by name) in the candidate.  Returns :class:`UnionAugmentation` objects
    sorted by decreasing schema overlap.
    """
    if not 0.0 < min_shared <= 1.0:
        raise ValueError(f"min_shared must be in (0, 1], got {min_shared}")
    base_cols = set(base.column_names)
    if not base_cols:
        return []
    out = []
    for name, table in corpus.items():
        if name == base.name:
            continue
        shared = base_cols & set(table.column_names)
        fraction = len(shared) / len(base_cols)
        if fraction >= min_shared:
            out.append(UnionAugmentation(name, fraction))
    out.sort(key=lambda u: (-u.shared_fraction, u.table_name))
    return out
