"""Join graph construction and join-path enumeration (networkx-backed)."""

from __future__ import annotations

import networkx as nx

from repro.dataframe.table import Table
from repro.discovery.index import ColumnRef, DiscoveryIndex
from repro.discovery.join_path import JoinPath, JoinStep


def build_join_graph(index: DiscoveryIndex) -> nx.Graph:
    """Undirected graph over repository columns; edges = joinable pairs.

    Nodes are :class:`ColumnRef`; edge weight is verified containment.
    """
    graph = nx.Graph()
    tables = index.tables
    for name, table in tables.items():
        for column in table.column_names:
            graph.add_node(ColumnRef(name, column))
    for name, table in tables.items():
        for column in table.column_names:
            for ref, score in index.joinable(table, column, exclude_table=name):
                graph.add_edge(ColumnRef(name, column), ref, weight=score)
    return graph


def enumerate_join_paths(
    base: Table,
    index: DiscoveryIndex,
    max_hops: int = 2,
    max_fanout: int = 50,
) -> list:
    """All join paths from ``base`` up to ``max_hops`` hops, best-first
    per hop.

    Hop 1 joins a base column with a repository column; hop ``h+1`` joins a
    column of the hop-``h`` table with a further table.  ``max_fanout``
    bounds the candidates explored per (table, column) to keep enumeration
    linear in practice.
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    tables = index.tables
    paths = []
    frontier = []

    for column in base.column_names:
        for ref, _score in index.joinable(base, column, exclude_table=base.name)[
            :max_fanout
        ]:
            path = JoinPath((JoinStep(column, ref.table, ref.column),))
            paths.append(path)
            frontier.append(path)

    for _hop in range(1, max_hops):
        next_frontier = []
        for path in frontier:
            current = tables[path.final_table]
            visited = {base.name} | {s.right_table for s in path.steps}
            for column in current.column_names:
                if column == path.steps[-1].right_column:
                    continue
                for ref, _score in index.joinable(
                    current, column, exclude_table=current.name
                )[:max_fanout]:
                    if ref.table in visited:
                        continue
                    extended = JoinPath(
                        path.steps + (JoinStep(column, ref.table, ref.column),)
                    )
                    paths.append(extended)
                    next_frontier.append(extended)
        frontier = next_frontier
    return paths
