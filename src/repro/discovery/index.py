"""The discovery index: joinable-column lookup over a table repository.

This is our Aurum substitute.  Every indexed column gets a MinHash
signature inserted into an LSH index; a *joinable* query returns columns
whose LSH buckets collide and whose verified containment passes a
threshold.  Like Aurum, the output is noisy: semantically wrong joins with
overlapping value domains do surface (the paper relies on this — ~60% of
discovered candidates are erroneous in §VI-A).

The per-column state lives in :class:`ColumnEntry` objects (distinct
sample, normalized value set, MinHash signature).  Entries can be computed
here or supplied precomputed — that is how the persistent catalog
(:mod:`repro.catalog`) warm-starts an index without re-signing unchanged
tables — and tables can be removed incrementally, so the catalog can keep
an index in sync with a changing corpus without full rebuilds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.dataframe.table import Table
from repro.discovery.lsh import LshIndex
from repro.discovery.minhash import MinHasher


@dataclass(frozen=True)
class ColumnRef:
    """A (table, column) pair in the repository."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, eq=False)
class ColumnEntry:
    """Everything the index stores about one column.

    ``distinct`` is the (possibly down-sampled) raw distinct-value set the
    signature was computed from; ``normalized`` is its stripped/lowercased
    form used for containment verification, computed once at indexing time
    instead of on every query.
    """

    distinct: frozenset
    normalized: frozenset
    signature: np.ndarray = field(repr=False)

    def __eq__(self, other):
        if not isinstance(other, ColumnEntry):
            return NotImplemented
        return (
            self.distinct == other.distinct
            and self.normalized == other.normalized
            and np.array_equal(self.signature, other.signature)
        )

    def __hash__(self):
        # Value sets alone: equal entries (which also match on signature)
        # necessarily hash alike, keeping entries usable in sets/dicts.
        return hash((self.distinct, self.normalized))


def _sample_seed(seed: int, table: str, column: str) -> int:
    """Stable per-column sampling seed (independent of insertion order)."""
    key = f"{seed}:{table}:{column}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


class DiscoveryIndex:
    """Joinable-column index over a corpus of tables.

    Parameters
    ----------
    num_perm / bands:
        MinHash/LSH resolution (bands must divide num_perm).
    min_containment:
        Verified containment |Q ∩ C| / |Q| threshold for a candidate
        column C given query column Q.
    max_distinct:
        Columns with more distinct values than this are still indexed but
        down-sampled with a seeded uniform sample (keeps signatures cheap
        on wide corpora without biasing containment estimates).
    """

    def __init__(
        self,
        num_perm: int = 64,
        bands: int = 16,
        min_containment: float = 0.25,
        max_distinct: int = 5000,
        seed: int = 0,
        hash_version: int = 1,
    ):
        self.hash_version = kernels.check_hash_version(hash_version)
        self._hasher = MinHasher(
            num_perm=num_perm, seed=seed, hash_version=hash_version
        )
        self._lsh = LshIndex(num_perm=num_perm, bands=bands)
        self.num_perm = num_perm
        self.bands = bands
        self.min_containment = min_containment
        self.max_distinct = max_distinct
        self.seed = seed
        self._entries = {}
        self._tables = {}
        self._entry_loader = None

    # ------------------------------------------------------------------
    @property
    def tables(self) -> dict:
        """Indexed tables by name (a copy — use :meth:`get_table` for
        single lookups on hot paths)."""
        return dict(self._tables)

    def get_table(self, table_name: str):
        """Indexed Table by name without copying the registry, or ``None``
        (the per-table hot-path complement of the :attr:`tables` copy)."""
        return self._tables.get(table_name)

    @property
    def num_indexed_columns(self) -> int:
        return len(self._lsh)

    @property
    def config(self) -> dict:
        """Construction parameters (what a catalog must match to reuse
        persisted signatures)."""
        config = {
            "num_perm": self.num_perm,
            "bands": self.bands,
            "min_containment": self.min_containment,
            "max_distinct": self.max_distinct,
            "seed": self.seed,
        }
        # hash_version appears only when non-default so every manifest
        # and artifact id written before the key existed stays valid.
        if self.hash_version != 1:
            config["hash_version"] = self.hash_version
        return config

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def _distinct_sample(self, table: Table, column: str) -> set:
        """The column's (possibly down-sampled) distinct-value set."""
        distinct = table.distinct_values(column)
        if len(distinct) > self.max_distinct:
            rng = np.random.default_rng(
                _sample_seed(self.seed, table.name, column)
            )
            picks = rng.choice(
                sorted(distinct), size=self.max_distinct, replace=False
            )
            distinct = set(picks.tolist())
        return distinct

    def compute_column_entry(self, table: Table, column: str) -> ColumnEntry:
        """Signature + value sets for one column (the expensive step)."""
        distinct = self._distinct_sample(table, column)
        return ColumnEntry(
            distinct=frozenset(distinct),
            normalized=frozenset(kernels.normalize_strings(distinct)),
            signature=self._hasher.signature(distinct),
        )

    def compute_column_entries(self, table: Table, columns=None) -> dict:
        """Entries for many columns with one batched signing pass.

        Row-for-row identical to calling :meth:`compute_column_entry`
        per column; the MinHash permutation work is batched into a few
        large kernel calls instead of one per column.
        """
        columns = table.column_names if columns is None else list(columns)
        distincts = [self._distinct_sample(table, column) for column in columns]
        signatures = self._hasher.signatures(distincts)
        normalized = kernels.normalize_many(distincts)
        return {
            column: ColumnEntry(
                distinct=frozenset(distinct),
                normalized=frozenset(normalized[i]),
                signature=signatures[i],
            )
            for i, (column, distinct) in enumerate(zip(columns, distincts, strict=True))
        }

    def add_table(self, table: Table, entries: dict = None) -> None:
        """Index every column of ``table``.

        ``entries`` optionally supplies precomputed :class:`ColumnEntry`
        objects by column name (e.g. loaded from a persistent catalog); any
        column not covered is computed here.
        """
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already indexed")
        entries = entries or {}
        unknown = set(entries) - set(table.column_names)
        if unknown:
            raise ValueError(
                f"precomputed entries for unknown columns {sorted(unknown)!r} "
                f"of table {table.name!r}"
            )
        # Resolve and validate everything before touching index state, so
        # a bad precomputed entry cannot leave a half-indexed table.
        to_compute = [c for c in table.column_names if not entries.get(c)]
        computed = (
            self.compute_column_entries(table, to_compute) if to_compute else {}
        )
        resolved = {
            column: entries.get(column) or computed[column]
            for column in table.column_names
        }
        for column, entry in resolved.items():
            if entry.signature.shape != (self.num_perm,):
                raise ValueError(
                    f"entry for {table.name}.{column} has signature shape "
                    f"{entry.signature.shape}, expected ({self.num_perm},)"
                )
        refs = [ColumnRef(table.name, column) for column in resolved]
        if refs:
            # One bulk LSH insert (validates before mutating, like the
            # per-column path did via the shape check above).
            self._lsh.insert_many(
                refs, np.stack([entry.signature for entry in resolved.values()])
            )
        self._tables[table.name] = table
        for ref, entry in zip(refs, resolved.values(), strict=True):
            self._entries[ref] = entry

    def add_table_hydrated(self, table: Table, signatures: dict) -> None:
        """Index a table from precomputed signatures alone (warm start).

        ``signatures`` maps every column name to its MinHash signature;
        the LSH structure hydrates immediately via one bulk insert, while
        the value sets needed for containment verification are fetched
        lazily through the entry loader (:meth:`set_entry_loader`) on the
        first query that collides with one of this table's columns.
        """
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already indexed")
        missing = set(table.column_names) - set(signatures)
        if missing:
            raise ValueError(
                f"signatures missing for columns {sorted(missing)!r} "
                f"of table {table.name!r}"
            )
        refs = [ColumnRef(table.name, column) for column in table.column_names]
        matrix = np.stack([signatures[ref.column] for ref in refs])
        # insert_many validates shape before mutating; register the table
        # only once the insert succeeded, so failures leave no trace.
        self._lsh.insert_many(refs, matrix)
        self._tables[table.name] = table

    def set_entry_loader(self, loader) -> None:
        """Install the lazy entry source for hydrated tables.

        ``loader(table_name)`` must return ``{column: ColumnEntry}`` for
        every column of that table.
        """
        self._entry_loader = loader

    def _entry(self, ref: ColumnRef) -> ColumnEntry:
        """Entry for ``ref``, paging in the owning table's entries if the
        index was hydrated from signatures only."""
        entry = self._entries.get(ref)
        if entry is not None:
            return entry
        if self._entry_loader is None:
            raise KeyError(f"no entry for {ref} and no entry loader installed")
        loaded = self._entry_loader(ref.table)
        for column, column_entry in loaded.items():
            self._entries[ColumnRef(ref.table, column)] = column_entry
        return self._entries[ref]

    def remove_table(self, table_name: str) -> None:
        """Drop a table and all its column entries (incremental; touches
        only this table's LSH buckets)."""
        if table_name not in self._tables:
            raise KeyError(f"table {table_name!r} not indexed")
        table = self._tables.pop(table_name)
        for column in table.column_names:
            ref = ColumnRef(table_name, column)
            self._entries.pop(ref, None)
            self._lsh.remove(ref)

    def signature_of(self, ref: ColumnRef) -> np.ndarray:
        """Stored MinHash signature of an indexed column."""
        return self._lsh.signature_of(ref)

    def rebind_table(self, table: Table) -> None:
        """Swap the stored Table object for an equal-content newcomer.

        Used by the catalog when a refresh sees an unchanged fingerprint:
        the index keeps its entries but points at the current corpus
        object instead of pinning the previous generation in memory.
        """
        if table.name not in self._tables:
            raise KeyError(f"table {table.name!r} not indexed")
        self._tables[table.name] = table

    def column_entries(self, table_name: str) -> dict:
        """Stored :class:`ColumnEntry` objects of one table, by column
        (forces lazy entries to load)."""
        if table_name not in self._tables:
            raise KeyError(f"table {table_name!r} not indexed")
        return {
            column: self._entry(ColumnRef(table_name, column))
            for column in self._tables[table_name].column_names
        }

    def build(self, corpus) -> "DiscoveryIndex":
        """Index every table in ``corpus`` (iterable of Tables)."""
        for table in corpus:
            self.add_table(table)
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _normalized_array(entry: ColumnEntry):
        """Sorted unicode array of ``entry.normalized`` for searchsorted
        containment, cached on the entry; ``None`` when the values are
        outside the array fast path (then set intersection is used)."""
        arr = getattr(entry, "_norm_array", False)
        if arr is False:
            arr = kernels.sorted_unique_array(entry.normalized)
            object.__setattr__(entry, "_norm_array", arr)
        return arr

    def _verified(self, query_values, signature, exclude_table=None) -> list:
        """LSH probe + containment verification, shared by the live-table
        and stored-entry query paths."""
        query_arr = (
            kernels.sorted_unique_array(query_values)
            if kernels.active_mode() != "reference"
            else None
        )
        results = []
        for ref in self._lsh.query(signature):
            if exclude_table is not None and ref.table == exclude_table:
                continue
            entry = self._entry(ref)
            if query_arr is not None:
                candidate_arr = self._normalized_array(entry)
            else:
                candidate_arr = None
            if candidate_arr is not None:
                count = kernels.containment_count_arrays(query_arr, candidate_arr)
            else:
                count = len(query_values & entry.normalized)
            containment = count / len(query_values)
            if containment >= self.min_containment:
                results.append((ref, containment))
        results.sort(key=lambda item: (-item[1], str(item[0])))
        return results

    def joinable(self, table: Table, column: str, exclude_table=None) -> list:
        """Columns joinable with ``table.column``, best-first.

        Returns ``[(ColumnRef, containment)]`` with verified containment of
        the query column's values in the candidate column, filtered by
        ``min_containment``.  ``exclude_table`` suppresses self-joins.
        """
        query_values = kernels.normalize_strings(table.distinct_values(column))
        if not query_values:
            return []
        return self._verified(
            query_values, self._hasher.signature(query_values), exclude_table
        )

    def joinable_for_entry(self, entry: ColumnEntry, exclude_table=None) -> list:
        """Joinable candidates for a column given its stored
        :class:`ColumnEntry` — the catalog-backed query path: no raw table
        values are touched, so Table-I style reports can run entirely from
        persisted artifacts.  Uses the entry's normalized set as the query
        set and its stored signature for the LSH probe; identical to
        :meth:`joinable` whenever the column's values are already
        normalized and were not down-sampled at indexing time.
        """
        if not entry.normalized:
            return []
        return self._verified(entry.normalized, entry.signature, exclude_table)

    def joinable_count(self, table) -> int:
        """Number of repository columns joinable with any column of
        ``table`` — the Table I '#Joinable Columns' statistic.

        Accepts a live :class:`Table` (signatures recomputed from its
        values) or the *name* of an indexed table, which is served from
        stored entries instead — the path the persistent catalog routes
        corpus reports through.
        """
        if isinstance(table, str):
            if table not in self._tables:
                raise KeyError(f"table {table!r} not indexed")
            name = table
            seen = set()
            for column in self._tables[name].column_names:
                entry = self._entry(ColumnRef(name, column))
                for ref, _ in self.joinable_for_entry(entry, exclude_table=name):
                    seen.add(ref)
            return len(seen)
        seen = set()
        for column in table.column_names:
            for ref, _ in self.joinable(table, column, exclude_table=table.name):
                seen.add(ref)
        return len(seen)
