"""The discovery index: joinable-column lookup over a table repository.

This is our Aurum substitute.  Every indexed column gets a MinHash
signature inserted into an LSH index; a *joinable* query returns columns
whose LSH buckets collide and whose verified containment passes a
threshold.  Like Aurum, the output is noisy: semantically wrong joins with
overlapping value domains do surface (the paper relies on this — ~60% of
discovered candidates are erroneous in §VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataframe.table import Table
from repro.discovery.lsh import LshIndex
from repro.discovery.minhash import MinHasher


@dataclass(frozen=True)
class ColumnRef:
    """A (table, column) pair in the repository."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class DiscoveryIndex:
    """Joinable-column index over a corpus of tables.

    Parameters
    ----------
    num_perm / bands:
        MinHash/LSH resolution (bands must divide num_perm).
    min_containment:
        Verified containment |Q ∩ C| / |Q| threshold for a candidate
        column C given query column Q.
    max_distinct:
        Columns with more distinct values than this are still indexed but
        sampled down (keeps signatures cheap on wide corpora).
    """

    def __init__(
        self,
        num_perm: int = 64,
        bands: int = 16,
        min_containment: float = 0.25,
        max_distinct: int = 5000,
        seed: int = 0,
    ):
        self._hasher = MinHasher(num_perm=num_perm, seed=seed)
        self._lsh = LshIndex(num_perm=num_perm, bands=bands)
        self.min_containment = min_containment
        self.max_distinct = max_distinct
        self._distinct = {}
        self._tables = {}

    # ------------------------------------------------------------------
    @property
    def tables(self) -> dict:
        """Indexed tables by name."""
        return dict(self._tables)

    @property
    def num_indexed_columns(self) -> int:
        return len(self._distinct)

    def add_table(self, table: Table) -> None:
        """Index every column of ``table``."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already indexed")
        self._tables[table.name] = table
        for column in table.column_names:
            ref = ColumnRef(table.name, column)
            distinct = table.distinct_values(column)
            if len(distinct) > self.max_distinct:
                distinct = set(sorted(distinct)[: self.max_distinct])
            self._distinct[ref] = distinct
            self._lsh.insert(ref, self._hasher.signature(distinct))

    def build(self, corpus) -> "DiscoveryIndex":
        """Index every table in ``corpus`` (iterable of Tables)."""
        for table in corpus:
            self.add_table(table)
        return self

    # ------------------------------------------------------------------
    def joinable(self, table: Table, column: str, exclude_table=None) -> list:
        """Columns joinable with ``table.column``, best-first.

        Returns ``[(ColumnRef, containment)]`` with verified containment of
        the query column's values in the candidate column, filtered by
        ``min_containment``.  ``exclude_table`` suppresses self-joins.
        """
        query_values = {v.strip().lower() for v in table.distinct_values(column)}
        if not query_values:
            return []
        signature = self._hasher.signature(query_values)
        results = []
        for ref in self._lsh.query(signature):
            if exclude_table is not None and ref.table == exclude_table:
                continue
            candidate = {v.strip().lower() for v in self._distinct[ref]}
            containment = len(query_values & candidate) / len(query_values)
            if containment >= self.min_containment:
                results.append((ref, containment))
        results.sort(key=lambda item: (-item[1], str(item[0])))
        return results

    def joinable_count(self, table: Table) -> int:
        """Number of repository columns joinable with any column of
        ``table`` — the Table I '#Joinable Columns' statistic."""
        seen = set()
        for column in table.column_names:
            for ref, _ in self.joinable(table, column, exclude_table=table.name):
                seen.add(ref)
        return len(seen)
