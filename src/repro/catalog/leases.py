"""Lease-based write ownership for the catalog store.

The gc liveness race: ``gc`` computes its live set from the root
manifest, a concurrent builder then writes a new object, and gc —
scanning objects, not intents — reclaims it before the builder's
``save()`` records the reference.  Shard locks cannot close this gap:
the write and the delete are both individually well-formed; what is
missing is *ownership* spanning the builder's write→save window.

A :class:`LeaseManager` gives writers exactly that: a time-bounded
lease with a monotonically increasing **fencing token** drawn from a
store-wide counter.  A writer acquires a lease before its first object
write, stamps the token on every object record it lands, renews while
it works, and releases after its ``save()`` publishes the references.
``gc`` then refuses to reclaim any unreferenced object whose stamped
token belongs to a currently active lease — the object is work in
flight, not garbage.  A writer that crashes stops renewing; its lease
expires after ``ttl`` (+ the configured clock-skew allowance) and its
orphaned objects become collectible, so leases bound the damage of any
failure to one TTL window instead of leaking forever.

Fencing tokens are what make the scheme safe across restarts: tokens
never repeat, so an object stamped by a dead writer's lease can never
be confused with one stamped by a live writer that happens to reuse
the same owner name — gc compares tokens, not identities.

Lease state lives in the store itself (``leases/<owner>.json`` plus the
``leases/.seq`` counter, maintained under a backend lock), so every
process — and every node, once the backend spans machines — observes
one coherent ownership map.  Expiry is judged by clamped age
(``max(0, now - acquired)``): a reader whose clock lags the writer's
computes a *negative* age and simply sees the lease as fresh, never as
expired-before-it-began.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import TYPE_CHECKING, Callable, ContextManager, Iterable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.catalog.backend import StoreBackend

#: Default lease lifetime (seconds): long enough for a builder's
#: write→save window under heavy load, short enough that a crashed
#: writer's orphans are collectible promptly.
DEFAULT_LEASE_TTL = 600.0

LEASE_DIR = "leases"
SEQ_NAME = ".seq"
LOCK_NAME = ".lock"


class Lease:
    """One granted lease: who holds it, its fencing token, and when it
    expires.  Immutable — renewal returns a fresh instance."""

    __slots__ = ("owner", "token", "acquired", "ttl", "kind")

    def __init__(
        self,
        owner: str,
        token: int,
        acquired: float,
        ttl: float,
        kind: str = "writer",
    ) -> None:
        self.owner = owner
        self.token = int(token)
        self.acquired = float(acquired)
        self.ttl = float(ttl)
        self.kind = kind

    @property
    def expires(self) -> float:
        return self.acquired + self.ttl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lease(owner={self.owner!r}, token={self.token}, "
            f"kind={self.kind!r}, ttl={self.ttl})"
        )


class LeaseManager:
    """Grants, renews, releases, and reaps leases for one store root.

    ``clock_skew`` widens the expiry horizon observers apply to *other*
    holders' leases: a lease is treated as active until ``ttl +
    clock_skew`` past its acquisition stamp, so a gc whose clock runs
    ahead of a writer's cannot reclaim objects the writer still owns.
    ``clock`` is injectable for deterministic tests (the store wires it
    to its own overridable clock).
    """

    def __init__(
        self,
        backend: StoreBackend,
        root: str,
        ttl: float = DEFAULT_LEASE_TTL,
        clock_skew: float = 0.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.backend = backend
        self.root = str(root)
        self.ttl = float(ttl)
        self.clock_skew = float(clock_skew)
        self.clock = clock
        self._dir = os.path.join(self.root, LEASE_DIR)

    def _lease_path(self, owner: str) -> str:
        return os.path.join(self._dir, f"{owner}.json")

    def _lock(self) -> ContextManager[object]:
        return self.backend.lock(os.path.join(self._dir, LOCK_NAME))

    def _next_token(self) -> int:
        """Advance the store-wide fencing counter (caller holds the
        lease lock)."""
        seq_path = os.path.join(self._dir, SEQ_NAME)
        try:
            current = int(self.backend.read_bytes(seq_path).decode("ascii"))
        except (OSError, ValueError):
            current = 0
        token = current + 1
        self.backend.write_bytes(seq_path, str(token).encode("ascii"))
        return token

    def acquire(self, kind: str = "writer") -> Lease:
        """Grant a fresh lease with the next fencing token."""
        owner = f"{kind}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        with self._lock():
            self.backend.makedirs(self._dir)
            token = self._next_token()
            lease = Lease(owner, token, self.clock(), self.ttl, kind)
            self._write(lease)
        return lease

    def renew(self, lease: Lease) -> Lease:
        """Push a held lease's expiry forward (token unchanged — renewal
        extends ownership, it does not re-order it)."""
        renewed = Lease(
            lease.owner, lease.token, self.clock(), self.ttl, lease.kind
        )
        with self._lock():
            self._write(renewed)
        return renewed

    def release(self, lease: Lease) -> None:
        """Return a lease; absent files (an expired lease a peer already
        reaped) are fine."""
        with self._lock():
            try:
                self.backend.remove(self._lease_path(lease.owner))
            except OSError:
                pass

    def _write(self, lease: Lease) -> None:
        payload = {
            "owner": lease.owner,
            "token": lease.token,
            "acquired": lease.acquired,
            "ttl": lease.ttl,
            "kind": lease.kind,
        }
        self.backend.write_bytes(
            self._lease_path(lease.owner),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def _expired(self, lease: Lease, now: float) -> bool:
        # Clamp at zero: a lagging clock yields a negative age, which
        # must read as "fresh", never as instantly expired.
        age = max(0.0, now - lease.acquired)
        return age >= lease.ttl + self.clock_skew

    def active(self, reap: bool = True) -> List[Lease]:
        """All currently active leases (lock-free read; lease files are
        written atomically).  ``reap`` best-effort removes expired lease
        files so the directory stays bounded."""
        if not self.backend.isdir(self._dir):
            return []
        now = self.clock()
        out: List[Lease] = []
        try:
            names = self.backend.listdir(self._dir)
        except OSError:
            return []
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._dir, name)
            try:
                payload = json.loads(
                    self.backend.read_bytes(path).decode("utf-8")
                )
                lease = Lease(
                    payload["owner"], payload["token"], payload["acquired"],
                    payload["ttl"], payload.get("kind", "writer"),
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if self._expired(lease, now):
                if reap:
                    with self._lock():
                        try:
                            self.backend.remove(path)
                        except OSError:
                            pass
                continue
            out.append(lease)
        return out

    def active_tokens(self, exclude: Iterable[Optional[Lease]] = ()) -> Set[int]:
        """Fencing tokens of active leases, minus ``exclude`` (a gc
        pass excludes its own lease when deciding what to skip)."""
        excluded = {lease.token for lease in exclude if lease is not None}
        return {
            lease.token
            for lease in self.active()
            if lease.token not in excluded
        }
