"""The :class:`Catalog` facade: a persistent, incrementally-updatable
discovery index plus a profile-vector cache.

A catalog owns a :class:`~repro.discovery.index.DiscoveryIndex` and keeps
it in sync with a corpus through ``add``/``remove``/``update``/``refresh``
— each maintaining the LSH index incrementally, never rebuilding entries
of unchanged tables.  With a :class:`~repro.catalog.store.CatalogStore`
attached, every computed artifact (MinHash signatures, distinct sets,
profile vectors) is persisted content-addressed by table fingerprint, so
a later process warm-starts discovery by loading artifacts instead of
recomputing them.  Staleness is detected by fingerprint: a table whose
content changed gets a new fingerprint, misses the object store, and is
re-signed (and its cached profiles are invalidated, because profile keys
embed the fingerprints of every table on the candidate's join path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.fingerprint import (
    config_fingerprint,
    profile_key,
    registry_fingerprint,
    shard_of,
    table_fingerprint,
)
from repro.catalog.store import CatalogStore, CatalogStoreError
from repro.dataframe.table import Table
from repro.discovery.index import ColumnRef, DiscoveryIndex
from repro.discovery.lsh import LshIndex
from repro.utils.lru import LruDict


@dataclass
class CatalogDiff:
    """Outcome of one :meth:`Catalog.refresh` pass."""

    added: list = field(default_factory=list)
    updated: list = field(default_factory=list)
    removed: list = field(default_factory=list)
    unchanged: list = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.added or self.updated or self.removed)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} added, ~{len(self.updated)} updated, "
            f"-{len(self.removed)} removed, ={len(self.unchanged)} unchanged"
        )


class Catalog:
    """Persistent discovery catalog over a table corpus.

    Parameters mirror :class:`DiscoveryIndex` (with ``min_containment``
    defaulting to the pipeline's cold-path value, so a default-constructed
    catalog reproduces ``prepare_candidates``' default candidate sets);
    ``store`` (optional) attaches on-disk persistence.  When the store already holds a saved
    catalog, the construction parameters must match its recorded config —
    persisted signatures are only valid for the config that produced them.
    Use :meth:`load` to adopt a saved catalog's config wholesale.
    """

    def __init__(
        self,
        store: CatalogStore = None,
        num_perm: int = 64,
        bands: int = 16,
        min_containment: float = 0.3,
        max_distinct: int = 5000,
        seed: int = 0,
        hash_version: int = 1,
    ):
        self._index = DiscoveryIndex(
            num_perm=num_perm,
            bands=bands,
            min_containment=min_containment,
            max_distinct=max_distinct,
            seed=seed,
            hash_version=hash_version,
        )
        self.store = store
        # Objects on disk are addressed by (artifact config, table content)
        # so artifacts computed under a different num_perm/seed/max_distinct
        # can never be reused by mistake — even when a crash left objects
        # behind without a manifest to guard them.  bands/min_containment
        # only affect querying, not the stored artifacts.
        artifact_params = {
            "num_perm": num_perm,
            "seed": seed,
            "max_distinct": max_distinct,
        }
        # hash_version changes every signature, so it addresses artifacts
        # too — but only when non-default, keeping every existing v1
        # store's object fingerprints (and golden bytes) unchanged.
        if hash_version != 1:
            artifact_params["hash_version"] = hash_version
        self._artifact_config = config_fingerprint(artifact_params)
        self._fingerprints = {}
        # Snapshot recorded by the last save(); lets refresh() distinguish
        # "new table" from "known table being re-hydrated in this process".
        self._persisted = {}
        # Signature matrix from the last save (read lazily): hydrates the
        # LSH index without opening per-table objects.
        self._snapshot = None
        self._snapshot_read = False
        # Names removed since the last save — lets callers with implicit
        # persistence (the pipeline's auto-save) tell additive state from
        # state that would shrink the saved catalog.
        self._removed_since_save = set()
        # Fingerprints of removed tables (until the next save): a table
        # re-added with identical content can still hydrate from the
        # snapshot instead of re-reading its per-column object.
        self._removed_fingerprints = {}
        # Instrumentation: columns signed from scratch vs hydrated from disk.
        self.computed_columns = 0
        self.loaded_columns = 0
        #: Monotone count of structural mutations (every add/remove).
        #: Cheap change detection for caches layered above the catalog:
        #: equal counts on one instance imply an unchanged table set.
        self.mutations = 0
        if store is not None:
            self._index.set_entry_loader(self._load_entries)
            manifest = store.read_manifest()
            if manifest is not None:
                if manifest["config"] != self.config:
                    raise CatalogStoreError(
                        f"catalog at {store.root!r} was built with config "
                        f"{manifest['config']!r}, which differs from "
                        f"{self.config!r}; use Catalog.load() to adopt the "
                        "stored config"
                    )
                self._persisted = dict(manifest["tables"])

    # ------------------------------------------------------------------
    @property
    def index(self) -> DiscoveryIndex:
        """The live discovery index (hydrated, ready for ``joinable``)."""
        return self._index

    @property
    def config(self) -> dict:
        return self._index.config

    @property
    def tables(self) -> dict:
        """Cataloged tables by name."""
        return self._index.tables

    @property
    def fingerprints(self) -> dict:
        """Current name → fingerprint map."""
        return dict(self._fingerprints)

    @property
    def removed_since_save(self) -> frozenset:
        """Table names removed since the last save — a save now would
        shrink the persisted catalog by exactly these."""
        return frozenset(self._removed_since_save)

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def _object_id(self, fingerprint: str) -> str:
        """On-disk object address: artifact config + table content."""
        return f"{self._artifact_config}-{fingerprint}"

    def add(self, table: Table, fingerprint: str = None) -> str:
        """Catalog a new table; returns its fingerprint.

        If the attached store already holds artifacts for this exact
        content (same fingerprint, same artifact config), they are loaded
        instead of recomputed; otherwise the columns are signed here and
        persisted.  ``fingerprint`` may be supplied by callers that
        already computed it (fingerprinting is the expensive step on
        large tables).
        """
        if fingerprint is None:
            fingerprint = table_fingerprint(table)
        object_id = self._object_id(fingerprint)
        # Fastest path: the last save()'s snapshot covers this exact
        # content (directly, or via a remove+re-add cycle of identical
        # content) — hydrate the LSH index from packed signatures and
        # defer value-set loading until a query actually collides with it.
        known = self._persisted.get(table.name) or self._removed_fingerprints.get(
            table.name
        )
        if self.store is not None and known == fingerprint:
            signatures = self._snapshot_signatures(table.name, fingerprint)
            if (
                signatures is not None
                and set(table.column_names) <= set(signatures)
                # The lazy entry loader will need the object later; if it
                # vanished (external deletion, stale snapshot), fall through
                # to the eager path, which recomputes and re-persists.
                and self.store.has_object(object_id)
            ):
                # Adopting an existing object: stamp this catalog's
                # writer lease on it so a racing gc (whose live set
                # predates this adoption) leaves it alone until save().
                self.store.claim_object(object_id)
                self._index.add_table_hydrated(table, signatures)
                self._fingerprints[table.name] = fingerprint
                self._removed_since_save.discard(table.name)
                self._removed_fingerprints.pop(table.name, None)
                self.loaded_columns += len(table.column_names)
                self.mutations += 1
                return fingerprint
        entries = None
        if self.store is not None and self.store.has_object(object_id):
            try:
                _meta, entries = self.store.read_object(object_id)
                self.store.claim_object(object_id)
                self.loaded_columns += len(entries)
            except CatalogStoreError:
                # Corrupt object: recompute from the live table below and
                # overwrite the damaged file.
                entries = None
        if entries is None:
            entries = self._compute_and_persist(table, object_id)
        self._index.add_table(table, entries=entries)
        self._fingerprints[table.name] = fingerprint
        self._removed_since_save.discard(table.name)
        self._removed_fingerprints.pop(table.name, None)
        self.mutations += 1
        return fingerprint

    def _compute_and_persist(self, table: Table, object_id: str) -> dict:
        """Sign every column of ``table`` and (with a store) persist the
        object under ``object_id``."""
        entries = {
            column: self._index.compute_column_entry(table, column)
            for column in table.column_names
        }
        self.computed_columns += len(entries)
        if self.store is not None:
            meta = {
                "name": table.name,
                "source": table.source,
                "num_rows": table.num_rows,
                "column_names": table.column_names,
                # Recorded so Table-I corpus reports can run from disk
                # artifacts alone (see corpus_stats) without the corpus.
                "size_bytes": table.estimated_byte_size(),
            }
            # Freshly derived content may be healing a corrupt file with
            # the same address, so force the write.
            self.store.write_object(object_id, meta, entries, overwrite=True)
        return entries

    def _snapshot_signatures(self, table_name: str, fingerprint: str):
        """Signatures for one table from the saved snapshot — only if the
        snapshot row was written for exactly this content (a crash between
        the manifest and snapshot writes can leave the two out of sync)."""
        if not self._snapshot_read:
            self._snapshot = self.store.read_snapshot() or {}
            self._snapshot_read = True
        recorded = self._snapshot.get(table_name)
        if recorded is None or recorded[0] != fingerprint:
            return None
        return recorded[1]

    def _load_entries(self, table_name: str) -> dict:
        """Entry loader for lazily-hydrated tables (installed on the
        index): reads the table's persisted object on first touch.

        If the object vanished between hydration and first touch (a
        concurrent ``gc`` from another process) or is corrupt, the
        entries are re-derived from the live Table — the fingerprint is
        unchanged, so recomputation reproduces the exact artifacts — and
        re-persisted.
        """
        fingerprint = self._fingerprints.get(table_name)
        if fingerprint is None:
            raise KeyError(f"table {table_name!r} not cataloged")
        object_id = self._object_id(fingerprint)
        try:
            _meta, entries = self.store.read_object(object_id)
            return entries
        except (KeyError, CatalogStoreError):
            table = self._index.get_table(table_name)
            if table is None:
                raise
            return self._compute_and_persist(table, object_id)

    def remove(self, table_name: str) -> None:
        """Drop a table from the catalog (incremental LSH removal).

        The persisted object stays on disk until :meth:`gc` — removal
        must stay cheap, and the content may come back.
        """
        removed_fingerprint = self._fingerprints[table_name]
        self._index.remove_table(table_name)
        del self._fingerprints[table_name]
        # Forget the saved snapshot's claim on this name too, so a later
        # refresh() doesn't report the removal a second time (or call a
        # re-added table "unchanged") — but remember the fingerprint so an
        # identical re-add can still use the snapshot fast path.
        self._persisted.pop(table_name, None)
        self._removed_since_save.add(table_name)
        self._removed_fingerprints[table_name] = removed_fingerprint
        self.mutations += 1

    def update(self, table: Table, fingerprint: str = None) -> bool:
        """Re-catalog a table if its content changed.

        Returns ``True`` when the table was stale and re-signed, ``False``
        when the fingerprint matched and nothing was recomputed.
        ``fingerprint`` may be supplied by callers that already digested
        the table's content (the background refresher's scan) to skip
        the second pass over its cells.
        """
        if table.name not in self._fingerprints:
            raise KeyError(f"table {table.name!r} not cataloged; use add()")
        if table is self._index.get_table(table.name):
            # The very object already indexed: Tables are immutable by
            # library convention, so skip the full-content fingerprint.
            return False
        if fingerprint is None:
            fingerprint = table_fingerprint(table)
        if fingerprint == self._fingerprints[table.name]:
            self._index.rebind_table(table)
            return False
        self.remove(table.name)
        self.add(table, fingerprint=fingerprint)
        return True

    def is_stale(self, table: Table) -> bool:
        """True when ``table``'s content differs from the version this
        catalog knows — live in this process or recorded by the last
        save (or it was never cataloged)."""
        recorded = self._fingerprints.get(table.name) or self._persisted.get(
            table.name
        )
        return recorded is None or recorded != table_fingerprint(table)

    def refresh(self, corpus, fingerprints: dict = None) -> CatalogDiff:
        """Synchronize the catalog with ``corpus`` (dict or iterable of
        Tables): add new tables, re-sign stale ones, drop missing ones.

        ``fingerprints`` (``{name: content digest}``) lets a caller that
        already fingerprinted the corpus — the background refresher's
        change scan — skip the second pass over every table's cells;
        entries must be the tables' true content digests.

        The diff is relative to what the catalog knew before — including
        the saved manifest, so re-opening a catalog in a fresh process and
        refreshing against an unchanged corpus reports every table as
        ``unchanged`` (hydrated from disk), not ``added``.

        Refreshing against the very same Table objects the catalog
        already holds (the common warm-start shape: ``Catalog.load(root,
        corpus)`` followed by ``prepare_candidates(..., catalog=...)``)
        is detected by identity and skips re-fingerprinting the corpus.
        Consequently, mutating a cataloged Table's cells in place is not
        detected — like the rest of the library (materialization caches
        key by object identity too), the catalog treats Tables as
        immutable; represent changed content as a new Table object.
        """
        values = corpus.values() if isinstance(corpus, dict) else corpus
        # Key by Table.name, never by the caller's dict keys: every
        # internal map is name-keyed, and an aliased key would otherwise
        # make the diff logic remove/re-sign the same table forever.
        # Distinct tables sharing a name must fail loudly (the cold
        # DiscoveryIndex.build path raises too), not silently collapse.
        tables = {}
        for table in values:
            if table.name in tables and tables[table.name] is not table:
                raise ValueError(
                    f"duplicate table name {table.name!r} in corpus"
                )
            tables[table.name] = table
        current = self._index.tables
        if (
            set(tables) == set(self._fingerprints)
            and set(self._persisted) <= set(tables)
            and all(tables[name] is current.get(name) for name in tables)
        ):
            return CatalogDiff(unchanged=sorted(tables))
        diff = CatalogDiff()
        known = set(self._fingerprints) | set(self._persisted)
        for name in sorted(known - set(tables)):
            if name in self._fingerprints:
                self.remove(name)
            else:
                # Known only from the manifest (never hydrated here):
                # still an unsaved removal — a save now would drop it from
                # disk — and its fingerprint stays usable for an identical
                # re-add's snapshot fast path.
                previous = self._persisted.pop(name, None)
                self._removed_since_save.add(name)
                if previous is not None:
                    self._removed_fingerprints[name] = previous
                self.mutations += 1
            diff.removed.append(name)
        known_fp = fingerprints or {}
        for name in sorted(tables):
            table = tables[name]
            if name in self._fingerprints:
                if self.update(table, fingerprint=known_fp.get(name)):
                    diff.updated.append(name)
                else:
                    diff.unchanged.append(name)
                continue
            previous = self._persisted.get(name)
            fingerprint = self.add(table, fingerprint=known_fp.get(name))
            if previous is None:
                diff.added.append(name)
            elif previous == fingerprint:
                diff.unchanged.append(name)
            else:
                diff.updated.append(name)
        return diff

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        """Write the manifest snapshot (objects are persisted as they are
        computed; this records which of them form the current catalog).

        Tables known only from the previous save (a loaded catalog that
        was never refreshed against a corpus holds no live Table objects)
        are carried forward rather than truncated — saving must never
        shrink the catalog below what it still references; only
        :meth:`remove`/:meth:`refresh` drop tables.

        The whole transition runs under the store's root advisory file
        lock and *merges* with what is on disk: tables saved there by a
        concurrent writer (another process indexing a different slice of
        the corpus) that this catalog has never seen — and never removed
        — are carried forward, manifest and snapshot rows alike, so
        concurrent ``catalog build``/``update`` runs against one store
        compose instead of overwriting each other.  The merge respects
        peer removals symmetrically: a carried-forward table (known only
        from an earlier save, not hydrated here) that a peer's save has
        since dropped from the on-disk manifest stays dropped — its
        object may already be gc'd, and resurrecting the name would
        leave a manifest pointing at nothing.  Tables live in *this*
        process are always saved (this catalog observed them in its
        corpus).  A store whose on-disk config differs is a genuine
        conflict and raises.
        """
        if self.store is None:
            raise CatalogStoreError("catalog has no store attached")
        with self.store.root_lock():
            on_disk = self.store.read_manifest()
            foreign = {}
            persisted = dict(self._persisted)
            if on_disk is not None:
                if on_disk["config"] != self.config:
                    raise CatalogStoreError(
                        f"catalog at {self.store.root!r} now holds config "
                        f"{on_disk['config']!r}, which differs from this "
                        f"catalog's {self.config!r}; refusing to merge the "
                        "save"
                    )
                known = (
                    set(self._fingerprints)
                    | set(self._persisted)
                    | self._removed_since_save
                )
                foreign = {
                    name: fingerprint
                    for name, fingerprint in on_disk["tables"].items()
                    if name not in known
                }
                # Honor peer removals: only carry forward names the
                # on-disk manifest still lists (or that are live here).
                persisted = {
                    name: fingerprint
                    for name, fingerprint in persisted.items()
                    if name in on_disk["tables"] or name in self._fingerprints
                }
            combined = {**foreign, **persisted, **self._fingerprints}
            tables = self._index.tables
            disk_snapshot = None
            rows = []
            for name in sorted(combined):
                if name in self._fingerprints:
                    for column in tables[name].column_names:
                        ref = ColumnRef(name, column)
                        rows.append(
                            (
                                name,
                                self._fingerprints[name],
                                column,
                                self._index.signature_of(ref),
                            )
                        )
                else:
                    # Not hydrated in this process (carried forward from
                    # the previous save, or saved by a concurrent
                    # writer): keep the on-disk snapshot's rows.  They
                    # are fingerprint-checked, so stale rows drop out
                    # and the objects still cover the table.
                    if disk_snapshot is None:
                        disk_snapshot = self.store.read_snapshot() or {}
                    recorded = disk_snapshot.get(name)
                    if recorded is not None and recorded[0] == combined[name]:
                        for column, signature in recorded[1].items():
                            rows.append(
                                (name, combined[name], column, signature)
                            )
            # Snapshot before manifest: rows are fingerprint-checked at
            # read time, so either crash-ordering leaves a consistent
            # store.
            self.store.write_snapshot(rows)
            self.store.write_manifest(self.config, combined)
        # The manifest now references everything this catalog wrote or
        # adopted; ownership transfers from the writer lease to the
        # manifest, so the lease can be returned.
        self.store.release_writer_lease()
        self._persisted = combined
        self._removed_since_save = set()
        self._removed_fingerprints = {}
        self._snapshot_read = False
        self._snapshot = None

    def gc(self) -> int:
        """Delete stored objects no cataloged table references.

        "Referenced" means live in this process *or* recorded by the
        on-disk manifest — a freshly loaded catalog that was never
        refreshed, and unsaved removals (an in-memory refresh against a
        filtered corpus), must not reclaim objects the saved manifest
        still points at.
        """
        if self.store is None:
            return 0

        def live_now():
            # Re-read the manifest *at check time*: a peer's save() that
            # landed after this gc's initial scan re-animates its objects.
            manifest = self.store.read_manifest() or {"tables": {}}
            return {
                self._object_id(fingerprint)
                for fingerprint in (
                    *self._fingerprints.values(),
                    *self._persisted.values(),
                    *manifest["tables"].values(),
                )
            }

        return self.store.gc(live_now(), live_check=live_now)

    def verify(self) -> dict:
        """Integrity check of the persisted catalog.

        Runs the store's deep :meth:`~CatalogStore.verify` (every object
        decodes, every shard manifest entry has its file) and
        additionally checks that every table the root manifest references
        still has a readable object — the invariant concurrent writers
        and crash recovery must preserve.  Returns the store report with
        a ``"tables"`` count added; an intact catalog reports no
        problems."""
        if self.store is None:
            raise CatalogStoreError("catalog has no store attached")
        report = self.store.verify()
        manifest = self.store.read_manifest() or {"tables": {}}
        for name, fingerprint in sorted(manifest["tables"].items()):
            object_id = self._object_id(fingerprint)
            try:
                self.store.read_object(object_id)
            except (KeyError, CatalogStoreError) as error:
                report["problems"].append(
                    f"table {name!r}: object {object_id!r} unreadable: {error}"
                )
        report["tables"] = len(manifest["tables"])
        return report

    @classmethod
    def load(cls, root, corpus=None) -> "Catalog":
        """Open a saved catalog, adopting its stored config.

        With ``corpus`` given, the catalog is hydrated against it via
        :meth:`refresh` — unchanged tables load their artifacts from disk,
        stale or new ones are (re-)signed.
        """
        store = root if isinstance(root, CatalogStore) else CatalogStore(root)
        manifest = store.read_manifest()
        if manifest is None:
            raise CatalogStoreError(f"no catalog manifest at {store.root!r}")
        catalog = cls(store=store, **manifest["config"])
        if corpus is not None:
            catalog.refresh(corpus)
        return catalog

    @classmethod
    def open(cls, root, corpus=None, **config) -> "Catalog":
        """Load the catalog at ``root`` if one exists, else create it.

        ``config`` applies only on creation; an existing catalog keeps its
        stored config, and a :class:`UserWarning` is emitted for any
        requested value the stored config overrides.  ``corpus`` triggers
        a :meth:`refresh` either way.
        """
        store = root if isinstance(root, CatalogStore) else CatalogStore(root)
        if store.exists():
            catalog = cls.load(store, corpus=corpus)
            ignored = {
                key: (value, catalog.config[key])
                for key, value in config.items()
                if catalog.config.get(key) != value
            }
            if ignored:
                import warnings

                warnings.warn(
                    f"catalog at {store.root!r} already exists; keeping its "
                    f"stored config (ignored requested values: {ignored})",
                    stacklevel=2,
                )
            return catalog
        catalog = cls(store=store, **config)
        if corpus is not None:
            catalog.refresh(corpus)
        return catalog

    # ------------------------------------------------------------------
    # Profile vectors
    # ------------------------------------------------------------------
    def profile_cache(
        self, base: Table, registry, sample_size: int = 100, seed: int = 0
    ) -> "ProfileCache":
        """A profile-vector cache scoped to one base table.

        Pass the result as ``cache=`` to
        :func:`repro.discovery.candidates.profile_candidates`.
        """
        return ProfileCache(
            base_fingerprint=table_fingerprint(base),
            table_fingerprints=self.fingerprints,
            # The registry fingerprint, not the names: identically-named
            # registries with different hyperparameters (dim, bins, seeds)
            # must never share cached vectors.
            registry_names=[registry_fingerprint(registry)],
            sample_size=sample_size,
            seed=seed,
            store=self.store,
        )

    def joinable_count(self, table) -> int:
        """Table-I '#Joinable Columns' for one table.

        Pass a live :class:`Table` to query with freshly computed
        signatures, or the *name* of a table hydrated in this catalog's
        live index to count from stored entries instead (no raw value
        access).  Names require a hydrated index — a catalog loaded
        without a corpus raises ``KeyError``; use :meth:`corpus_stats`
        for store-only reporting.
        """
        return self._index.joinable_count(table)

    def evict_profiles(self, budget_bytes: int):
        """Evict least-recently-used cached profile groups until the
        profile section fits ``budget_bytes``; returns
        ``(evicted_groups, freed_bytes)``."""
        if self.store is None:
            return (0, 0)
        return self.store.evict_profiles(budget_bytes)

    def _stats_batches(self, names, combined, batch_tables):
        """Table names grouped for the streaming stats passes.

        ``batch_tables=None`` keeps the legacy shape (one batch holding
        everything); otherwise names are grouped by the on-disk shard of
        their object (so each batch reads one directory) and chunked to
        at most ``batch_tables`` tables.
        """
        if batch_tables is None:
            return [list(names)]
        if batch_tables < 1:
            raise ValueError(f"batch_tables must be >= 1, got {batch_tables}")
        by_shard = {}
        for name in names:
            shard = shard_of(self._object_id(combined[name]))
            by_shard.setdefault(shard, []).append(name)
        batches = []
        for shard in sorted(by_shard):
            group = by_shard[shard]
            for start in range(0, len(group), batch_tables):
                batches.append(group[start : start + batch_tables])
        return batches

    def _stats_entries(self, name, fingerprint, size_sample, unsized=None):
        """Entries (+ recorded size) of one table for a stats pass.

        Reads the persisted object; a missing or corrupt object heals by
        recomputation when a live table is attached and raises otherwise.
        ``unsized`` (a list, or ``None`` when sizes are not being
        collected) accumulates tables whose objects predate size
        recording.
        """
        object_id = self._object_id(fingerprint)
        live = self._index.get_table(name) if name in self._fingerprints else None
        try:
            meta, entries = self.store.read_object(object_id)
            size = meta.get("size_bytes")
            if size is None:
                # Object written before sizes were recorded (a
                # pre-layout-v2 store): estimate live if possible,
                # otherwise count the table as unsized and warn in the
                # caller — never silently under-report.
                if live is not None:
                    size = live.estimated_byte_size(size_sample)
                else:
                    size = 0
                    if unsized is not None:
                        unsized.append(name)
        except (KeyError, CatalogStoreError):
            if live is None:
                raise CatalogStoreError(
                    f"corpus stats need catalog object {object_id!r} for "
                    f"table {name!r}, which is missing or corrupt, and no "
                    "live table is attached to recompute it"
                ) from None
            entries = self._compute_and_persist(live, object_id)
            size = live.estimated_byte_size(size_sample)
        return entries, size

    def corpus_stats(
        self, size_sample: int = 1000, batch_tables: int = 256
    ) -> dict:
        """Table-I corpus characteristics served from disk artifacts.

        Runs entirely against the store — persisted object metadata for
        table/column/size counts, stored signatures + normalized value
        sets for the joinable count — so no raw corpus is loaded and no
        column is ever re-signed.  The joinable pass streams: entries are
        read in per-shard batches of at most ``batch_tables`` tables,
        with a same-sized LRU of decoded objects for cross-batch
        containment checks, so peak memory is bounded by the batch size
        instead of the catalog size (only the compact LSH signature
        index spans the whole catalog).  ``batch_tables=None`` restores
        the previous hold-everything behavior; both paths return
        identical reports.  Tables live in this process fall back to
        their in-memory artifacts; a missing or corrupt object heals by
        recomputation when its live table is attached and raises
        :class:`CatalogStoreError` otherwise (never a silently wrong
        report).

        Sizes of purely-persisted tables were estimated at signing time
        (with the default sample); ``size_sample`` only governs live
        fallbacks.  Matches :func:`repro.data.corpus_characteristics`
        exactly whenever column values are already normalized (no
        leading/trailing whitespace or uppercase — true of the synthetic
        corpora) and no column was down-sampled at indexing time.
        """
        if self.store is None:
            raise CatalogStoreError("catalog has no store attached")
        combined = {**self._persisted, **self._fingerprints}
        config = self.config
        lsh = LshIndex(num_perm=config["num_perm"], bands=config["bands"])
        threshold = config["min_containment"]
        batches = self._stats_batches(sorted(combined), combined, batch_tables)
        keep_resident = batch_tables is None
        resident = {}
        # The pass-2 entry cache is seeded during pass 1, so a catalog
        # that fits one batch is decoded exactly once (matching the old
        # hold-everything pass), and larger catalogs start pass 2 with
        # the tail batch warm.
        cache = LruDict(capacity=batch_tables or 1)
        n_columns = 0
        size_bytes = 0
        unsized = []
        # Pass 1 — metadata and LSH signatures, one batch resident at a
        # time (signatures are compact; the bulky value sets are dropped
        # with each batch unless the legacy hold-everything mode is on).
        for batch in batches:
            for name in batch:
                entries, size = self._stats_entries(
                    name, combined[name], size_sample, unsized
                )
                if keep_resident:
                    resident[name] = entries
                else:
                    cache.put(name, entries)
                n_columns += len(entries)
                size_bytes += int(size)
                refs = [ColumnRef(name, column) for column in entries]
                if refs:
                    lsh.insert_many(
                        refs,
                        np.stack(
                            [entries[ref.column].signature for ref in refs]
                        ),
                    )
        if unsized:
            import warnings

            warnings.warn(
                f"{len(unsized)} catalog object(s) predate size recording; "
                "size_bytes under-reports their tables — refresh against "
                "the corpus (or re-sign via 'catalog update') to record "
                "sizes",
                stacklevel=2,
            )
        # Pass 2 — joinable verification.  Membership is order-
        # independent (a column counts iff *some* query column verifies
        # it), so streaming batch order yields the same set as the
        # hold-everything pass.  All reads go through one LRU, so a
        # table decoded as a cross-batch candidate is not re-decoded
        # when its own batch arrives (and vice versa); peak memory stays
        # bounded by the batch plus the same-sized cache.
        def load_entries(name):
            if keep_resident:
                return resident[name]
            entries = cache.get(name)
            if entries is None:
                entries = self._stats_entries(
                    name, combined[name], size_sample
                )[0]
                cache.put(name, entries)
            return entries

        joinable = set()
        for batch in batches:
            batch_entries = {name: load_entries(name) for name in batch}
            for name in batch:
                for entry in batch_entries[name].values():
                    query = entry.normalized
                    if not query:
                        continue
                    for ref in lsh.query(entry.signature):
                        # Once a candidate column is counted it stays
                        # counted, so skip re-verifying it for later query
                        # columns — this keeps the verification volume
                        # near-linear on join-dense corpora.
                        if ref.table == name or ref in joinable:
                            continue
                        if ref.table in batch_entries:
                            candidate = batch_entries[ref.table][ref.column]
                        else:
                            candidate = load_entries(ref.table)[ref.column]
                        containment = len(query & candidate.normalized) / len(
                            query
                        )
                        if containment >= threshold:
                            joinable.add(ref)
        return {
            "tables": len(combined),
            "columns": n_columns,
            "joinable_columns": len(joinable),
            "size_bytes": size_bytes,
        }

    def stats(self) -> dict:
        """In-memory + on-disk statistics."""
        out = {
            "tables": len(self._fingerprints),
            "indexed_columns": self._index.num_indexed_columns,
            "computed_columns": self.computed_columns,
            "loaded_columns": self.loaded_columns,
            "config": self.config,
        }
        if self.store is not None:
            out["store"] = self.store.stats()
        return out


class ProfileCache:
    """Cached profile vectors for candidates of one base table.

    Keys embed the fingerprints of the base table and of every table on a
    candidate's join path, so any upstream content change invalidates the
    entry automatically.  Candidates whose path tables are unknown to the
    catalog are simply not cached.
    """

    def __init__(
        self,
        base_fingerprint: str,
        table_fingerprints: dict,
        registry_names,
        sample_size: int,
        seed: int,
        store: CatalogStore = None,
    ):
        self.base_fingerprint = base_fingerprint
        self._table_fingerprints = dict(table_fingerprints)
        self._registry_names = list(registry_names)
        self._sample_size = sample_size
        self._seed = seed
        self.store = store
        self._entries = store.read_profiles(base_fingerprint) if store else {}
        self._dirty = False
        self._last_key = None
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, candidate):
        aug = candidate.aug
        path = getattr(aug, "path", None)
        if path is not None:
            path_tables = [step.right_table for step in path.steps]
        else:
            path_tables = [aug.final_table]
        fingerprints = []
        for name in path_tables:
            fingerprint = self._table_fingerprints.get(name)
            if fingerprint is None:
                return None
            fingerprints.append(fingerprint)
        return profile_key(
            self.base_fingerprint,
            candidate.aug_id,
            fingerprints,
            self._registry_names,
            self._sample_size,
            self._seed,
        )

    def _candidate_key(self, candidate):
        """Key for ``candidate``, reusing the last computation — the
        get-miss-then-put sequence in ``profile_candidates`` would
        otherwise hash every join-path fingerprint twice per candidate."""
        if self._last_key is not None and self._last_key[0] is candidate:
            return self._last_key[1]
        key = self._key(candidate)
        self._last_key = (candidate, key)
        return key

    def get(self, candidate):
        """Cached vector for ``candidate``, or ``None`` on a miss."""
        key = self._candidate_key(candidate)
        vector = self._entries.get(key) if key is not None else None
        if vector is None:
            self.misses += 1
            return None
        self.hits += 1
        return vector.copy()

    def put(self, candidate, vector) -> None:
        key = self._candidate_key(candidate)
        if key is None:
            return
        self._entries[key] = vector.copy()
        self._dirty = True

    def flush(self) -> None:
        """Persist new entries (no-op without a store or new vectors).

        A failed write degrades to a warning: cached profiles are a pure
        optimization, and flush runs in ``finally`` blocks where raising
        would mask the original exception.
        """
        if self.store is not None and self._dirty:
            try:
                self.store.write_profiles(self.base_fingerprint, self._entries)
                self._dirty = False
            except OSError as error:
                import warnings

                warnings.warn(
                    f"could not persist profile cache: {error}", stacklevel=2
                )
