"""Background catalog maintenance: :class:`CatalogRefresher`.

Metam's goal-oriented loop assumes discovery artifacts (signatures,
profiles, join index) reflect the current corpus.  Without background
maintenance any table change forces a synchronous re-fingerprint on the
query path — exactly the stall a serving engine cannot afford.  The
refresher moves that work off the request path:

- a **watch loop** (a daemon thread, or explicit :meth:`refresh_now`
  calls) polls a *corpus source* and detects change by identity, then
  fingerprint: Tables are immutable by library convention, so a table
  object already published is known-unchanged without touching its
  cells, and only genuinely new objects are fingerprinted;
- a **changed cycle** re-signs exactly the changed or new tables into
  the shared :class:`~repro.catalog.store.CatalogStore` (warm-starting
  everything else from disk), drops removed ones (tombstone-safe, via
  the store's deletion protocol), saves, and publishes a fresh
  immutable :class:`CatalogSnapshot`;
- an **unchanged cycle** republishes the previous snapshot object and
  touches nothing on disk — manifest and packed snapshot stay
  byte-identical, so caches keyed on snapshot identity or corpus
  content are never spuriously invalidated.

Readers never block on refresh: :meth:`CatalogRefresher.current` is a
plain attribute read, and the serving engine swaps the published
snapshot in atomically *between* requests.  ``staleness_budget`` bounds
how old a served snapshot may be — :meth:`ensure_fresh` returns the
current snapshot when it was verified within the budget and otherwise
runs (or waits out) one synchronous cycle.

Each published snapshot owns its own :class:`~repro.catalog.Catalog`
instance, hydrated from the shared store; the refresher never mutates a
catalog it has published, so in-flight discovery runs keep a consistent
view for as long as they hold their snapshot.
"""

from __future__ import annotations

import threading
import time
from types import MappingProxyType

from repro.catalog.catalog import Catalog
from repro.catalog.fingerprint import corpus_fingerprint, table_fingerprint
from repro.catalog.store import CatalogStore
from repro.dataframe.table import normalize_corpus
from repro.obs.logcfg import get_logger

_log = get_logger(__name__)

#: Cycle-duration buckets: a quiet cycle is sub-millisecond (identity
#: scan only); a full re-sign of a large corpus runs into the seconds.
CYCLE_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def register_refresher_metrics(registry):
    """Get-or-create the refresher's metric families on ``registry``
    (shared with the engine's pre-registration pass)."""
    return {
        "cycles": registry.counter(
            "repro_refresher_cycles_total",
            "Refresh cycles completed, by whether the corpus changed.",
            labels=("changed",),
        ),
        "cycle_seconds": registry.histogram(
            "repro_refresher_cycle_seconds",
            "Wall time of one scan/refresh/publish cycle.",
            buckets=CYCLE_BUCKETS,
        ),
        "tables_resigned": registry.counter(
            "repro_refresher_tables_resigned_total",
            "Tables re-signed (added or updated) by changed cycles.",
        ),
        "errors": registry.counter(
            "repro_refresher_errors_total",
            "Cycles that failed (the last good snapshot keeps serving).",
        ),
    }


class CatalogSnapshot:
    """One immutable published view of the corpus + its catalog.

    Attributes
    ----------
    catalog:
        A hydrated :class:`~repro.catalog.Catalog` consistent with
        ``corpus``.  The refresher never mutates it after publication.
    corpus:
        Read-only ``{name: Table}`` mapping the catalog was synced to.
    fingerprints:
        Read-only ``{name: content fingerprint}`` of every table.
    epoch:
        Monotone publication counter (1 for the first snapshot).  Equal
        epochs imply the identical snapshot object.
    diff:
        The :class:`~repro.catalog.CatalogDiff` of the cycle that built
        this snapshot.
    created_at:
        Wall-clock publication time.
    """

    __slots__ = (
        "catalog",
        "corpus",
        "fingerprints",
        "epoch",
        "diff",
        "created_at",
    )

    def __init__(self, catalog, corpus, fingerprints, epoch, diff):
        self.catalog = catalog
        self.corpus = MappingProxyType(dict(corpus))
        self.fingerprints = MappingProxyType(dict(fingerprints))
        self.epoch = epoch
        self.diff = diff
        self.created_at = time.time()

    def corpus_fingerprint(self) -> str:
        """Content digest of the whole snapshot corpus."""
        return corpus_fingerprint(self.fingerprints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CatalogSnapshot(epoch={self.epoch}, "
            f"tables={len(self.corpus)})"
        )


class CatalogRefresher:
    """Watches a corpus source and publishes fresh catalog snapshots.

    Parameters
    ----------
    source:
        The corpus to watch: a callable returning ``{name: Table}`` (or
        an iterable of Tables) — polled every cycle — or a static
        dict/iterable, wrapped into a constant callable.
    store:
        Optional store root (path or :class:`CatalogStore`).  With a
        store, changed cycles re-sign only changed tables (everything
        else warm-starts from disk) and persist the result, so restarts
        and concurrent processes share the work.  Without one, every
        changed cycle signs the full corpus in memory — fine for small
        corpora, documented as the trade-off.
    backend:
        Store backend name (``"local"``/``"segments"``) or
        :class:`~repro.catalog.backend.StoreBackend` instance, applied
        when ``store`` is a bare path; an existing root auto-detects
        its layout, so this matters only for fresh roots.
    interval:
        Poll period of the background thread (seconds).
    staleness_budget:
        Default bound for :meth:`ensure_fresh` (seconds); ``None``
        means callers accept whatever snapshot is current.
    on_cycle:
        Optional observer ``callback(snapshot, changed)`` invoked after
        every completed cycle (exceptions are swallowed — observers
        must not kill the maintenance loop).
    config:
        :class:`~repro.catalog.Catalog` constructor keywords, applied
        when the cycle has to create a catalog (an existing saved
        catalog keeps its stored config, exactly like ``Catalog.open``).
    """

    def __init__(
        self,
        source,
        store=None,
        interval: float = 1.0,
        staleness_budget: float = None,
        on_cycle=None,
        backend=None,
        **config,
    ):
        if callable(source):
            self._source = source
        else:
            static = source
            self._source = lambda: static
        if store is None or isinstance(store, CatalogStore):
            self.store = store
        else:
            self.store = CatalogStore(str(store), backend=backend)
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.staleness_budget = (
            float(staleness_budget) if staleness_budget is not None else None
        )
        self.on_cycle = on_cycle
        self._config = dict(config)
        self._snapshot = None
        self._checked_at = None  # monotonic scan-start of the last cycle
        self._refresh_lock = threading.Lock()  # one cycle at a time
        self._state_lock = threading.Lock()  # snapshot/clock publication
        self._thread = None
        self._stop = threading.Event()
        self.cycles = 0
        self.changed_cycles = 0
        self.errors = 0
        self.last_error = None
        #: Metric family handles (see :meth:`attach_metrics`).
        self.obs = None

    def attach_metrics(self, registry) -> "CatalogRefresher":
        """Record cycle durations, change counts, re-signed tables, and
        loop errors on ``registry``; a store is instrumented along with
        it.  Returns ``self``."""
        self.obs = register_refresher_metrics(registry)
        if self.store is not None:
            self.store.attach_metrics(registry)
        return self

    # ------------------------------------------------------------------
    # Reading (never blocks on refresh)
    # ------------------------------------------------------------------
    def current(self) -> CatalogSnapshot:
        """The latest published snapshot (``None`` before the first
        cycle).  A plain read — never waits for an in-flight cycle."""
        return self._snapshot

    def staleness(self) -> float:
        """Seconds since the current snapshot was last *verified* against
        the source (``inf`` before the first cycle).  Unchanged cycles
        refresh this clock without republishing, so a quiet corpus stays
        'fresh' for free."""
        with self._state_lock:
            checked = self._checked_at
        if checked is None:
            return float("inf")
        return time.monotonic() - checked

    def ensure_fresh(self, budget: float = None) -> CatalogSnapshot:
        """A snapshot no staler than ``budget`` seconds (default: the
        refresher's ``staleness_budget``).

        Returns the current snapshot immediately when it qualifies;
        otherwise runs one synchronous cycle (waiting out an in-flight
        background cycle first — the wait usually *is* the refresh).
        ``budget=None`` with no default accepts any published snapshot,
        only blocking when none exists yet.
        """
        budget = budget if budget is not None else self.staleness_budget
        snapshot = self.current()
        if snapshot is not None and (
            budget is None or self.staleness() <= budget
        ):
            return snapshot
        with self._refresh_lock:
            # Re-check: the cycle we queued behind may have done the work.
            snapshot = self.current()
            if snapshot is not None and (
                budget is None or self.staleness() <= budget
            ):
                return snapshot
            return self._cycle()

    # ------------------------------------------------------------------
    # Refreshing
    # ------------------------------------------------------------------
    def refresh_now(self) -> CatalogSnapshot:
        """Run one synchronous refresh cycle (serialized with the
        background thread) and return the resulting snapshot."""
        with self._refresh_lock:
            return self._cycle()

    def _scan_fingerprints(self, corpus: dict, previous) -> dict:
        """Content fingerprints of ``corpus``, reusing the previous
        snapshot's digests for identity-matched tables — the cheap part
        of the mtime/fingerprint scan (Tables are immutable, so an
        already-published object is known-unchanged without rereading
        its cells)."""
        fingerprints = {}
        for name, table in corpus.items():
            if previous is not None and previous.corpus.get(name) is table:
                fingerprints[name] = previous.fingerprints[name]
            else:
                fingerprints[name] = table_fingerprint(table)
        return fingerprints

    def _cycle(self) -> CatalogSnapshot:
        """One full scan/refresh/publish cycle (caller holds the
        refresh lock)."""
        started = time.monotonic()
        corpus = normalize_corpus(self._source())
        previous = self._snapshot
        fingerprints = self._scan_fingerprints(corpus, previous)
        if previous is not None and fingerprints == dict(previous.fingerprints):
            # Unchanged corpus: republish the very same snapshot object
            # and leave the store untouched (byte-identical manifest and
            # packed snapshot — no cache above us sees a change), just
            # refresh the staleness clock.
            with self._state_lock:
                self._checked_at = started
            self.cycles += 1
            if self.obs is not None:
                self.obs["cycles"].labels(changed="false").inc()
                self.obs["cycle_seconds"].observe(time.monotonic() - started)
            self._observe(previous, changed=False)
            return previous
        catalog = self._build_catalog(corpus, fingerprints)
        diff = catalog.refresh(corpus, fingerprints=fingerprints)
        if self.store is not None:
            catalog.save()
            if diff.removed:
                # Removed tables' objects are reclaimed through the
                # store's tombstone-first deletion protocol, so a
                # concurrent writer (or a crash here) can never leave a
                # half-deleted, unverifiable store.
                catalog.gc()
        snapshot = CatalogSnapshot(
            catalog=catalog,
            corpus=corpus,
            fingerprints=fingerprints,
            epoch=(previous.epoch + 1) if previous is not None else 1,
            diff=diff,
        )
        with self._state_lock:
            self._snapshot = snapshot
            self._checked_at = started
        self.cycles += 1
        self.changed_cycles += 1
        if self.obs is not None:
            self.obs["cycles"].labels(changed="true").inc()
            self.obs["cycle_seconds"].observe(time.monotonic() - started)
            resigned = len(diff.added) + len(diff.updated)
            if resigned:
                self.obs["tables_resigned"].inc(resigned)
        _log.debug(
            "refresh cycle published snapshot",
            epoch=snapshot.epoch,
            added=len(diff.added),
            updated=len(diff.updated),
            removed=len(diff.removed),
            seconds=round(time.monotonic() - started, 6),
        )
        self._observe(snapshot, changed=True)
        return snapshot

    def _build_catalog(self, corpus: dict, fingerprints: dict) -> Catalog:
        """A fresh catalog instance for one changed cycle.

        Store-backed: opened on the shared store, so unchanged tables
        hydrate from the packed snapshot and only changed content is
        re-signed.  The previous snapshot's catalog is never reused —
        published snapshots stay immutable.
        """
        if self.store is None:
            return Catalog(**self._config)
        if self.store.exists():
            return Catalog.load(self.store)
        return Catalog(store=self.store, **self._config)

    def _observe(self, snapshot, changed: bool) -> None:
        if self.on_cycle is None:
            return
        try:
            self.on_cycle(snapshot, changed)
        except Exception:  # observers must not kill maintenance
            pass

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> "CatalogRefresher":
        """Run the watch loop on a daemon thread; returns ``self``.

        The first cycle runs immediately (so ``current()`` is usable as
        soon as it completes); subsequent cycles poll every
        ``interval`` seconds.  Idempotent while running.
        """
        with self._state_lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            # A fresh stop event per start: a previous loop stopped with
            # ``wait=False`` may still be mid-cycle, and it must keep
            # observing its own (already set) event — clearing a shared
            # one would resurrect it next to the new thread.
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._loop,
                args=(self._stop,),
                name="repro-catalog-refresh",
                daemon=True,
            )
            self._thread.start()
        return self

    def _loop(self, stop: threading.Event) -> None:
        while True:
            try:
                with self._refresh_lock:
                    if stop.is_set():
                        return
                    self._cycle()
                self.last_error = None
            except Exception as error:
                # A failing source or store must degrade to serving the
                # last good snapshot, never kill the maintenance loop.
                self.errors += 1
                self.last_error = error
                if self.obs is not None:
                    self.obs["errors"].inc()
                _log.debug(
                    "refresh cycle failed; serving last good snapshot",
                    error=repr(error),
                    consecutive_errors=self.errors,
                )
            if stop.wait(self.interval):
                return

    def stop(self, wait: bool = True) -> None:
        """Stop the background thread (no-op when none is running)."""
        with self._state_lock:
            self._stop.set()
            thread, self._thread = self._thread, None
        if thread is not None and wait:
            thread.join()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "CatalogRefresher":
        return self.start()

    def __exit__(self, *exc_info):
        self.stop(wait=True)
        return False

    def stats(self) -> dict:
        snapshot = self.current()
        return {
            "running": self.running,
            "cycles": self.cycles,
            "changed_cycles": self.changed_cycles,
            "errors": self.errors,
            "last_error": repr(self.last_error) if self.last_error else None,
            "epoch": snapshot.epoch if snapshot is not None else 0,
            "tables": len(snapshot.corpus) if snapshot is not None else 0,
            "staleness": self.staleness(),
        }
