"""Sharded, size-budgeted on-disk store backing the persistent catalog.

Layout under the store root (layout version 2)::

    manifest.json               catalog config + {table name: fingerprint}
    objects/ab/<fp>.bin         per-table derived artifacts (distinct sets,
                                MinHash signatures, metadata), addressed by
                                the fingerprint of the source table and
                                sharded by a 2-hex-digit hash prefix
    objects/ab/manifest.json    per-shard object index ({fp: codec version})
    profiles/cd/<fp>.npz        cached profile vectors, grouped by the
                                fingerprint of the base (query) table
    profiles/cd/manifest.json   per-shard LRU bookkeeping ({fp: bytes, touched})
    snapshot.npz                packed signature matrix for warm starts

Sharding keeps every directory and every manifest bounded: a store with
10⁵ tables spreads them over 256 object shards, so directory scans,
manifest rewrites, and atomic-rename pressure stay flat as the catalog
grows.  Version-1 stores (flat ``objects/<fp>.json``) are read through
transparently and can be rewritten in place with :meth:`CatalogStore.migrate`.

Objects are immutable once written — a changed table gets a new
fingerprint and therefore a new object — so incremental updates never
rewrite artifacts of unchanged tables.  ``gc`` reclaims objects no live
table references.

Column entries are serialized by a versioned :class:`Codec`.  The current
default is the packed :class:`BinaryCodec` (struct-packed value sets +
raw little-endian signatures, several times smaller than JSON); the
legacy :class:`JsonCodec` stays registered so version-1 artifacts remain
readable forever.

Cached profile groups are the one store section that can grow without
bound (every new base table adds a group), so they carry an LRU eviction
policy: each group's byte size and last-touch time live in its shard
manifest, and ``profile_budget_bytes`` (enforced after every write, or on
demand via :meth:`evict_profiles` / ``repro catalog gc``) drops the
least-recently-used groups until the total fits the budget.

Mutations are concurrency-safe across threads *and* processes: every
shard-manifest update runs under a per-shard advisory file lock
(``<shard>/.lock``) and follows an append-then-atomic-rename protocol —
the delta (one or more records, appended as a single atomic ``O_APPEND``
write, so multi-record updates can never tear apart) is first appended
to ``<shard>/manifest.log``, then compacted into a freshly renamed
``manifest.json`` and the log cleared.  Readers replay the log over the
base manifest, so a writer that dies between append and rename leaves a
store that still reads back every completed update; the next writer
finishes the compaction.

Deletions are first-class and follow the same protocol through a
per-shard *tombstone log* (the ``tombstones`` section of the shard
manifest): :meth:`delete_object` first appends ``{del objects, set
tombstone}`` as one atomic record pair — the deletion intent is durable
before any file disappears, and either prefix of the pair still reads
consistent — then removes the data files under the shard lock, then
compacts.  A deleter killed mid-protocol leaves a
store that still verifies: the tombstone records what was meant to go,
and :meth:`sweep_tombstones` (run by :meth:`gc`, or any later writer's
compaction) finishes the removal.  :meth:`write_object` clears any
tombstone for its fingerprint in the same atomic append that records
the object, so concurrent ``build``/``update``/``gc`` processes can add
*and* remove in any interleaving without resurrecting deleted objects
or dropping live ones — the shard lock linearizes file + manifest
transitions per shard.  Tombstones are bookkeeping, not a read barrier:
compaction prunes entries older than ``tombstone_ttl`` so the section
stays bounded.

Data files stay safe: objects are content-addressed and immutable, and
every file lands via a unique temp file + rename (object file writes
and removals additionally run under the shard lock, so a delete can
never interleave between a concurrent writer's data file landing and
its manifest record).

All physical I/O goes through a pluggable :class:`StoreBackend`
(:mod:`repro.catalog.backend`): the default local-FS backend reproduces
the historical layout byte-for-byte, while the ``segments`` backend
packs the same virtual paths into immutable append-only segment files
whose sealed state can be replicated read-only to other roots.

Writers own their in-flight objects through time-bounded, fencing-token
**leases** (:mod:`repro.catalog.leases`): ``write_object`` stamps the
writer's token on the object record, and :meth:`CatalogStore.gc` skips
any unreferenced object whose token belongs to a live lease — then
re-checks liveness under the shard lock via the caller's ``live_check``
— closing the race where a gc scan reclaims an object a concurrent
builder wrote after the scan but before its save landed.
"""

from __future__ import annotations

import io
import json
import os
import re
import struct
import threading
import time
import zlib

import numpy as np

from repro.catalog.backend import CatalogStoreError, backend_for
from repro.catalog.fingerprint import shard_of
from repro.catalog.leases import DEFAULT_LEASE_TTL, LeaseManager
from repro.discovery.index import ColumnEntry

VERSION = 2
#: Layout versions this code can read (writes always use :data:`VERSION`).
READABLE_VERSIONS = frozenset({1, VERSION})

# Overridable clock for deterministic LRU tests.
_now = time.time

#: FileLock wait-time buckets: finer than the default latency buckets at
#: the small end — uncontended flock acquisition is tens of microseconds.
LOCK_WAIT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def register_store_metrics(registry):
    """Get-or-create the store's metric families on ``registry``.

    Shared by :meth:`CatalogStore.attach_metrics` and by the engine's
    pre-registration pass (so exposition covers the store families even
    before a store-backed catalog is attached)."""
    return {
        "reads": registry.counter(
            "repro_store_reads_total",
            "Artifacts read from the sharded store, by section.",
            labels=("section",),
        ),
        "writes": registry.counter(
            "repro_store_writes_total",
            "Artifacts written to the sharded store, by section.",
            labels=("section",),
        ),
        "read_bytes": registry.counter(
            "repro_store_read_bytes_total",
            "Bytes read from store artifacts, by section.",
            labels=("section",),
        ),
        "write_bytes": registry.counter(
            "repro_store_write_bytes_total",
            "Bytes written to store artifacts, by section.",
            labels=("section",),
        ),
        "lock_wait": registry.histogram(
            "repro_store_lock_wait_seconds",
            "Advisory FileLock acquisition wait time, by store section.",
            labels=("section",),
            buckets=LOCK_WAIT_BUCKETS,
        ),
        "manifest_replays": registry.counter(
            "repro_store_manifest_replays_total",
            "Shard manifest delta logs replayed by readers.",
        ),
        "tombstone_sweeps": registry.counter(
            "repro_store_tombstone_sweeps_total",
            "Tombstone sweep passes over the object shards.",
        ),
        "tombstones_swept": registry.counter(
            "repro_store_tombstones_swept_total",
            "Orphaned data files removed by tombstone sweeps.",
        ),
        "lease_acquires": registry.counter(
            "repro_store_lease_acquires_total",
            "Write-ownership leases acquired, by holder kind.",
            labels=("kind",),
        ),
        "lease_renewals": registry.counter(
            "repro_store_lease_renewals_total",
            "Write-ownership lease renewals.",
        ),
        "gc_skipped": registry.counter(
            "repro_store_gc_skipped_total",
            "Unreferenced gc candidates preserved by the under-lock "
            "re-check, by reason (an active writer lease, or liveness "
            "re-established by a save that landed after the scan).",
            labels=("reason",),
        ),
    }


class _TimedLock:
    """A :class:`FileLock` wrapper that times acquisition waits."""

    __slots__ = ("_lock", "_histogram")

    def __init__(self, lock, histogram):
        self._lock = lock
        self._histogram = histogram

    def __enter__(self):
        start = time.perf_counter()
        self._lock.__enter__()
        self._histogram.observe(time.perf_counter() - start)
        return self

    def __exit__(self, *exc_info):
        return self._lock.__exit__(*exc_info)


# ----------------------------------------------------------------------
# Column-entry codecs
# ----------------------------------------------------------------------
class Codec:
    """Versioned (de)serializer for one table object.

    A codec turns ``(meta, {column: ColumnEntry})`` into bytes and back.
    ``version`` is stable forever: a store may hold objects written by
    any registered codec, and the reader picks the codec from the file
    (extension + self-describing header), so new codec versions never
    orphan old artifacts.  Decoders raise :class:`CatalogStoreError` on
    any malformed input — truncated, garbled, or wrong-typed — and never
    return partially-decoded entries.
    """

    version: int
    extension: str
    #: Whether readers should hand this codec a memory-mapped buffer
    #: (``StoreBackend.open_mmap``) instead of an in-memory blob copy.
    mmap = False

    def encode(self, meta: dict, entries: dict) -> bytes:
        raise NotImplementedError

    def decode(self, blob: bytes):
        """``(meta, {column: ColumnEntry})`` from :meth:`encode` output."""
        raise NotImplementedError

    def decode_meta(self, blob: bytes) -> dict:
        """Just the ``meta`` dict (cheap for codecs with a meta header)."""
        return self.decode(blob)[0]

    def check(self, blob) -> None:
        """Deep integrity check (:meth:`CatalogStore.verify`); codecs
        with checksums validate them here, on top of a full decode."""
        self.decode(blob)


def _derived_normalized(distinct) -> frozenset:
    return frozenset(v.strip().lower() for v in distinct)


class JsonCodec(Codec):
    """The version-1 JSON object format (legacy; still fully readable).

    Byte-compatible with the flat-layout writer of layout version 1, so
    migration tests (and any external tooling) can reproduce v1 stores
    exactly.
    """

    version = 1
    extension = ".json"

    def encode(self, meta: dict, entries: dict) -> bytes:
        payload = {
            "meta": dict(meta),
            "columns": {
                column: {
                    "distinct": sorted(entry.distinct),
                    "normalized": sorted(entry.normalized),
                    "signature": [int(x) for x in entry.signature.tolist()],
                }
                for column, entry in entries.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")

    def decode(self, blob: bytes):
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CatalogStoreError(f"corrupt JSON object: {error}") from error
        try:
            entries = {}
            for column, data in payload["columns"].items():
                distinct = frozenset(data["distinct"])
                if "normalized" in data:
                    normalized = frozenset(data["normalized"])
                else:
                    normalized = _derived_normalized(distinct)
                entries[column] = ColumnEntry(
                    distinct=distinct,
                    normalized=normalized,
                    signature=np.array(data["signature"], dtype=np.uint64),
                )
            return payload["meta"], entries
        except (KeyError, TypeError, AttributeError, ValueError, OverflowError) as error:
            # ValueError/OverflowError: JSON-valid but wrong-typed
            # signature data (np.array with dtype=uint64 rejects it).
            raise CatalogStoreError(f"corrupt JSON object: {error!r}") from error


class _Cursor:
    """Bounds-checked reader over a binary object blob."""

    def __init__(self, blob: bytes):
        self.blob = blob
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.blob):
            raise CatalogStoreError(
                f"truncated binary object: wanted {n} bytes at offset "
                f"{self.pos}, have {len(self.blob)}"
            )
        out = self.blob[self.pos : self.pos + n]
        self.pos += n
        return out

    def unpack(self, fmt: str):
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def text(self, n: int) -> str:
        try:
            return self.take(n).decode("utf-8")
        except UnicodeDecodeError as error:
            raise CatalogStoreError(
                f"garbled binary object: invalid UTF-8 at offset {self.pos}"
            ) from error


class BinaryCodec(Codec):
    """Packed + deflated binary object format (layout version 2's default).

    Little-endian throughout::

        magic b"RCAT" | u16 codec version
        u32 meta length | meta JSON (utf-8, uncompressed → cheap meta reads)
        u8 body compression (0 = raw, 1 = zlib) | u32 stored body length
        body (zlib-deflated column section):
            u32 column count
            per column (sorted by name):
                u16 name length | name utf-8
                u32 num_perm | num_perm * u64 signature
                u8 flags (bit 0: explicit normalized block follows distinct)
                string-set block (distinct)
                [string-set block (normalized), only if flag bit 0]

        string-set block: u32 count | u32 blob length
                          | count * u32 value lengths | utf-8 value blob

    The dominant JSON costs disappear: signatures are raw 8-byte words
    instead of ~25 characters of decimal + indentation each, values are
    stored once (the normalized set is re-derived on decode whenever it
    equals ``strip().lower()`` of the distinct set, which is how every
    entry the index computes looks), and the packed column section is
    deflated — sorted value blobs share long prefixes, so zlib roughly
    halves it again.  Encoding is canonical — values sorted, meta JSON
    with sorted keys, fixed compression level — so equal objects encode
    byte-identically.
    """

    version = 2
    extension = ".bin"

    MAGIC = b"RCAT"
    _EXPLICIT_NORMALIZED = 1
    _BODY_RAW = 0
    _BODY_ZLIB = 1
    _ZLIB_LEVEL = 6

    def encode(self, meta: dict, entries: dict) -> bytes:
        body = bytearray()
        body += struct.pack("<I", len(entries))
        for column in sorted(entries):
            entry = entries[column]
            name = column.encode("utf-8")
            if len(name) > 0xFFFF:
                raise CatalogStoreError(
                    f"column name {column[:40]!r}… is {len(name)} UTF-8 "
                    "bytes, beyond the binary codec's 64KiB name field"
                )
            body += struct.pack("<H", len(name))
            body += name
            signature = np.ascontiguousarray(entry.signature, dtype="<u8")
            body += struct.pack("<I", signature.size)
            body += signature.tobytes()
            derived = entry.normalized == _derived_normalized(entry.distinct)
            body += struct.pack("<B", 0 if derived else self._EXPLICIT_NORMALIZED)
            body += self._pack_strings(entry.distinct)
            if not derived:
                body += self._pack_strings(entry.normalized)
        deflated = zlib.compress(bytes(body), self._ZLIB_LEVEL)
        if len(deflated) < len(body):
            compression, stored = self._BODY_ZLIB, deflated
        else:
            compression, stored = self._BODY_RAW, bytes(body)
        out = bytearray()
        out += self.MAGIC
        out += struct.pack("<H", self.version)
        meta_blob = json.dumps(dict(meta), sort_keys=True).encode("utf-8")
        out += struct.pack("<I", len(meta_blob))
        out += meta_blob
        out += struct.pack("<BI", compression, len(stored))
        out += stored
        return bytes(out)

    @staticmethod
    def _pack_strings(values) -> bytes:
        encoded = [value.encode("utf-8") for value in sorted(values)]
        lengths = np.array([len(e) for e in encoded], dtype="<u4")
        blob = b"".join(encoded)
        return (
            struct.pack("<II", len(encoded), len(blob))
            + lengths.tobytes()
            + blob
        )

    @staticmethod
    def _unpack_strings(cursor: _Cursor) -> frozenset:
        count, blob_len = cursor.unpack("<II")
        lengths = np.frombuffer(cursor.take(4 * count), dtype="<u4")
        if int(lengths.sum()) != blob_len:
            raise CatalogStoreError(
                "garbled binary object: string lengths disagree with blob size"
            )
        blob = cursor.take(blob_len)
        values = []
        offset = 0
        for length in lengths.tolist():
            piece = blob[offset : offset + length]
            offset += length
            try:
                values.append(piece.decode("utf-8"))
            except UnicodeDecodeError as error:
                raise CatalogStoreError(
                    "garbled binary object: invalid UTF-8 value"
                ) from error
        return frozenset(values)

    def _header(self, blob: bytes) -> _Cursor:
        cursor = _Cursor(blob)
        if cursor.take(len(self.MAGIC)) != self.MAGIC:
            raise CatalogStoreError("not a binary catalog object (bad magic)")
        (version,) = cursor.unpack("<H")
        if version != self.version:
            raise CatalogStoreError(
                f"binary object codec version {version}, expected {self.version}"
            )
        return cursor

    def _meta(self, cursor: _Cursor) -> dict:
        (meta_len,) = cursor.unpack("<I")
        try:
            meta = json.loads(cursor.text(meta_len))
        except json.JSONDecodeError as error:
            raise CatalogStoreError(
                f"garbled binary object: bad meta block: {error}"
            ) from error
        if not isinstance(meta, dict):
            raise CatalogStoreError("garbled binary object: meta is not a dict")
        return meta

    def decode_meta(self, blob: bytes) -> dict:
        return self._meta(self._header(blob))

    def decode(self, blob: bytes):
        outer = self._header(blob)
        meta = self._meta(outer)
        compression, stored_len = outer.unpack("<BI")
        stored = outer.take(stored_len)
        if outer.pos != len(blob):
            raise CatalogStoreError(
                f"garbled binary object: {len(blob) - outer.pos} trailing bytes"
            )
        if compression == self._BODY_ZLIB:
            try:
                body = zlib.decompress(stored)
            except zlib.error as error:
                raise CatalogStoreError(
                    f"garbled binary object: bad deflate body: {error}"
                ) from error
        elif compression == self._BODY_RAW:
            body = stored
        else:
            raise CatalogStoreError(
                f"garbled binary object: unknown body compression {compression}"
            )
        cursor = _Cursor(body)
        (n_columns,) = cursor.unpack("<I")
        entries = {}
        for _ in range(n_columns):
            (name_len,) = cursor.unpack("<H")
            column = cursor.text(name_len)
            (num_perm,) = cursor.unpack("<I")
            signature = np.frombuffer(
                cursor.take(8 * num_perm), dtype="<u8"
            ).astype(np.uint64)
            (flags,) = cursor.unpack("<B")
            distinct = self._unpack_strings(cursor)
            if flags & self._EXPLICIT_NORMALIZED:
                normalized = self._unpack_strings(cursor)
            else:
                normalized = _derived_normalized(distinct)
            entries[column] = ColumnEntry(
                distinct=distinct, normalized=normalized, signature=signature
            )
        if cursor.pos != len(body):
            raise CatalogStoreError(
                f"garbled binary object: {len(body) - cursor.pos} trailing "
                "bytes in column section"
            )
        return meta, entries


class MmapCodec(Codec):
    """Fixed-layout uncompressed object format built for memory mapping
    (codec version 3, opt-in via ``CatalogStore(object_codec=3)``).

    Little-endian, every multi-byte field naturally aligned::

        header (16 bytes):
            magic b"RCM3" | u16 codec version | u16 reserved (0)
            u32 meta length | u32 column count
        meta JSON (utf-8), zero-padded to 8 bytes
        directory: column count * u64 — absolute offset of each column
            block, in sorted column-name order
        column blocks, each starting 8-aligned:
            u32 name length | u32 num_perm
            u32 flags (bit 0: explicit normalized block) | u32 reserved
            num_perm * u64 signature   (8-aligned by construction)
            name utf-8
            string-set block (distinct)
            [string-set block (normalized), only if flag bit 0]
            zero padding to 8 bytes
        footer (8 bytes): u32 crc32 of everything before the footer
            | magic b"3MCR"

        string-set block: u32 count | u32 blob length
                          | count * u32 value lengths | utf-8 value blob

    Signatures decode as ``np.frombuffer`` views straight into the
    buffer — when the buffer is a :meth:`StoreBackend.open_mmap` view,
    no byte of signature data is ever copied, and concurrent processes
    reading the same artifact share one set of physical pages.  The
    arrays hold a reference to the buffer, so the mapping lives exactly
    as long as something still looks at it.

    Decoding validates structure (magics, bounds, offsets monotone and
    aligned) but not the checksum — that would force a full read and
    defeat lazy paging.  :meth:`check` (the deep-``verify()`` hook)
    additionally recomputes the crc32, so bit rot that structural checks
    cannot see is still caught by an integrity pass.  Encoding is
    canonical (sorted columns, sorted meta keys, zero padding): equal
    objects encode byte-identically.
    """

    version = 3
    extension = ".mmap"
    mmap = True

    MAGIC = b"RCM3"
    FOOTER_MAGIC = b"3MCR"
    _EXPLICIT_NORMALIZED = 1

    @staticmethod
    def _pad8(out: bytearray) -> None:
        out += b"\x00" * (-len(out) % 8)

    def encode(self, meta: dict, entries: dict) -> bytes:
        columns = sorted(entries)
        meta_blob = json.dumps(dict(meta), sort_keys=True).encode("utf-8")
        out = bytearray()
        out += self.MAGIC
        out += struct.pack("<HH", self.version, 0)
        out += struct.pack("<II", len(meta_blob), len(columns))
        out += meta_blob
        self._pad8(out)
        directory_at = len(out)
        out += b"\x00" * (8 * len(columns))
        offsets = []
        for column in columns:
            entry = entries[column]
            self._pad8(out)
            offsets.append(len(out))
            name = column.encode("utf-8")
            signature = np.ascontiguousarray(entry.signature, dtype="<u8")
            derived = entry.normalized == _derived_normalized(entry.distinct)
            out += struct.pack(
                "<IIII",
                len(name),
                signature.size,
                0 if derived else self._EXPLICIT_NORMALIZED,
                0,
            )
            out += signature.tobytes()
            out += name
            out += BinaryCodec._pack_strings(entry.distinct)
            if not derived:
                out += BinaryCodec._pack_strings(entry.normalized)
        self._pad8(out)
        out[directory_at : directory_at + 8 * len(columns)] = np.array(
            offsets, dtype="<u8"
        ).tobytes()
        out += struct.pack("<I", zlib.crc32(bytes(out)))
        out += self.FOOTER_MAGIC
        return bytes(out)

    # -- decoding ------------------------------------------------------
    @staticmethod
    def _bad(detail: str) -> CatalogStoreError:
        return CatalogStoreError(f"garbled mmap object: {detail}")

    def _bounds(self, blob) -> int:
        """Validate outer framing; returns the footer offset."""
        if len(blob) < 24 or (len(blob) % 8) != 0:
            raise self._bad(f"implausible size {len(blob)}")
        if bytes(blob[:4]) != self.MAGIC:
            raise CatalogStoreError("not an mmap catalog object (bad magic)")
        version, _ = struct.unpack_from("<HH", blob, 4)
        if version != self.version:
            raise CatalogStoreError(
                f"mmap object codec version {version}, expected {self.version}"
            )
        if bytes(blob[-4:]) != self.FOOTER_MAGIC:
            raise self._bad("missing footer (truncated write?)")
        return len(blob) - 8

    def _strings(self, blob, offset: int, end: int):
        """Decode one string-set block; returns ``(frozenset, next offset)``."""
        if offset + 8 > end:
            raise self._bad("string block header out of bounds")
        count, blob_len = struct.unpack_from("<II", blob, offset)
        offset += 8
        if offset + 4 * count + blob_len > end:
            raise self._bad("string block data out of bounds")
        lengths = np.frombuffer(blob, dtype="<u4", count=count, offset=offset)
        offset += 4 * count
        if int(lengths.sum()) != blob_len:
            raise self._bad("string lengths disagree with blob size")
        try:
            data = bytes(blob[offset : offset + blob_len]).decode("utf-8")
        except UnicodeDecodeError as error:
            raise self._bad("invalid UTF-8 value") from error
        values = []
        at = 0
        # Lengths are UTF-8 byte counts; re-slice on the decoded text via
        # per-piece decode only when the blob is not pure ASCII.
        if len(data) == blob_len:
            for length in lengths.tolist():
                values.append(data[at : at + length])
                at += length
        else:
            raw = bytes(blob[offset : offset + blob_len])
            for length in lengths.tolist():
                values.append(raw[at : at + length].decode("utf-8"))
                at += length
        return frozenset(values), offset + blob_len

    def _header(self, blob):
        footer_at = self._bounds(blob)
        meta_len, n_columns = struct.unpack_from("<II", blob, 8)
        meta_end = 16 + meta_len
        if meta_end > footer_at:
            raise self._bad("meta block out of bounds")
        try:
            meta = json.loads(bytes(blob[16:meta_end]).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise self._bad(f"bad meta block: {error}") from error
        if not isinstance(meta, dict):
            raise self._bad("meta is not a dict")
        directory_at = meta_end + (-meta_end % 8)
        if directory_at + 8 * n_columns > footer_at:
            raise self._bad("column directory out of bounds")
        offsets = np.frombuffer(
            blob, dtype="<u8", count=n_columns, offset=directory_at
        )
        return meta, offsets, footer_at

    def decode_meta(self, blob) -> dict:
        return self._header(blob)[0]

    def decode(self, blob):
        meta, offsets, footer_at = self._header(blob)
        entries = {}
        for raw_offset in offsets.tolist():
            offset = int(raw_offset)
            if offset % 8 or offset + 16 > footer_at:
                raise self._bad(f"column block offset {offset} out of bounds")
            name_len, num_perm, flags, _ = struct.unpack_from(
                "<IIII", blob, offset
            )
            offset += 16
            if offset + 8 * num_perm + name_len > footer_at:
                raise self._bad("column block data out of bounds")
            # The zero-copy heart: a read-only uint64 view into the
            # (possibly memory-mapped) buffer, no astype, no tobytes.
            signature = np.frombuffer(
                blob, dtype="<u8", count=num_perm, offset=offset
            )
            offset += 8 * num_perm
            try:
                column = bytes(blob[offset : offset + name_len]).decode("utf-8")
            except UnicodeDecodeError as error:
                raise self._bad("invalid UTF-8 column name") from error
            offset += name_len
            distinct, offset = self._strings(blob, offset, footer_at)
            if flags & self._EXPLICIT_NORMALIZED:
                normalized, offset = self._strings(blob, offset, footer_at)
            else:
                normalized = _derived_normalized(distinct)
            if column in entries:
                raise self._bad(f"duplicate column {column!r}")
            entries[column] = ColumnEntry(
                distinct=distinct, normalized=normalized, signature=signature
            )
        return meta, entries

    def check(self, blob) -> None:
        footer_at = self._bounds(blob)
        (recorded,) = struct.unpack_from("<I", blob, footer_at)
        actual = zlib.crc32(bytes(blob[:footer_at]))
        if recorded != actual:
            raise self._bad(
                f"crc mismatch (recorded {recorded:#010x}, actual {actual:#010x})"
            )
        self.decode(blob)


#: Registered codecs by version; readers accept any, writers use the default.
CODECS = {
    codec.version: codec for codec in (JsonCodec(), BinaryCodec(), MmapCodec())
}
DEFAULT_CODEC = CODECS[2]

#: Shape of object fingerprints as the store addresses them: dash-joined
#: runs of at least 8 lowercase hex digits (the catalog writes
#: ``<16-hex config fp>-<32-hex table fp>``).  ``list_objects`` uses it
#: to tell layout-v1 flat objects from stray ``*.json`` files someone
#: dropped into the objects root.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{8,}(?:-[0-9a-f]{8,})*$")


def _record_codec(value):
    """Codec version from an objects-section record (either the legacy
    plain-int form or the lease-stamped ``{"codec", "lease"}`` dict)."""
    if isinstance(value, dict):
        return value.get("codec")
    return value


def _record_lease(value):
    """Fencing token from an objects-section record, or ``None`` for
    records written without a lease."""
    if isinstance(value, dict):
        token = value.get("lease")
        return token if isinstance(token, int) else None
    return None


class CatalogStore:
    """Filesystem persistence for catalog artifacts.

    ``profile_budget_bytes`` caps the cached-profile section: when set,
    every :meth:`write_profiles` evicts least-recently-touched profile
    groups until the section fits the budget (the group just written is
    never evicted).  ``None`` disables enforcement (evict on demand with
    :meth:`evict_profiles`).  ``result_budget_bytes`` does the same for
    the persisted run-record section (:meth:`write_result` /
    :meth:`evict_results`).  ``tombstone_ttl`` bounds how long deletion
    tombstones survive before compaction prunes them (seconds), and
    ``clock_skew`` widens that horizon (and lease expiry) so writers
    with drifting clocks cannot prune each other's fresh state early.

    ``backend`` selects the physical representation (a name, a
    :class:`~repro.catalog.backend.StoreBackend` instance, or ``None``
    to auto-detect — see :func:`~repro.catalog.backend.backend_for`).
    ``lease_ttl`` is the write-ownership lease lifetime in seconds;
    ``None`` disables leases entirely, restoring the pre-lease gc
    behavior (kept for the regression demonstration of the liveness
    race, not for production use).
    """

    #: Per-shard delta journal (see the module docstring's protocol).
    LOG_NAME = "manifest.log"
    #: Advisory lock sidecar, one per locked directory.
    LOCK_NAME = ".lock"
    #: Default retention of deletion tombstones (seconds): long enough
    #: that any realistically concurrent writer has observed the
    #: deletion, short enough that the section never grows with the
    #: store's deletion history.
    TOMBSTONE_TTL = 7 * 24 * 3600.0

    def __init__(
        self,
        root: str,
        profile_budget_bytes: int = None,
        result_budget_bytes: int = None,
        tombstone_ttl: float = TOMBSTONE_TTL,
        clock_skew: float = 0.0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        backend=None,
        object_codec: int = None,
    ):
        self.root = str(root)
        self.backend = backend_for(self.root, backend)
        #: Codec new object writes use (reads accept every registered
        #: codec regardless).  ``None`` keeps the historical default —
        #: existing stores stay byte-identical; ``3`` opts into the
        #: mmap-friendly fixed layout.
        if object_codec is None:
            self.codec = DEFAULT_CODEC
        elif object_codec in CODECS:
            self.codec = CODECS[object_codec]
        else:
            raise ValueError(
                f"unknown object_codec {object_codec!r}; "
                f"registered: {sorted(CODECS)}"
            )
        self.profile_budget_bytes = profile_budget_bytes
        self.result_budget_bytes = result_budget_bytes
        self.tombstone_ttl = float(tombstone_ttl)
        self.clock_skew = float(clock_skew)
        self.lease_ttl = None if lease_ttl is None else float(lease_ttl)
        #: Write-ownership leases (``None`` when disabled): gc consults
        #: the active set before reclaiming anything unreferenced.
        self.leases = (
            None
            if self.lease_ttl is None
            else LeaseManager(
                self.backend,
                self.root,
                ttl=self.lease_ttl,
                clock_skew=self.clock_skew,
                clock=lambda: _now(),
            )
        )
        self._writer_lease = None
        self._writer_lease_guard = threading.Lock()
        #: Breakdown of the most recent :meth:`gc` pass on this instance
        #: (``removed`` / ``skipped_leased`` / ``skipped_live``).
        self.last_gc = {"removed": 0, "skipped_leased": 0, "skipped_live": 0}
        #: Test seam: a callable invoked with a protocol point name
        #: (``"shard-log-appended"``, ``"shard-manifest-compacted"``,
        #: ``"object-files-removed"``) at the matching moment of every
        #: shard-manifest update.  Fault tests raise (or ``os._exit``)
        #: from it to kill a writer mid-protocol; ``None`` (the default)
        #: is free.
        self.fault_hook = None
        #: Metric family handles (see :meth:`attach_metrics`); ``None``
        #: keeps every instrumentation site free.
        self.obs = None

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def attach_metrics(self, registry) -> "CatalogStore":
        """Record store activity (reads/writes/bytes, lock waits,
        manifest replays, tombstone sweeps) on ``registry``.  Families
        are get-or-create, so attaching many stores to one registry
        aggregates them.  Returns ``self``."""
        self.obs = register_store_metrics(registry)
        return self

    def _count(self, name: str, section: str, amount: float = 1.0) -> None:
        if self.obs is not None:
            self.obs[name].labels(section=section).inc(amount)

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def _lock_section(self, directory: str) -> str:
        """Store section a lock path belongs to (the metric label)."""
        rel = os.path.relpath(directory, self.root)
        if rel == ".":
            return "root"
        head = rel.split(os.sep, 1)[0]
        return head if head in ("objects", "profiles", "results") else "other"

    def _dir_lock(self, directory: str):
        """Advisory file lock guarding one directory's manifest (wait
        time lands in the lock-wait histogram when metrics are on)."""
        lock = self.backend.lock(os.path.join(directory, self.LOCK_NAME))
        if self.obs is None:
            return lock
        return _TimedLock(
            lock,
            self.obs["lock_wait"].labels(section=self._lock_section(directory)),
        )

    def root_lock(self):
        """Advisory file lock guarding whole-store transitions (the root
        manifest + snapshot pair); taken by :meth:`Catalog.save` so
        concurrent savers merge instead of overwriting each other."""
        return self._dir_lock(self.root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _object_shard_dir(self, fingerprint: str) -> str:
        return os.path.join(self._objects_dir(), shard_of(fingerprint))

    def _object_path(self, fingerprint: str, codec: Codec = DEFAULT_CODEC) -> str:
        """Sharded path of one object under ``codec`` (the default codec's
        path is where new writes land)."""
        return os.path.join(
            self._object_shard_dir(fingerprint), f"{fingerprint}{codec.extension}"
        )

    def _legacy_object_path(self, fingerprint: str) -> str:
        """Layout-v1 flat path (read-through only; never written)."""
        return os.path.join(self._objects_dir(), f"{fingerprint}.json")

    def _profiles_dir(self) -> str:
        return os.path.join(self.root, "profiles")

    def _profile_shard_dir(self, base_fingerprint: str) -> str:
        return os.path.join(self._profiles_dir(), shard_of(base_fingerprint))

    def _profile_path(self, base_fingerprint: str) -> str:
        return os.path.join(
            self._profile_shard_dir(base_fingerprint), f"{base_fingerprint}.npz"
        )

    def _legacy_profile_path(self, base_fingerprint: str) -> str:
        return os.path.join(self._profiles_dir(), f"{base_fingerprint}.json")

    def exists(self) -> bool:
        return self.backend.exists(self.manifest_path)

    # ------------------------------------------------------------------
    # Backend I/O helpers (tolerant variants of the backend primitives)
    # ------------------------------------------------------------------
    def _size(self, path: str) -> int:
        try:
            return self.backend.size(path)
        except OSError:
            return 0

    def _remove(self, path: str) -> None:
        try:
            self.backend.remove(path)
        except FileNotFoundError:
            pass

    def _write_json(self, path: str, payload) -> None:
        self.backend.write_bytes(
            path, json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def read_manifest(self):
        """Manifest dict, or ``None`` if the store was never saved.

        Accepts every readable layout version (a v1 manifest opens
        transparently; the next :meth:`write_manifest` upgrades it)."""
        try:
            raw = self.backend.read_bytes(self.manifest_path)
        except FileNotFoundError:
            return None
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CatalogStoreError(
                f"corrupt catalog manifest at {self.manifest_path!r}: {error}"
            ) from error
        version = manifest.get("version") if isinstance(manifest, dict) else None
        if version not in READABLE_VERSIONS:
            raise CatalogStoreError(
                f"catalog at {self.root!r} has version "
                f"{version!r}, expected one of {sorted(READABLE_VERSIONS)}"
            )
        return manifest

    def write_manifest(self, config: dict, tables: dict) -> None:
        """Persist config + the name→fingerprint snapshot atomically."""
        self.backend.makedirs(self.root)
        payload = {
            "version": VERSION,
            "config": dict(config),
            "tables": dict(sorted(tables.items())),
        }
        self._write_json(self.manifest_path, payload)

    # ------------------------------------------------------------------
    # Per-shard manifests (advisory indexes; the directory is the truth)
    # ------------------------------------------------------------------
    def _shard_log_path(self, shard_dir: str) -> str:
        return os.path.join(shard_dir, self.LOG_NAME)

    def _replay_shard_log(self, shard_dir: str, payload: dict) -> dict:
        """Apply the shard's delta journal over ``payload`` in place.

        Each log line is one ``{"section", "op", "key"[, "value"]}``
        record; malformed or torn lines (a writer killed mid-append, a
        partial tail after a crash) are skipped — every complete record
        still applies, which is exactly the crash guarantee."""
        try:
            data = self.backend.read_bytes(self._shard_log_path(shard_dir))
        except OSError:
            # No delta log: the overwhelmingly common case, not a replay.
            return payload
        if self.obs is not None:
            self.obs["manifest_replays"].inc()
        for line in data.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            section = record.get("section")
            key = record.get("key")
            if not isinstance(section, str) or not isinstance(key, str):
                continue
            entries = payload.get(section)
            if not isinstance(entries, dict):
                entries = {}
                payload[section] = entries
            op = record.get("op")
            if op == "set":
                entries[key] = record.get("value")
            elif op == "del":
                entries.pop(key, None)
        return payload

    def _read_shard_manifest(self, shard_dir: str) -> dict:
        """Shard manifest payload (base file + replayed delta log), or
        ``{}`` when absent or corrupt — a damaged shard manifest degrades
        to directory probing and is rebuilt by the next write, never
        trusted over the files."""
        try:
            payload = json.loads(
                self.backend.read_bytes(
                    os.path.join(shard_dir, "manifest.json")
                ).decode("utf-8")
            )
            if not isinstance(payload, dict):
                payload = {}
        except (
            FileNotFoundError,
            NotADirectoryError,
            json.JSONDecodeError,
            UnicodeDecodeError,
        ):
            payload = {}
        return self._replay_shard_log(shard_dir, payload)

    def _read_shard_section(self, shard_dir: str, section: str) -> dict:
        """One section of a shard manifest, guaranteed to be a dict — a
        JSON-valid but wrong-typed section is corruption and degrades to
        empty exactly like a missing manifest."""
        value = self._read_shard_manifest(shard_dir).get(section)
        return value if isinstance(value, dict) else {}

    def _update_shard_manifest(
        self, shard_dir: str, section: str, op: str, key: str, value=None
    ) -> None:
        """Durably apply one ``set``/``del`` to a shard manifest section
        (single-record form of :meth:`_apply_shard_ops`)."""
        self._apply_shard_ops(shard_dir, [(section, op, key, value)])

    def _apply_shard_ops(self, shard_dir: str, ops, between=None) -> None:
        """Durably apply ``ops`` (``(section, op, key, value)`` tuples)
        to one shard manifest as a unit.

        Append-then-atomic-rename under the shard's advisory file lock:
        all deltas are appended to ``manifest.log`` first (a *single*
        ``O_APPEND`` write, so a multi-record update — e.g. ``{record
        object, clear tombstone}`` — is visible to readers atomically
        and survives a writer that dies before compaction), then the
        full log is compacted into a freshly renamed ``manifest.json``
        and cleared.  ``between``, when given, runs after the append and
        before compaction, still under the lock — the deletion protocol
        removes data files there, so the logged intent is durable before
        any file disappears.  The lock serializes concurrent
        read-modify-writes, so updates from different threads or
        processes cannot drop each other.  Best-effort like all manifest
        bookkeeping: an ``OSError`` leaves the directory itself as the
        source of truth."""
        lines = bytearray()
        for section, op, key, value in ops:
            record = {"section": section, "op": op, "key": key}
            if op == "set":
                record["value"] = value
            lines += (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.backend.makedirs(shard_dir)
            with self._dir_lock(shard_dir):
                self.backend.append_bytes(
                    self._shard_log_path(shard_dir), bytes(lines)
                )
                self._fault("shard-log-appended")
                if between is not None:
                    between()
                payload = self._read_shard_manifest(shard_dir)
                self._prune_tombstones(payload)
                self._write_json(
                    os.path.join(shard_dir, "manifest.json"), payload
                )
                self._fault("shard-manifest-compacted")
                self._remove(self._shard_log_path(shard_dir))
        except OSError:
            pass

    def _prune_tombstones(self, payload: dict) -> None:
        """Drop expired (or malformed) tombstones from a manifest payload
        about to be compacted — pruning happens only on the write path,
        so readers never mutate what they replay.

        Expiry is judged by *clamped age*: a tombstone stamped by a
        writer whose clock runs ahead of ours has a negative age, which
        must read as "fresh" — never as instantly prunable — and the
        per-store ``clock_skew`` widens the horizon so a pruner with a
        fast clock cannot drop another writer's tombstone early."""
        tombstones = payload.get("tombstones")
        if not isinstance(tombstones, dict):
            if tombstones is not None:
                payload.pop("tombstones", None)
            return
        now = _now()
        horizon = self.tombstone_ttl + self.clock_skew

        def _expired(ts: float) -> bool:
            return max(0.0, now - float(ts)) > horizon

        for key in [
            key
            for key, info in tombstones.items()
            if not isinstance(info, dict)
            or not isinstance(info.get("ts"), (int, float))
            or _expired(info["ts"])
        ]:
            del tombstones[key]
        if not tombstones:
            payload.pop("tombstones", None)

    # ------------------------------------------------------------------
    # Shared LRU bookkeeping (profile groups and run records both keep
    # {bytes, touched} entries in their shard manifests)
    # ------------------------------------------------------------------
    def _touch_section_entry(
        self, shard_dir: str, section: str, key: str, path: str
    ) -> None:
        """Refresh one entry's LRU clock — pure bookkeeping, so any
        failure is swallowed (eviction falls back to file mtimes)."""
        try:
            info = self._read_shard_section(shard_dir, section).get(key)
            if isinstance(info, dict):
                info = dict(info)
            else:
                info = {"bytes": self._size(path)}
            info["touched"] = _now()
            self._update_shard_manifest(shard_dir, section, "set", key, info)
        except Exception:
            pass

    def _sharded_inventory(self, root_dir: str, section: str, suffix: str):
        """``([(touched, key, bytes)], seen keys)`` over one sharded
        store section.

        Walks shard by shard — one manifest parse per shard directory,
        not per entry — and heals stale bookkeeping from the filesystem
        (entries missing from their shard manifest get the file's
        mtime/size, so eviction still orders sensibly after a manifest
        loss)."""
        inventory = []
        seen = set()
        if not self.backend.isdir(root_dir):
            return inventory, seen
        for name in sorted(self.backend.listdir(root_dir)):
            shard_dir = os.path.join(root_dir, name)
            if not self.backend.isdir(shard_dir):
                continue
            recorded = self._read_shard_section(shard_dir, section)
            for entry in sorted(self.backend.listdir(shard_dir)):
                if not entry.endswith(suffix) or entry == "manifest.json":
                    continue
                key = entry[: -len(suffix)]
                path = os.path.join(shard_dir, entry)
                info = recorded.get(key)
                size = None
                if isinstance(info, dict) and isinstance(
                    info.get("touched"), (int, float)
                ):
                    touched = float(info["touched"])
                    if isinstance(info.get("bytes"), int):
                        size = info["bytes"]
                else:
                    try:
                        touched = self.backend.mtime(path)
                    except OSError:
                        # Deleted between the listing and the stat (a
                        # concurrent eviction or gc): the entry is gone,
                        # not merely unbookkept — skip it rather than
                        # inventory a ghost (or crash the caller).
                        if not self.backend.exists(path):
                            continue
                        touched = 0.0
                if size is None:
                    size = self._size(path)
                seen.add(key)
                inventory.append((touched, key, size))
        return inventory, seen

    @staticmethod
    def _evict_lru(inventory, budget_bytes: int, keep, delete):
        """Evict least-recently-touched entries until the section fits
        ``budget_bytes``; returns ``(evicted, freed_bytes)``."""
        total = sum(size for _t, _k, size in inventory)
        evicted = 0
        freed = 0
        for _touched, key, size in sorted(inventory):
            if total <= budget_bytes:
                break
            if key in keep:
                continue
            delete(key)
            total -= size
            freed += size
            evicted += 1
        return evicted, freed

    # ------------------------------------------------------------------
    # Table objects
    # ------------------------------------------------------------------
    def _object_candidates(self, fingerprint: str):
        """``(codec, path)`` pairs to try for one object, lazily.

        This store's write codec's sharded path comes first —
        ``write_object`` leaves exactly one representation there, so the
        common case (warm start probing thousands of objects) resolves
        on a single ``exists``/``open`` without touching any shard
        manifest.  Only when that misses (legacy, mid-migration, or a
        store reopened under a different ``object_codec``) is the shard
        manifest consulted for a recorded codec, then every other
        registered codec's sharded path, then the layout-v1 flat path —
        so a stale shard manifest degrades to probing instead of
        failing."""
        yield self.codec, self._object_path(fingerprint, self.codec)
        recorded = self._read_shard_section(
            self._object_shard_dir(fingerprint), "objects"
        )
        order = []
        version = _record_codec(recorded.get(fingerprint))
        if version in CODECS:
            order.append(CODECS[version])
        order.extend(
            codec for codec in CODECS.values() if codec is not self.codec
        )
        seen = {self._object_path(fingerprint, self.codec)}
        for codec in order:
            path = self._object_path(fingerprint, codec)
            if path not in seen:
                seen.add(path)
                yield codec, path
        yield CODECS[1], self._legacy_object_path(fingerprint)

    def has_object(self, fingerprint: str) -> bool:
        return any(
            self.backend.exists(path)
            for _codec, path in self._object_candidates(fingerprint)
        )

    # ------------------------------------------------------------------
    # Write-ownership leases
    # ------------------------------------------------------------------
    def writer_lease(self):
        """This store's current writer lease (acquired on first use,
        renewed once half its TTL has passed), or ``None`` when leases
        are disabled.  Object records stamp its fencing token so gc can
        tell in-flight work from garbage.

        The guard only protects the ``_writer_lease`` slot; the lease
        *file* work — ``acquire()``/``renew()`` take the store-wide
        lease lock and write through the backend — runs outside it, so
        a slow disk (or contended lease lock) never stalls every other
        thread's ``writer_lease()`` behind an in-process mutex.  Two
        threads racing the cold path may both acquire; the loser's
        surplus lease is released immediately and both return the
        published one.
        """
        if self.leases is None:
            return None
        with self._writer_lease_guard:
            lease = self._writer_lease
        if lease is not None and _now() - lease.acquired <= self.leases.ttl / 2:
            return lease
        if lease is None:
            fresh = self.leases.acquire(kind="writer")
            if self.obs is not None:
                self.obs["lease_acquires"].labels(kind="writer").inc()
        else:
            fresh = self.leases.renew(lease)
            if self.obs is not None:
                self.obs["lease_renewals"].inc()
        surplus = None
        with self._writer_lease_guard:
            current = self._writer_lease
            if current is lease or current is None:
                # Uncontended (or a release landed meanwhile): publish
                # ours.  Publishing a renewal after a concurrent
                # release re-establishes ownership, which is exactly
                # what this caller asked for.
                self._writer_lease = fresh
                published = fresh
            elif lease is None:
                # Another thread's acquire won the race; ours is
                # surplus and must be returned, not leaked until TTL.
                surplus = fresh
                published = current
            else:
                # Another thread renewed the same lease first; either
                # stamp carries the same owner and token — keep theirs.
                published = current
        if surplus is not None:
            self.leases.release(surplus)
        return published

    def release_writer_lease(self) -> None:
        """Give up write ownership — called once the writer's references
        are durably published (:meth:`Catalog.save`), after which its
        objects are protected by the manifest, not the lease."""
        with self._writer_lease_guard:
            lease, self._writer_lease = self._writer_lease, None
        if lease is not None and self.leases is not None:
            self.leases.release(lease)

    def claim_object(self, fingerprint: str) -> None:
        """Stamp this writer's lease token on an *existing* object it is
        adopting (a warm-start hit on content some earlier writer
        persisted): until this writer's save lands, the object must be
        owned, or a racing gc that does not see it referenced yet could
        reclaim it.  No-op when leases are disabled or the object is
        unknown."""
        if self.leases is None:
            return
        lease = self.writer_lease()
        shard_dir = self._object_shard_dir(fingerprint)
        with self._dir_lock(shard_dir):
            if not self.has_object(fingerprint):
                return
            recorded = self._read_shard_section(shard_dir, "objects").get(
                fingerprint
            )
            version = _record_codec(recorded)
            if version not in CODECS:
                # Unrecorded (legacy flat object) or damaged record:
                # probe for the representation actually present.
                version = next(
                    (
                        codec.version
                        for codec, path in self._object_candidates(fingerprint)
                        if self.backend.exists(path)
                    ),
                    self.codec.version,
                )
            self._update_shard_manifest(
                shard_dir,
                "objects",
                "set",
                fingerprint,
                {"codec": version, "lease": lease.token},
            )

    def write_object(
        self, fingerprint: str, meta: dict, entries: dict, overwrite: bool = False
    ) -> None:
        """Persist one table's derived artifacts (no-op if present:
        objects are content-addressed, so equal fingerprint ⇒ equal
        content).  ``overwrite`` forces the write — used when healing a
        corrupt file with freshly recomputed content.

        A tombstoned fingerprint is treated as absent even when a
        crashed deleter left its file behind: the write proceeds and
        clears the tombstone in the same atomic log append that records
        the object, so a re-add after a half-finished deletion can never
        be reaped by a later :meth:`sweep_tombstones`.  The data file
        lands under the shard lock, linearizing the write against any
        concurrent :meth:`delete_object` in the shard."""
        if (
            not overwrite
            and self.has_object(fingerprint)
            and fingerprint not in self._shard_tombstones(fingerprint)
        ):
            # Present already — but this writer is about to depend on
            # it, so take ownership exactly as if it had written it.
            self.claim_object(fingerprint)
            return
        # With leases enabled the record carries the writer's fencing
        # token; without, it stays the historical plain codec version
        # (keeping lease-free stores byte-identical).
        lease = self.writer_lease()
        record = (
            self.codec.version
            if lease is None
            else {"codec": self.codec.version, "lease": lease.token}
        )
        path = self._object_path(fingerprint, self.codec)
        shard_dir = os.path.dirname(path)
        self.backend.makedirs(shard_dir)
        blob = self.codec.encode(meta, entries)
        with self._dir_lock(shard_dir):
            self.backend.write_bytes(path, blob)
            self._count("writes", "objects")
            self._count("write_bytes", "objects", len(blob))
            # Tombstone clear *before* the object record: both land in
            # one append, but if the filesystem tears it, every prefix
            # is still consistent (a cleared tombstone with the object
            # not yet recorded reads as a plain unlisted file; the
            # reverse order could leave a fingerprint both recorded
            # live and tombstoned).
            self._apply_shard_ops(
                shard_dir,
                [
                    ("tombstones", "del", fingerprint, None),
                    ("objects", "set", fingerprint, record),
                ],
            )
            # Drop superseded representations (other codecs, the v1 flat
            # file) so a heal can never resurrect stale content later.
            for codec in CODECS.values():
                if codec is not self.codec:
                    self._remove(self._object_path(fingerprint, codec))
            self._remove(self._legacy_object_path(fingerprint))

    def _read_artifact(self, codec: Codec, path: str):
        """One object representation as the bytes-like its codec wants:
        a memory-mapped view for mmap codecs, an in-memory blob
        otherwise.  Called lock-free by design — a page fault on mapped
        artifact data is disk I/O and must never happen under a store
        lock."""
        if codec.mmap:
            return self.backend.open_mmap(path)
        return self.backend.read_bytes(path)

    def _decode_candidates(self, fingerprint: str, decoder):
        """Run ``decoder(codec, blob)`` over the object's representations
        until one succeeds.

        A representation that exists but fails to decode does not abort
        the read: the next candidate is tried, so a torn v3 artifact
        left by a crashed upgrade *fails closed* onto the surviving v2
        file (``verify()`` still reports the torn file).  Only when no
        representation decodes is the first corruption raised."""
        first_error = None
        for codec, path in self._object_candidates(fingerprint):
            try:
                blob = self._read_artifact(codec, path)
            except FileNotFoundError:
                continue
            try:
                decoded = decoder(codec, blob)
            except CatalogStoreError as error:
                if first_error is None:
                    first_error = CatalogStoreError(
                        f"corrupt catalog object at {path!r}: {error}"
                    )
                    first_error.__cause__ = error
                continue
            self._count("reads", "objects")
            self._count("read_bytes", "objects", len(blob))
            return decoded
        if first_error is not None:
            raise first_error
        raise KeyError(f"no catalog object {fingerprint!r}")

    def read_object(self, fingerprint: str):
        """Load ``(meta, {column: ColumnEntry})`` for one fingerprint.

        Tries the sharded layout first (any registered codec), then the
        layout-v1 flat path.  Raises ``KeyError`` when no representation
        exists and :class:`CatalogStoreError` when every existing one is
        corrupt (a corrupt representation with a healthy fallback reads
        from the fallback)."""
        return self._decode_candidates(
            fingerprint, lambda codec, blob: codec.decode(blob)
        )

    def read_object_meta(self, fingerprint: str) -> dict:
        """Just the ``meta`` dict of one object — the binary and mmap
        codecs read only the fixed-size header, so Table-I style reports
        over large catalogs never materialize the value sets."""
        return self._decode_candidates(
            fingerprint, lambda codec, blob: codec.decode_meta(blob)
        )

    def _shard_tombstones(self, fingerprint: str) -> dict:
        """Tombstone section of the shard holding ``fingerprint``."""
        return self._read_shard_section(
            self._object_shard_dir(fingerprint), "tombstones"
        )

    def list_tombstones(self) -> dict:
        """``{fingerprint: deletion timestamp}`` across all object shards."""
        objects_dir = self._objects_dir()
        if not self.backend.isdir(objects_dir):
            return {}
        out = {}
        for name in sorted(self.backend.listdir(objects_dir)):
            shard_dir = os.path.join(objects_dir, name)
            if not self.backend.isdir(shard_dir):
                continue
            for key, info in self._read_shard_section(
                shard_dir, "tombstones"
            ).items():
                if isinstance(info, dict) and isinstance(
                    info.get("ts"), (int, float)
                ):
                    out[key] = float(info["ts"])
        return out

    def _remove_object_files(self, fingerprint: str) -> None:
        for codec in CODECS.values():
            self._remove(self._object_path(fingerprint, codec))
        self._remove(self._legacy_object_path(fingerprint))

    def delete_object(self, fingerprint: str) -> None:
        """Durably delete one object (tombstone-first protocol).

        The deletion intent — ``{del objects, set tombstone}`` as one
        atomic log append — lands before any file is removed, all under
        the shard lock.  A deleter killed at any point leaves a store
        that verifies: either nothing happened yet, or the tombstone is
        durable and :meth:`sweep_tombstones` finishes the file removal.
        Concurrent writers in the shard are linearized by the lock, so
        a racing :meth:`write_object` either completes before (and is
        deleted) or after (clearing the tombstone, object lives)."""
        shard_dir = self._object_shard_dir(fingerprint)
        if not (
            self.has_object(fingerprint)
            or fingerprint in self._read_shard_section(shard_dir, "objects")
        ):
            # Nothing recorded and no file anywhere: leave no tombstone
            # behind (deleting the absent is a no-op, not an intent).
            return

        removed = []

        def _remove_files():
            self._remove_object_files(fingerprint)
            removed.append(True)
            self._fault("object-files-removed")

        # Un-record before tombstoning (one append; see write_object for
        # why every prefix of the pair must read consistent).
        self._apply_shard_ops(
            shard_dir,
            [
                ("objects", "del", fingerprint, None),
                ("tombstones", "set", fingerprint, {"ts": _now()}),
            ],
            between=_remove_files,
        )
        if not removed:
            # The protocol's bookkeeping is best-effort (an unwritable
            # log or lock swallows as OSError and skips ``between``) —
            # but best-effort must stay confined to bookkeeping: the
            # deletion itself still happens, like the pre-tombstone
            # behavior.  An injected crash propagates out above, so this
            # fallback never runs under fault tests.
            self._remove_object_files(fingerprint)

    def sweep_tombstones(self) -> int:
        """Finish deletions a crashed deleter left half-done.

        For every tombstoned fingerprint whose shard manifest no longer
        records an object, any surviving data file is removed (under the
        shard lock, so a concurrent re-add — which clears the tombstone
        atomically with its object record — can never be reaped).
        Returns the number of files removed.  Expired tombstones are
        pruned by every compaction; sweeping only reconciles files.
        """
        objects_dir = self._objects_dir()
        if not self.backend.isdir(objects_dir):
            return 0
        removed = 0
        for name in sorted(self.backend.listdir(objects_dir)):
            shard_dir = os.path.join(objects_dir, name)
            if not self.backend.isdir(shard_dir):
                continue
            if not self._read_shard_section(shard_dir, "tombstones"):
                continue
            try:
                with self._dir_lock(shard_dir):
                    # Re-read under the lock: a concurrent write may have
                    # just cleared a tombstone we saw.
                    payload = self._read_shard_manifest(shard_dir)
                    tombstones = payload.get("tombstones")
                    objects = payload.get("objects")
                    if not isinstance(tombstones, dict):
                        continue
                    recorded = objects if isinstance(objects, dict) else {}
                    for fingerprint in sorted(tombstones):
                        if fingerprint in recorded:
                            continue
                        for _codec, path in self._object_candidates(fingerprint):
                            if self.backend.exists(path):
                                self._remove(path)
                                removed += 1
            except OSError:
                continue
        if self.obs is not None:
            self.obs["tombstone_sweeps"].inc()
            if removed:
                self.obs["tombstones_swept"].inc(removed)
        return removed

    def _extensions(self):
        return {codec.extension for codec in CODECS.values()}

    def list_objects(self) -> list:
        """Fingerprints of all stored table objects, across layouts.

        Layout-v1 flat files are only counted when their stem is
        fingerprint-shaped: the objects root can pick up stray ``*.json``
        files (editor droppings, notes, tooling output), and reporting
        those as fingerprints would make ``gc`` "delete" them and
        ``verify`` flag phantom objects."""
        objects_dir = self._objects_dir()
        if not self.backend.isdir(objects_dir):
            return []
        extensions = self._extensions()
        found = set()
        for name in self.backend.listdir(objects_dir):
            path = os.path.join(objects_dir, name)
            if self.backend.isdir(path):
                for entry in self.backend.listdir(path):
                    if entry == "manifest.json":
                        continue
                    stem, ext = os.path.splitext(entry)
                    if ext in extensions:
                        found.add(stem)
            elif name.endswith(".json"):
                stem = name[: -len(".json")]
                if _FINGERPRINT_RE.match(stem):
                    found.add(stem)
        return sorted(found)

    def gc(self, live_fingerprints, live_check=None) -> int:
        """Delete objects not in ``live_fingerprints``; returns the count.

        The live set is a *scan-time* snapshot, so before reclaiming
        each candidate gc re-checks, under that object's shard lock:

        1. **Lease ownership** — an object whose record carries the
           fencing token of a currently active lease is a concurrent
           writer's in-flight work (written after the scan, references
           not yet saved) and is skipped.  Crashed writers stop
           renewing, their leases expire, and their orphans become
           collectible on a later pass — leases defer reclamation, they
           never leak it.
        2. **Fresh liveness** — ``live_check``, when given, is called to
           produce an up-to-date live set (the catalog re-reads the root
           manifest); an object a just-landed save references is live,
           not garbage.

        Both checks happen under the same shard lock that
        :meth:`write_object` and :meth:`delete_object` take, so the
        decision is linearized against every writer in the shard.  With
        leases disabled (``lease_ttl=None``) and no ``live_check``,
        this degrades to the historical scan-then-delete pass — which
        is exactly the racy behavior the fault-injection regression
        test pins as lossy.

        Also sweeps tombstones, finishing any deletion a crashed writer
        left half-done.  Per-pass counts land in :attr:`last_gc` (and
        the ``gc_skipped`` metric family when metrics are attached).
        """
        live = set(live_fingerprints)
        removed = 0
        skipped_leased = 0
        skipped_live = 0
        gc_lease = (
            self.leases.acquire(kind="gc") if self.leases is not None else None
        )
        if gc_lease is not None and self.obs is not None:
            self.obs["lease_acquires"].labels(kind="gc").inc()
        # Leases protect *other* writers' in-flight work.  This store's
        # own writer lease never shields a candidate: the caller just
        # declared its own live set, so anything it owns outside that
        # set is garbage by its own account.
        own_leases = (gc_lease, self._writer_lease)
        try:
            for fingerprint in self.list_objects():
                if fingerprint in live:
                    continue
                shard_dir = self._object_shard_dir(fingerprint)
                with self._dir_lock(shard_dir):
                    if self.leases is not None:
                        record = self._read_shard_section(
                            shard_dir, "objects"
                        ).get(fingerprint)
                        token = _record_lease(record)
                        if token is not None and token in self.leases.active_tokens(
                            exclude=own_leases
                        ):
                            skipped_leased += 1
                            if self.obs is not None:
                                self.obs["gc_skipped"].labels(
                                    reason="leased"
                                ).inc()
                            continue
                    if live_check is not None and fingerprint in set(
                        live_check()
                    ):
                        skipped_live += 1
                        if self.obs is not None:
                            self.obs["gc_skipped"].labels(reason="live").inc()
                        continue
                    self.delete_object(fingerprint)
                    removed += 1
        finally:
            if gc_lease is not None:
                self.leases.release(gc_lease)
        self.sweep_tombstones()
        self.last_gc = {
            "removed": removed,
            "skipped_leased": skipped_leased,
            "skipped_live": skipped_live,
        }
        return removed

    # ------------------------------------------------------------------
    # Index snapshot
    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, "snapshot.npz")

    def write_snapshot(self, rows) -> None:
        """Persist the hot index state: one (table, fingerprint, column,
        signature) row per indexed column, signatures packed into a single
        uint64 matrix.

        This is what makes warm starts fast — hydrating the LSH index
        needs only this one compact file; the bulky value sets stay in the
        per-table objects and are paged in lazily on first containment
        check.  Each row carries the source table's fingerprint so a
        reader can tell exactly which content the signatures belong to —
        a snapshot that is stale relative to the manifest (crash between
        the two writes) is then detected instead of silently served.
        """
        rows = list(rows)
        self.backend.makedirs(self.root)
        # Fixed-width unicode arrays (never dtype=object): the file can
        # then be read back without allow_pickle, so opening a foreign
        # catalog directory cannot execute a pickle payload.
        tables = np.array([table for table, _f, _c, _s in rows], dtype=str)
        fingerprints = np.array(
            [fingerprint for _t, fingerprint, _c, _s in rows], dtype=str
        )
        columns = np.array([column for _t, _f, column, _s in rows], dtype=str)
        if rows:
            signatures = np.stack([signature for _t, _f, _c, signature in rows])
        else:
            signatures = np.empty((0, 0), dtype=np.uint64)
        # Streamed through the backend (the local FS writes straight
        # into the temp file, not via an in-memory buffer): the snapshot
        # is the largest single artifact, and buffering it would double
        # peak memory on every save.
        with self.backend.write_stream(self.snapshot_path) as handle:
            np.savez(
                handle,
                tables=tables,
                fingerprints=fingerprints,
                columns=columns,
                signatures=signatures,
            )

    def read_snapshot(self):
        """Load ``{table: (fingerprint, {column: signature})}``, or
        ``None`` if absent."""
        try:
            with self.backend.open_read(self.snapshot_path) as handle:
                with np.load(handle) as payload:
                    tables = payload["tables"]
                    fingerprints = payload["fingerprints"]
                    columns = payload["columns"]
                    signatures = payload["signatures"].astype(
                        np.uint64, copy=False
                    )
        except FileNotFoundError:
            return None
        except Exception:
            # The snapshot is a pure optimization over the object store; a
            # corrupt/truncated file (np.load raises anything from
            # BadZipFile to UnpicklingError) must degrade to a slower
            # object-backed start, not crash warm loading.
            return None
        out = {}
        for i, table in enumerate(tables):
            fingerprint, per_column = out.setdefault(
                str(table), (str(fingerprints[i]), {})
            )
            per_column[str(columns[i])] = signatures[i]
        return out

    # ------------------------------------------------------------------
    # Profile vectors
    # ------------------------------------------------------------------
    #: Sentinel distinguishing a corrupt profile archive from a valid
    #: empty one (both would otherwise read back as ``{}``).
    _CORRUPT_PROFILES = object()

    def _read_profile_file(self, path: str):
        """Raw ``{key: vector}`` from one ``.npz`` group file.

        ``None`` when the file is absent, :data:`_CORRUPT_PROFILES`
        when it is damaged — cached profiles are a pure optimization,
        so corruption degrades to recomputation (and is overwritten by
        the next flush), never fails a discovery run."""
        try:
            with self.backend.open_read(path) as handle:
                with np.load(handle) as payload:
                    return {
                        key: payload[key].astype(float, copy=False)
                        for key in payload.files
                    }
        except FileNotFoundError:
            return None
        except Exception:
            return self._CORRUPT_PROFILES

    def read_profiles(self, base_fingerprint: str) -> dict:
        """Cached ``{profile key: vector}`` for one base table.

        Reading touches the group's LRU clock, so actively-used bases
        survive budget enforcement."""
        path = self._profile_path(base_fingerprint)
        entries = self._read_profile_file(path)
        if entries is self._CORRUPT_PROFILES:
            return {}
        if entries is not None:
            # LRU bookkeeping happens outside the load guard: a failed
            # touch must never discard a successfully loaded cache.
            self._touch_profile_group(base_fingerprint)
            self._count("reads", "profiles")
            self._count("read_bytes", "profiles", self._size(path))
            return entries
        # Layout-v1 flat JSON group (read-through; migrated on next write).
        try:
            payload = json.loads(
                self.backend.read_bytes(
                    self._legacy_profile_path(base_fingerprint)
                ).decode("utf-8")
            )
            return {
                key: np.array(vector, dtype=float)
                for key, vector in payload["entries"].items()
            }
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError, ValueError):
            return {}

    def write_profiles(
        self, base_fingerprint: str, entries: dict, merge: bool = True
    ) -> None:
        """Persist one base table's profile group.

        ``merge=True`` (default) folds ``entries`` into whatever the
        group already holds on disk — union by profile key, new vectors
        winning — under the shard's file lock, so two concurrent
        preparers flushing different vectors for the same base cannot
        drop each other's work.  Profile keys fully determine their
        vectors (they embed every input fingerprint), so merging never
        mixes incompatible values.  ``merge=False`` replaces the group
        outright — for callers that intend a rewrite (a rebuild tool, a
        curation script) rather than a flush."""
        path = self._profile_path(base_fingerprint)
        shard_dir = os.path.dirname(path)
        self.backend.makedirs(shard_dir)
        arrays = {
            key: np.asarray(vector, dtype=float)
            for key, vector in entries.items()
        }
        with self._dir_lock(shard_dir):
            if merge:
                current = self._read_profile_file(path)
                if current and current is not self._CORRUPT_PROFILES:
                    arrays = {**current, **arrays}
            buffer = io.BytesIO()
            np.savez(
                buffer, **{key: arrays[key] for key in sorted(arrays)}
            )
            blob = buffer.getvalue()
            self.backend.write_bytes(path, blob)
            self._count("writes", "profiles")
            self._count("write_bytes", "profiles", len(blob))
            self._update_shard_manifest(
                shard_dir,
                "groups",
                "set",
                base_fingerprint,
                {"bytes": len(blob), "touched": _now()},
            )
        self._remove(self._legacy_profile_path(base_fingerprint))
        if self.profile_budget_bytes is not None:
            self.evict_profiles(
                self.profile_budget_bytes, keep=frozenset({base_fingerprint})
            )

    def _touch_profile_group(self, base_fingerprint: str) -> None:
        self._touch_section_entry(
            self._profile_shard_dir(base_fingerprint),
            "groups",
            base_fingerprint,
            self._profile_path(base_fingerprint),
        )

    def delete_profiles(self, base_fingerprint: str) -> None:
        """Drop one base table's cached profile group (both layouts)."""
        self._remove(self._profile_path(base_fingerprint))
        self._remove(self._legacy_profile_path(base_fingerprint))
        shard_dir = self._profile_shard_dir(base_fingerprint)
        if self._read_shard_section(shard_dir, "groups").get(base_fingerprint):
            self._update_shard_manifest(
                shard_dir, "groups", "del", base_fingerprint
            )

    def list_profile_groups(self) -> list:
        profiles_dir = self._profiles_dir()
        if not self.backend.isdir(profiles_dir):
            return []
        found = set()
        for name in self.backend.listdir(profiles_dir):
            path = os.path.join(profiles_dir, name)
            if self.backend.isdir(path):
                for entry in self.backend.listdir(path):
                    if entry.endswith(".npz"):
                        found.add(entry[: -len(".npz")])
            elif name.endswith(".json"):
                found.add(name[: -len(".json")])
        return sorted(found)

    def _profile_inventory(self) -> list:
        """``(touched, base_fingerprint, bytes)`` for every profile
        group — the shared sharded inventory plus layout-v1 flat groups
        (no bookkeeping, so ordered by file mtime; skipped when a
        sharded copy supersedes them)."""
        profiles_dir = self._profiles_dir()
        inventory, seen = self._sharded_inventory(profiles_dir, "groups", ".npz")
        if not self.backend.isdir(profiles_dir):
            return inventory
        for name in sorted(self.backend.listdir(profiles_dir)):
            if not name.endswith(".json"):
                continue
            if self.backend.isdir(os.path.join(profiles_dir, name)):
                continue
            base_fingerprint = name[: -len(".json")]
            if base_fingerprint in seen:
                continue
            path = self._legacy_profile_path(base_fingerprint)
            try:
                touched = self.backend.mtime(path)
            except OSError:
                # Deleted between the listing and the stat (a concurrent
                # eviction): skip the ghost instead of crashing or
                # inventorying a zero-byte phantom.
                if not self.backend.exists(path):
                    continue
                touched = 0.0
            inventory.append((touched, base_fingerprint, self._size(path)))
        return inventory

    def profile_bytes(self) -> int:
        """Total on-disk size of the cached-profile section."""
        return sum(size for _t, _fp, size in self._profile_inventory())

    def evict_profiles(self, budget_bytes: int, keep=frozenset()):
        """Evict least-recently-touched profile groups until the section
        fits ``budget_bytes``.  ``keep`` groups are never evicted (the
        writer protects the group it just flushed).  Returns
        ``(evicted_groups, freed_bytes)``."""
        return self._evict_lru(
            self._profile_inventory(), budget_bytes, keep, self.delete_profiles
        )

    # ------------------------------------------------------------------
    # Persisted run records (the result cache's on-disk tier)
    # ------------------------------------------------------------------
    def _results_dir(self) -> str:
        return os.path.join(self.root, "results")

    def _result_shard_dir(self, key: str) -> str:
        return os.path.join(self._results_dir(), shard_of(key))

    def _result_path(self, key: str) -> str:
        return os.path.join(self._result_shard_dir(key), f"{key}.json")

    def write_result(self, key: str, payload: dict) -> None:
        """Persist one run record under its canonical request key.

        Same shard layout, lock, and LRU bookkeeping as profile groups;
        ``result_budget_bytes`` (when set) evicts least-recently-touched
        records after every write, never the one just written."""
        path = self._result_path(key)
        shard_dir = os.path.dirname(path)
        self.backend.makedirs(shard_dir)
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        with self._dir_lock(shard_dir):
            self.backend.write_bytes(path, blob)
            self._count("writes", "results")
            self._count("write_bytes", "results", len(blob))
            self._update_shard_manifest(
                shard_dir,
                "results",
                "set",
                key,
                {"bytes": len(blob), "touched": _now()},
            )
        if self.result_budget_bytes is not None:
            self.evict_results(self.result_budget_bytes, keep=frozenset({key}))

    def read_result(self, key: str):
        """Stored payload for ``key``, or ``None`` when absent or corrupt
        (persisted runs are a pure optimization — damage degrades to
        re-running, and the next write overwrites the bad file).

        Reading touches the record's LRU clock, so replayed requests
        survive budget enforcement."""
        try:
            raw = self.backend.read_bytes(self._result_path(key))
            payload = json.loads(raw.decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        self._touch_result(key)
        self._count("reads", "results")
        self._count("read_bytes", "results", len(raw))
        return payload

    def _touch_result(self, key: str) -> None:
        self._touch_section_entry(
            self._result_shard_dir(key), "results", key, self._result_path(key)
        )

    def result_record_size(self, key: str) -> int:
        """On-disk byte size of one stored record (0 when absent) — lets
        a caller that just read the record budget it without
        re-serializing the payload."""
        return self._size(self._result_path(key))

    def delete_result(self, key: str) -> None:
        self._remove(self._result_path(key))
        shard_dir = self._result_shard_dir(key)
        if self._read_shard_section(shard_dir, "results").get(key):
            self._update_shard_manifest(shard_dir, "results", "del", key)

    def list_results(self) -> list:
        results_dir = self._results_dir()
        if not self.backend.isdir(results_dir):
            return []
        found = set()
        for name in self.backend.listdir(results_dir):
            shard_dir = os.path.join(results_dir, name)
            if not self.backend.isdir(shard_dir):
                continue
            for entry in self.backend.listdir(shard_dir):
                if entry.endswith(".json") and entry != "manifest.json":
                    found.add(entry[: -len(".json")])
        return sorted(found)

    def _result_inventory(self) -> list:
        """``(touched, key, bytes)`` for every stored run record (the
        shared sharded inventory; this section has no legacy layout)."""
        return self._sharded_inventory(self._results_dir(), "results", ".json")[0]

    def result_bytes(self) -> int:
        """Total on-disk size of the persisted run-record section."""
        return sum(size for _t, _k, size in self._result_inventory())

    def evict_results(self, budget_bytes: int, keep=frozenset()):
        """Evict least-recently-touched run records until the section
        fits ``budget_bytes``; returns ``(evicted, freed_bytes)``."""
        return self._evict_lru(
            self._result_inventory(), budget_bytes, keep, self.delete_result
        )

    # ------------------------------------------------------------------
    # Auxiliary metadata
    # ------------------------------------------------------------------
    def read_aux(self, name: str):
        """Auxiliary JSON metadata stored alongside the catalog (e.g. the
        CLI's corpus-generation parameters), or ``None`` if absent or
        unreadable."""
        try:
            return json.loads(
                self.backend.read_bytes(
                    os.path.join(self.root, name)
                ).decode("utf-8")
            )
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def write_aux(self, name: str, payload) -> None:
        """Atomically persist auxiliary JSON metadata in the store root."""
        self.backend.makedirs(self.root)
        self._write_json(os.path.join(self.root, name), payload)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate(self) -> dict:
        """Rewrite every legacy artifact into the current layout, in place.

        Layout-v1 flat objects (and any object stored under a non-default
        codec) are re-encoded with the default codec into their shard
        directory; flat profile groups move to sharded ``.npz``; the root
        manifest is rewritten at the current version.  Every step writes
        the new representation atomically before removing the old one, so
        a crash mid-migration leaves a store where every object is still
        readable (the read path checks both layouts) and a re-run
        finishes the job.  Idempotent: a fully-migrated store reports
        zero rewrites.  Returns ``{"objects": n, "profiles": n}``.
        """
        migrated_objects = 0
        for fingerprint in self.list_objects():
            if self.backend.exists(self._object_path(fingerprint, self.codec)):
                # Already migrated — but a crash between an earlier
                # rewrite and its cleanup can leave a superseded legacy
                # copy behind; finish that removal here.
                for codec in CODECS.values():
                    if codec is not self.codec:
                        self._remove(self._object_path(fingerprint, codec))
                self._remove(self._legacy_object_path(fingerprint))
                continue
            meta, entries = self.read_object(fingerprint)
            self.write_object(fingerprint, meta, entries, overwrite=True)
            migrated_objects += 1
        migrated_profiles = 0
        for base_fingerprint in self.list_profile_groups():
            if self.backend.exists(self._profile_path(base_fingerprint)):
                self._remove(self._legacy_profile_path(base_fingerprint))
                continue
            entries = self.read_profiles(base_fingerprint)
            self.write_profiles(base_fingerprint, entries)
            migrated_profiles += 1
        manifest = self.read_manifest()
        if manifest is not None and manifest.get("version") != VERSION:
            self.write_manifest(manifest["config"], manifest["tables"])
        return {"objects": migrated_objects, "profiles": migrated_profiles}

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def verify(self) -> dict:
        """Deep integrity check of every manifest and artifact.

        Decodes every stored object, loads every profile group, parses
        the root manifest, and cross-checks each shard manifest entry
        against the files it claims — the post-condition multi-writer
        and crash tests assert on.  Returns ``{"objects": n,
        "profile_groups": n, "problems": [...]}``; an intact store
        reports no problems."""
        problems = []
        try:
            self.read_manifest()
        except CatalogStoreError as error:
            problems.append(f"root manifest: {error}")
        objects = self.list_objects()
        for fingerprint in objects:
            # Every representation present is checked individually (the
            # read path falls through corrupt candidates, so a torn v3
            # beside a healthy v2 still reads — verify must flag it).
            found = 0
            for codec, path in self._object_candidates(fingerprint):
                try:
                    blob = self._read_artifact(codec, path)
                except FileNotFoundError:
                    continue
                found += 1
                try:
                    codec.check(blob)
                except CatalogStoreError as error:
                    problems.append(
                        f"object {fingerprint!r} at {path!r}: {error}"
                    )
            if not found:
                problems.append(
                    f"object {fingerprint!r}: no representation on disk"
                )
        objects_dir = self._objects_dir()
        if self.backend.isdir(objects_dir):
            for name in sorted(self.backend.listdir(objects_dir)):
                shard_dir = os.path.join(objects_dir, name)
                if not self.backend.isdir(shard_dir):
                    continue
                recorded = self._read_shard_section(shard_dir, "objects")
                tombstones = self._read_shard_section(shard_dir, "tombstones")
                for fingerprint, value in sorted(recorded.items()):
                    version = _record_codec(value)
                    if fingerprint in tombstones:
                        # The write/delete protocols update both sections
                        # in one atomic log append, so a fingerprint both
                        # recorded live and tombstoned is corruption.
                        problems.append(
                            f"shard {name}: object {fingerprint!r} is both "
                            "recorded live and tombstoned"
                        )
                    if version not in CODECS:
                        problems.append(
                            f"shard {name}: object {fingerprint!r} records "
                            f"unknown codec version {version!r}"
                        )
                        continue
                    if not self.has_object(fingerprint):
                        problems.append(
                            f"shard {name}: manifest references missing "
                            f"object {fingerprint!r}"
                        )
        groups = self.list_profile_groups()
        for group in groups:
            loaded = self._read_profile_file(self._profile_path(group))
            if loaded is self._CORRUPT_PROFILES:
                problems.append(f"profile group {group!r}: corrupt archive")
        results = self.list_results()
        for key in results:
            try:
                payload = json.loads(
                    self.backend.read_bytes(self._result_path(key)).decode(
                        "utf-8"
                    )
                )
                if not isinstance(payload, dict):
                    raise ValueError("not a dict")
            except FileNotFoundError:
                continue
            except (OSError, ValueError, UnicodeDecodeError):
                problems.append(f"run record {key!r}: corrupt")
        return {
            "objects": len(objects),
            "profile_groups": len(groups),
            "run_records": len(results),
            "tombstones": len(self.list_tombstones()),
            "problems": problems,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counts and on-disk footprint of the store."""
        manifest = self.read_manifest() or {"config": {}, "tables": {}}
        n_profiles = 0
        for group in self.list_profile_groups():
            # Count keys straight off the archive/JSON member list — stats
            # must not materialize every cached vector as a numpy array.
            try:
                with self.backend.open_read(self._profile_path(group)) as handle:
                    with np.load(handle) as payload:
                        n_profiles += len(payload.files)
                continue
            except FileNotFoundError:
                pass
            except Exception:
                continue
            try:
                payload = json.loads(
                    self.backend.read_bytes(
                        self._legacy_profile_path(group)
                    ).decode("utf-8")
                )
                n_profiles += len(payload.get("entries", {}))
            except (
                FileNotFoundError,
                json.JSONDecodeError,
                UnicodeDecodeError,
                AttributeError,
            ):
                pass
        return {
            "version": manifest.get("version", VERSION),
            "backend": self.backend.name,
            "tables": len(manifest["tables"]),
            "objects": len(self.list_objects()),
            "profile_groups": len(self.list_profile_groups()),
            "profile_entries": n_profiles,
            "profile_bytes": self.profile_bytes(),
            "run_records": len(self.list_results()),
            "result_bytes": self.result_bytes(),
            "tombstones": len(self.list_tombstones()),
            "leases": (
                len(self.leases.active(reap=False))
                if self.leases is not None
                else 0
            ),
            "disk_bytes": self.backend.disk_bytes(),
            "config": manifest["config"],
        }


