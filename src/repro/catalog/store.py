"""Content-addressed on-disk store backing the persistent catalog.

Layout under the store root::

    manifest.json          catalog config + {table name: fingerprint} snapshot
    objects/<fp>.json      per-table derived artifacts (distinct sets,
                           MinHash signatures, metadata), addressed by the
                           fingerprint of the source table
    profiles/<fp>.json     cached profile vectors, grouped by the
                           fingerprint of the base (query) table

Objects are immutable once written — a changed table gets a new
fingerprint and therefore a new object — so incremental updates never
rewrite artifacts of unchanged tables.  ``gc`` reclaims objects no live
table references.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro.discovery.index import ColumnEntry

VERSION = 1


class CatalogStoreError(RuntimeError):
    """Raised on store corruption or configuration mismatch."""


class CatalogStore:
    """Filesystem persistence for catalog artifacts."""

    def __init__(self, root: str):
        self.root = str(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def _object_path(self, fingerprint: str) -> str:
        return os.path.join(self.root, "objects", f"{fingerprint}.json")

    def _profile_path(self, base_fingerprint: str) -> str:
        return os.path.join(self.root, "profiles", f"{base_fingerprint}.json")

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def read_manifest(self):
        """Manifest dict, or ``None`` if the store was never saved."""
        if not self.exists():
            return None
        with open(self.manifest_path, encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise CatalogStoreError(
                    f"corrupt catalog manifest at {self.manifest_path!r}: {error}"
                ) from error
        version = manifest.get("version") if isinstance(manifest, dict) else None
        if version != VERSION:
            raise CatalogStoreError(
                f"catalog at {self.root!r} has version "
                f"{version!r}, expected {VERSION}"
            )
        return manifest

    def write_manifest(self, config: dict, tables: dict) -> None:
        """Persist config + the name→fingerprint snapshot atomically."""
        os.makedirs(self.root, exist_ok=True)
        payload = {
            "version": VERSION,
            "config": dict(config),
            "tables": dict(sorted(tables.items())),
        }
        _atomic_write_json(self.manifest_path, payload)

    # ------------------------------------------------------------------
    # Table objects
    # ------------------------------------------------------------------
    def has_object(self, fingerprint: str) -> bool:
        return os.path.exists(self._object_path(fingerprint))

    def write_object(
        self, fingerprint: str, meta: dict, entries: dict, overwrite: bool = False
    ) -> None:
        """Persist one table's derived artifacts (no-op if present:
        objects are content-addressed, so equal fingerprint ⇒ equal
        content).  ``overwrite`` forces the write — used when healing a
        corrupt file with freshly recomputed content."""
        path = self._object_path(fingerprint)
        if os.path.exists(path) and not overwrite:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "meta": dict(meta),
            "columns": {
                column: {
                    "distinct": sorted(entry.distinct),
                    "normalized": sorted(entry.normalized),
                    "signature": [int(x) for x in entry.signature.tolist()],
                }
                for column, entry in entries.items()
            },
        }
        _atomic_write_json(path, payload)

    def read_object(self, fingerprint: str):
        """Load ``(meta, {column: ColumnEntry})`` for one fingerprint."""
        path = self._object_path(fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise KeyError(f"no catalog object {fingerprint!r}") from None
        except json.JSONDecodeError as error:
            raise CatalogStoreError(
                f"corrupt catalog object at {path!r}: {error}"
            ) from error
        try:
            entries = {}
            for column, data in payload["columns"].items():
                distinct = frozenset(data["distinct"])
                if "normalized" in data:
                    normalized = frozenset(data["normalized"])
                else:
                    normalized = frozenset(v.strip().lower() for v in distinct)
                entries[column] = ColumnEntry(
                    distinct=distinct,
                    normalized=normalized,
                    signature=np.array(data["signature"], dtype=np.uint64),
                )
            return payload["meta"], entries
        except (KeyError, TypeError, AttributeError, ValueError, OverflowError) as error:
            # ValueError/OverflowError: JSON-valid but wrong-typed
            # signature data (np.array with dtype=uint64 rejects it).
            raise CatalogStoreError(
                f"corrupt catalog object at {path!r}: {error!r}"
            ) from error

    def delete_object(self, fingerprint: str) -> None:
        try:
            os.remove(self._object_path(fingerprint))
        except FileNotFoundError:
            pass

    def list_objects(self) -> list:
        """Fingerprints of all stored table objects."""
        objects_dir = os.path.join(self.root, "objects")
        if not os.path.isdir(objects_dir):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(objects_dir)
            if name.endswith(".json")
        )

    def gc(self, live_fingerprints) -> int:
        """Delete objects not in ``live_fingerprints``; returns the count."""
        live = set(live_fingerprints)
        removed = 0
        for fingerprint in self.list_objects():
            if fingerprint not in live:
                self.delete_object(fingerprint)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Index snapshot
    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, "snapshot.npz")

    def write_snapshot(self, rows) -> None:
        """Persist the hot index state: one (table, fingerprint, column,
        signature) row per indexed column, signatures packed into a single
        uint64 matrix.

        This is what makes warm starts fast — hydrating the LSH index
        needs only this one compact file; the bulky value sets stay in the
        per-table objects and are paged in lazily on first containment
        check.  Each row carries the source table's fingerprint so a
        reader can tell exactly which content the signatures belong to —
        a snapshot that is stale relative to the manifest (crash between
        the two writes) is then detected instead of silently served.
        """
        rows = list(rows)
        os.makedirs(self.root, exist_ok=True)
        # Fixed-width unicode arrays (never dtype=object): the file can
        # then be read back without allow_pickle, so opening a foreign
        # catalog directory cannot execute a pickle payload.
        tables = np.array([table for table, _f, _c, _s in rows], dtype=str)
        fingerprints = np.array(
            [fingerprint for _t, fingerprint, _c, _s in rows], dtype=str
        )
        columns = np.array([column for _t, _f, column, _s in rows], dtype=str)
        if rows:
            signatures = np.stack([signature for _t, _f, _c, signature in rows])
        else:
            signatures = np.empty((0, 0), dtype=np.uint64)
        fd, tmp = tempfile.mkstemp(
            prefix="snapshot.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    tables=tables,
                    fingerprints=fingerprints,
                    columns=columns,
                    signatures=signatures,
                )
            os.replace(tmp, self.snapshot_path)
        except BaseException:
            try:
                os.remove(tmp)
            except FileNotFoundError:
                pass
            raise

    def read_snapshot(self):
        """Load ``{table: (fingerprint, {column: signature})}``, or
        ``None`` if absent."""
        try:
            with np.load(self.snapshot_path) as payload:
                tables = payload["tables"]
                fingerprints = payload["fingerprints"]
                columns = payload["columns"]
                signatures = payload["signatures"].astype(np.uint64, copy=False)
        except FileNotFoundError:
            return None
        except Exception:
            # The snapshot is a pure optimization over the object store; a
            # corrupt/truncated file (np.load raises anything from
            # BadZipFile to UnpicklingError) must degrade to a slower
            # object-backed start, not crash warm loading.
            return None
        out = {}
        for i, table in enumerate(tables):
            fingerprint, per_column = out.setdefault(
                str(table), (str(fingerprints[i]), {})
            )
            per_column[str(columns[i])] = signatures[i]
        return out

    # ------------------------------------------------------------------
    # Profile vectors
    # ------------------------------------------------------------------
    def read_profiles(self, base_fingerprint: str) -> dict:
        """Cached ``{profile key: vector}`` for one base table."""
        path = self._profile_path(base_fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            return {
                key: np.array(vector, dtype=float)
                for key, vector in payload["entries"].items()
            }
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError, ValueError):
            # Like the snapshot, cached profiles are a pure optimization:
            # a corrupt file (including JSON-valid but non-numeric vector
            # entries) degrades to recomputation (and is overwritten by
            # the next flush), never fails a discovery run.
            return {}

    def write_profiles(self, base_fingerprint: str, entries: dict) -> None:
        path = self._profile_path(base_fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "entries": {
                key: [float(x) for x in np.asarray(vector).tolist()]
                for key, vector in sorted(entries.items())
            }
        }
        _atomic_write_json(path, payload)

    def list_profile_groups(self) -> list:
        profiles_dir = os.path.join(self.root, "profiles")
        if not os.path.isdir(profiles_dir):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(profiles_dir)
            if name.endswith(".json")
        )

    # ------------------------------------------------------------------
    # Auxiliary metadata
    # ------------------------------------------------------------------
    def read_aux(self, name: str):
        """Auxiliary JSON metadata stored alongside the catalog (e.g. the
        CLI's corpus-generation parameters), or ``None`` if absent or
        unreadable."""
        try:
            with open(os.path.join(self.root, name), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def write_aux(self, name: str, payload) -> None:
        """Atomically persist auxiliary JSON metadata in the store root."""
        os.makedirs(self.root, exist_ok=True)
        _atomic_write_json(os.path.join(self.root, name), payload)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counts and on-disk footprint of the store."""
        manifest = self.read_manifest() or {"config": {}, "tables": {}}
        n_profiles = 0
        for group in self.list_profile_groups():
            # Count keys straight off the JSON payload — stats must not
            # materialize every cached vector as a numpy array.
            try:
                with open(self._profile_path(group), encoding="utf-8") as handle:
                    n_profiles += len(json.load(handle).get("entries", {}))
            except (FileNotFoundError, json.JSONDecodeError, AttributeError):
                pass
        size = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                size += os.path.getsize(os.path.join(dirpath, name))
        return {
            "tables": len(manifest["tables"]),
            "objects": len(self.list_objects()),
            "profile_groups": len(self.list_profile_groups()),
            "profile_entries": n_profiles,
            "disk_bytes": size,
            "config": manifest["config"],
        }


def _atomic_write_json(path: str, payload) -> None:
    """Write JSON via a unique temp file + rename so readers never see
    partial content and concurrent writers cannot interleave into one
    temp file — last completed writer wins (best-effort on non-POSIX
    filesystems)."""
    fd, tmp = tempfile.mkstemp(
        prefix=f"{os.path.basename(path)}.", suffix=".tmp",
        dir=os.path.dirname(path) or ".",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except FileNotFoundError:
            pass
        raise
