"""Pluggable persistence backends for the catalog store.

:class:`CatalogStore` speaks to disk exclusively through a
:class:`StoreBackend` — a small filesystem-shaped contract (atomic blob
writes, atomic appends, directory listings, advisory locks) over
*absolute paths under the store root*.  Keeping paths as the addressing
scheme means the store's layout logic (shards, manifests, tombstones)
is backend-agnostic while every backend stays free to map those paths
onto whatever physical representation it wants:

:class:`LocalFSBackend`
    The default.  Each virtual path is exactly one real file, written
    via unique-temp-file + rename — byte-for-byte the layout the store
    has always produced, so existing stores open unchanged and golden
    byte-identity tests hold.

:class:`SegmentsBackend`
    An object-store shape: blobs are appended to immutable, append-only
    segment files (``segments/seg-<seq>.seg``) and located through a
    compacting ``segments/index.json`` manifest mapping each virtual
    path to ``(segment, offset, length)``.  Overwrites and deletions
    never touch old bytes — they re-point or drop the index entry and
    account the dead bytes as garbage; when garbage crosses a
    threshold, live blobs are rewritten into fresh segments and the old
    files removed.  Because sealed segments are immutable,
    :meth:`SegmentsBackend.sync_into` can replicate a consistent
    read-only snapshot of the whole store into another root ("node")
    by copying segment files and then publishing the index — the
    replication primitive the multi-node serving path builds on.

``backend_for`` picks the backend for a root: an explicit name wins,
otherwise a root carrying a segments index opens as segments and
anything else as local FS.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import shutil
import tempfile
from contextlib import contextmanager

from repro.utils.locks import FileLock


class CatalogStoreError(RuntimeError):
    """Raised on store corruption or configuration mismatch."""


class StoreBackend:
    """Filesystem-shaped persistence primitives behind the catalog store.

    All paths are absolute paths at or under the backend's root.  Every
    mutation is atomic at the single-call level: a reader never observes
    a partially written blob or a torn append.  Errors surface as the
    matching ``OSError`` subclasses (``FileNotFoundError`` for missing
    paths), so store-level recovery code works identically against any
    backend.
    """

    #: Short stable name ("local", "segments") for stats and the CLI.
    name: str

    root: str

    # -- reads ---------------------------------------------------------
    def open_read(self, path: str):
        """Binary, seekable file object over one blob."""
        raise NotImplementedError

    def read_bytes(self, path: str) -> bytes:
        with self.open_read(path) as handle:
            return handle.read()

    def open_mmap(self, path: str) -> memoryview:
        """Read-only buffer over one blob, memory-mapped when the
        backend supports it.

        The fallback is an in-memory copy, so every backend satisfies
        the contract; :class:`LocalFSBackend` returns a view over a real
        ``mmap`` so large artifacts are paged on demand and shared
        between processes by the OS page cache.  The buffer (and any
        numpy array viewing it) keeps the underlying map alive by
        reference; callers never manage the map's lifecycle explicitly.

        Never call this while holding a store lock: a page fault on a
        mapped artifact is disk I/O, and disk I/O under an in-process
        lock stalls every other thread (enforced by reprolint's
        mmap-under-lock rule).
        """
        return memoryview(self.read_bytes(path))

    # -- writes --------------------------------------------------------
    def write_bytes(self, path: str, data: bytes) -> None:
        """Atomically (re)write one blob."""
        raise NotImplementedError

    def append_bytes(self, path: str, data: bytes) -> None:
        """Atomically append ``data`` to ``path`` (created if absent)."""
        raise NotImplementedError

    @contextmanager
    def write_stream(self, path: str):
        """Writable binary stream that lands atomically on close (for
        large artifacts that should not be buffered twice when the
        backend can stream them)."""
        buffer = io.BytesIO()
        yield buffer
        self.write_bytes(path, buffer.getvalue())

    def remove(self, path: str) -> None:
        """Delete one blob; ``FileNotFoundError`` when absent."""
        raise NotImplementedError

    # -- namespace -----------------------------------------------------
    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def isdir(self, path: str) -> bool:
        raise NotImplementedError

    def listdir(self, path: str) -> list:
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        """Ensure a directory exists (no-op for backends whose
        directories are implied by their files)."""
        raise NotImplementedError

    def size(self, path: str) -> int:
        raise NotImplementedError

    def mtime(self, path: str) -> float:
        raise NotImplementedError

    # -- coordination --------------------------------------------------
    def lock(self, path: str):
        """Advisory exclusive lock context manager for one lock path
        (cross-process and cross-thread, like :class:`FileLock`)."""
        raise NotImplementedError

    # -- accounting ----------------------------------------------------
    def disk_bytes(self) -> int:
        """Physical bytes this store occupies on disk."""
        raise NotImplementedError

    def sync_into(self, dest_root: str) -> dict:
        """Replicate a consistent read-only snapshot into ``dest_root``.

        Only backends with immutable physical artifacts support this;
        others raise :class:`CatalogStoreError`."""
        raise CatalogStoreError(
            f"backend {self.name!r} does not support snapshot replication"
        )


class LocalFSBackend(StoreBackend):
    """One virtual path == one real file; the historical store layout."""

    name = "local"

    def __init__(self, root: str):
        self.root = str(root)

    def open_read(self, path: str):
        return open(path, "rb")

    def open_mmap(self, path: str) -> memoryview:
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                # Zero-length files cannot be mapped; an empty buffer is
                # the correct (and equally zero-copy) answer.
                return memoryview(b"")
        # The memoryview holds the only reference to the map; it is
        # unmapped when the last view (or array viewing it) is dropped.
        return memoryview(mapped)

    def write_bytes(self, path: str, data: bytes) -> None:
        # Unique temp file + rename: readers never see partial content
        # and concurrent writers cannot interleave into one temp file —
        # last completed writer wins.
        fd, tmp = tempfile.mkstemp(
            prefix=f"{os.path.basename(path)}.", suffix=".tmp",
            dir=os.path.dirname(path) or ".",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except FileNotFoundError:
                pass
            raise

    def append_bytes(self, path: str, data: bytes) -> None:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    @contextmanager
    def write_stream(self, path: str):
        # Streamed straight into the temp file (not via an in-memory
        # buffer): the snapshot is the largest single artifact, and
        # buffering it would double peak memory on every save.
        fd, tmp = tempfile.mkstemp(
            prefix=f"{os.path.basename(path)}.", suffix=".tmp",
            dir=os.path.dirname(path) or ".",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                yield handle
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except FileNotFoundError:
                pass
            raise

    def remove(self, path: str) -> None:
        os.remove(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def isdir(self, path: str) -> bool:
        return os.path.isdir(path)

    def listdir(self, path: str) -> list:
        return os.listdir(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def size(self, path: str) -> int:
        return os.path.getsize(path)

    def mtime(self, path: str) -> float:
        return os.path.getmtime(path)

    def lock(self, path: str):
        return FileLock(path)

    def disk_bytes(self) -> int:
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    # Concurrently deleted (an eviction, a gc) between
                    # the walk and the stat: skip, never crash stats.
                    continue
        return total


class SegmentsBackend(StoreBackend):
    """Immutable append-only segments + a compacting index manifest.

    Physical layout under the root::

        segments/seg-00000001.seg   append-only blob data
        segments/index.json         {"next_seq", "active", "garbage",
                                     "files": {rel path: {seg, off, len, ts}}}
        locks/<mangled rel>.lock    real lock files backing ``lock()``

    Every mutation runs under one root-level index lock and publishes by
    atomically rewriting the index, so readers always observe a
    consistent mapping.  Directories are implied by file paths — there
    is nothing to create or clean up.  Dead bytes (overwritten or
    removed blobs) accumulate as ``garbage`` until compaction rewrites
    the live set into fresh segments (sequence numbers are never
    reused) and deletes the old files.
    """

    name = "segments"

    SEGMENT_DIR = "segments"
    INDEX_NAME = "index.json"

    def __init__(
        self,
        root: str,
        segment_bytes: int = 4 * 1024 * 1024,
        compact_min_garbage: int = 256 * 1024,
        compact_garbage_ratio: float = 0.5,
    ):
        self.root = str(root)
        self.segment_bytes = int(segment_bytes)
        self.compact_min_garbage = int(compact_min_garbage)
        self.compact_garbage_ratio = float(compact_garbage_ratio)
        self._seg_dir = os.path.join(self.root, self.SEGMENT_DIR)
        self._index_path = os.path.join(self._seg_dir, self.INDEX_NAME)
        self._lock_dir = os.path.join(self.root, "locks")
        #: Compactions performed (introspection for tests/benchmarks).
        self.compactions = 0

    # -- index ---------------------------------------------------------
    def _ilock(self):
        return FileLock(os.path.join(self._seg_dir, ".index.lock"))

    def _load_index(self) -> dict:
        try:
            with open(self._index_path, "rb") as handle:
                index = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return {"version": 1, "next_seq": 1, "active": None, "garbage": 0,
                    "files": {}}
        except (OSError, ValueError, UnicodeDecodeError) as error:
            raise CatalogStoreError(
                f"corrupt segments index at {self._index_path!r}: {error}"
            ) from error
        if not isinstance(index, dict) or not isinstance(
            index.get("files"), dict
        ):
            raise CatalogStoreError(
                f"corrupt segments index at {self._index_path!r}: not an index"
            )
        return index

    def _store_index(self, index: dict) -> None:
        os.makedirs(self._seg_dir, exist_ok=True)
        blob = json.dumps(index, sort_keys=True).encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            prefix="index.", suffix=".tmp", dir=self._seg_dir
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, self._index_path)
        except BaseException:
            try:
                os.remove(tmp)
            except FileNotFoundError:
                pass
            raise

    def _rel(self, path: str) -> str:
        rel = os.path.relpath(str(path), self.root)
        if rel.startswith(".."):
            raise CatalogStoreError(
                f"path {path!r} is outside the segments store root "
                f"{self.root!r}"
            )
        return rel.replace(os.sep, "/")

    def _segment_path(self, name: str) -> str:
        return os.path.join(self._seg_dir, name)

    # -- reads ---------------------------------------------------------
    def open_read(self, path: str):
        rel = self._rel(path)
        # A compaction can delete the segment between the (lock-free)
        # index read and the data read — retry with a fresh index.
        for attempt in range(3):
            entry = self._load_index()["files"].get(rel)
            if entry is None:
                raise FileNotFoundError(2, "No such stored blob", path)
            try:
                with open(self._segment_path(entry["seg"]), "rb") as handle:
                    handle.seek(int(entry["off"]))
                    data = handle.read(int(entry["len"]))
            except FileNotFoundError:
                if attempt == 2:
                    raise
                continue
            if len(data) != int(entry["len"]):
                raise CatalogStoreError(
                    f"segments store: blob {rel!r} truncated in "
                    f"{entry['seg']!r}"
                )
            return io.BytesIO(data)
        raise FileNotFoundError(2, "No such stored blob", path)  # pragma: no cover

    def open_mmap(self, path: str) -> memoryview:
        rel = self._rel(path)
        # Same compaction race as open_read: the segment can vanish
        # between the index read and the map — retry with a fresh index.
        # Sealed segments are immutable, so once mapped the slice is
        # stable for the life of the view even if a later compaction
        # unlinks the file (the mapping outlives the directory entry).
        for attempt in range(3):
            entry = self._load_index()["files"].get(rel)
            if entry is None:
                raise FileNotFoundError(2, "No such stored blob", path)
            offset, length = int(entry["off"]), int(entry["len"])
            try:
                with open(self._segment_path(entry["seg"]), "rb") as handle:
                    if length == 0:
                        return memoryview(b"")
                    mapped = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
            except FileNotFoundError:
                if attempt == 2:
                    raise
                continue
            if offset + length > len(mapped):
                raise CatalogStoreError(
                    f"segments store: blob {rel!r} truncated in "
                    f"{entry['seg']!r}"
                )
            # The slice keeps the parent view (and the map) alive.
            return memoryview(mapped)[offset : offset + length]
        raise FileNotFoundError(2, "No such stored blob", path)  # pragma: no cover

    # -- writes --------------------------------------------------------
    def _append_blob(self, index: dict, rel: str, data: bytes) -> None:
        """Append ``data`` to the active segment and point ``rel`` at it
        (caller holds the index lock and publishes the index)."""
        active = index.get("active")
        os.makedirs(self._seg_dir, exist_ok=True)
        if active is not None:
            try:
                offset = os.path.getsize(self._segment_path(active))
            except FileNotFoundError:
                active, offset = None, 0
        else:
            offset = 0
        if active is None or (offset and offset + len(data) > self.segment_bytes):
            active = f"seg-{int(index['next_seq']):08d}.seg"
            index["next_seq"] = int(index["next_seq"]) + 1
            index["active"] = active
            offset = 0
        fd = os.open(
            self._segment_path(active),
            os.O_WRONLY | os.O_APPEND | os.O_CREAT,
            0o644,
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        old = index["files"].get(rel)
        if old is not None:
            index["garbage"] = int(index.get("garbage", 0)) + int(old["len"])
        index["files"][rel] = {
            "seg": active, "off": offset, "len": len(data),
            "ts": os.path.getmtime(self._segment_path(active)),
        }

    def _maybe_compact(self, index: dict) -> None:
        garbage = int(index.get("garbage", 0))
        live = sum(int(e["len"]) for e in index["files"].values())
        if garbage < self.compact_min_garbage:
            return
        if garbage < self.compact_garbage_ratio * max(1, garbage + live):
            return
        self.compact(index)

    def compact(self, index: dict = None) -> None:
        """Rewrite live blobs into fresh segments and drop the old files.

        With ``index`` given the caller already holds the index lock (the
        internal auto-compaction path); otherwise the lock is taken here.
        """
        if index is None:
            with self._ilock():
                self.compact(self._load_index())
            return
        old_segments = {e["seg"] for e in index["files"].values()}
        if index.get("active"):
            old_segments.add(index["active"])
        index["active"] = None
        index["garbage"] = 0
        for rel in sorted(index["files"]):
            entry = index["files"][rel]
            with open(self._segment_path(entry["seg"]), "rb") as handle:
                handle.seek(int(entry["off"]))
                data = handle.read(int(entry["len"]))
            self._append_blob(index, rel, data)
        index["garbage"] = 0  # rewrites re-counted their old bytes
        self._store_index(index)
        self.compactions += 1
        kept = {e["seg"] for e in index["files"].values()}
        if index.get("active"):
            kept.add(index["active"])
        for name in old_segments - kept:
            try:
                os.remove(self._segment_path(name))
            except FileNotFoundError:
                pass

    def write_bytes(self, path: str, data: bytes) -> None:
        rel = self._rel(path)
        with self._ilock():
            index = self._load_index()
            self._append_blob(index, rel, data)
            self._store_index(index)
            self._maybe_compact(index)

    def append_bytes(self, path: str, data: bytes) -> None:
        rel = self._rel(path)
        with self._ilock():
            index = self._load_index()
            entry = index["files"].get(rel)
            if entry is None:
                current = b""
            else:
                with open(self._segment_path(entry["seg"]), "rb") as handle:
                    handle.seek(int(entry["off"]))
                    current = handle.read(int(entry["len"]))
            self._append_blob(index, rel, current + data)
            self._store_index(index)
            self._maybe_compact(index)

    def remove(self, path: str) -> None:
        rel = self._rel(path)
        with self._ilock():
            index = self._load_index()
            entry = index["files"].pop(rel, None)
            if entry is None:
                raise FileNotFoundError(2, "No such stored blob", path)
            index["garbage"] = int(index.get("garbage", 0)) + int(entry["len"])
            self._store_index(index)
            self._maybe_compact(index)

    # -- namespace (directories are implied by file paths) -------------
    def exists(self, path: str) -> bool:
        rel = self._rel(path)
        if rel == ".":
            return True
        files = self._load_index()["files"]
        return rel in files or any(f.startswith(rel + "/") for f in files)

    def isdir(self, path: str) -> bool:
        rel = self._rel(path)
        if rel == ".":
            return True
        files = self._load_index()["files"]
        return rel not in files and any(
            f.startswith(rel + "/") for f in files
        )

    def listdir(self, path: str) -> list:
        rel = self._rel(path)
        prefix = "" if rel == "." else rel + "/"
        names = set()
        matched = False
        for f in self._load_index()["files"]:
            if not f.startswith(prefix):
                continue
            matched = True
            names.add(f[len(prefix):].split("/", 1)[0])
        if not matched and rel != ".":
            raise FileNotFoundError(2, "No such directory", path)
        return sorted(names)

    def makedirs(self, path: str) -> None:
        self._rel(path)  # validate only; directories are implied

    def size(self, path: str) -> int:
        entry = self._load_index()["files"].get(self._rel(path))
        if entry is None:
            raise FileNotFoundError(2, "No such stored blob", path)
        return int(entry["len"])

    def mtime(self, path: str) -> float:
        entry = self._load_index()["files"].get(self._rel(path))
        if entry is None:
            raise FileNotFoundError(2, "No such stored blob", path)
        return float(entry.get("ts", 0.0))

    # -- coordination --------------------------------------------------
    def lock(self, path: str):
        # Virtual lock paths map onto real lock files in one flat dir —
        # flock needs an actual inode even when the "directory" being
        # locked exists only inside segments.
        rel = self._rel(path).replace("/", "__")
        return FileLock(os.path.join(self._lock_dir, rel))

    # -- accounting ----------------------------------------------------
    def disk_bytes(self) -> int:
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    continue
        return total

    def sync_into(self, dest_root: str) -> dict:
        """Publish a consistent read-only replica under ``dest_root``.

        Holds the index lock for the duration, so the copied segments
        cannot be compacted away mid-copy; segment files land before the
        index does, so a reader of the destination never sees an index
        pointing at missing data.  Re-running is incremental: sealed
        segments already present (same size) are skipped.
        """
        dest_root = str(dest_root)
        if os.path.abspath(dest_root) == os.path.abspath(self.root):
            raise CatalogStoreError("cannot sync a segments store into itself")
        dest_seg_dir = os.path.join(dest_root, self.SEGMENT_DIR)
        copied = 0
        with self._ilock():
            index = self._load_index()
            os.makedirs(dest_seg_dir, exist_ok=True)
            segments = {e["seg"] for e in index["files"].values()}
            if index.get("active"):
                segments.add(index["active"])
            for name in sorted(segments):
                src = self._segment_path(name)
                dst = os.path.join(dest_seg_dir, name)
                try:
                    if os.path.getsize(dst) == os.path.getsize(src):
                        continue
                except OSError:
                    pass
                fd, tmp = tempfile.mkstemp(
                    prefix=f"{name}.", suffix=".tmp", dir=dest_seg_dir
                )
                os.close(fd)
                try:
                    shutil.copyfile(src, tmp)
                    os.replace(tmp, dst)
                except BaseException:
                    try:
                        os.remove(tmp)
                    except FileNotFoundError:
                        pass
                    raise
                copied += 1
            blob = json.dumps(index, sort_keys=True).encode("utf-8")
            fd, tmp = tempfile.mkstemp(
                prefix="index.", suffix=".tmp", dir=dest_seg_dir
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, os.path.join(dest_seg_dir, self.INDEX_NAME))
            except BaseException:
                try:
                    os.remove(tmp)
                except FileNotFoundError:
                    pass
                raise
        return {
            "segments": len(segments),
            "copied": copied,
            "files": len(index["files"]),
        }


#: Registered backends by name (the CLI's ``--backend`` choices).
BACKENDS = {
    LocalFSBackend.name: LocalFSBackend,
    SegmentsBackend.name: SegmentsBackend,
}


def backend_for(root, backend=None) -> StoreBackend:
    """Resolve the backend for a store root.

    ``backend`` may be a :class:`StoreBackend` instance (used as-is), a
    registered name, or ``None`` — in which case a root that carries a
    segments index opens as segments and anything else as the local FS
    layout, so reopening an existing store never needs the flag."""
    if isinstance(backend, StoreBackend):
        return backend
    root = str(root)
    if backend is None:
        index = os.path.join(
            root, SegmentsBackend.SEGMENT_DIR, SegmentsBackend.INDEX_NAME
        )
        if os.path.exists(index):
            return SegmentsBackend(root)
        return LocalFSBackend(root)
    try:
        return BACKENDS[backend](root)
    except KeyError:
        raise CatalogStoreError(
            f"unknown store backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)}"
        ) from None
