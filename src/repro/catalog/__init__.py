"""Persistent catalog: on-disk, incrementally-updatable discovery state.

The Metam paper assumes a pre-built Aurum index; this package is the
production analogue for the reproduction — a content-addressed store of
per-table artifacts (distinct-value sets, MinHash signatures, metadata,
profile vectors) plus a :class:`Catalog` facade that maintains a live
:class:`~repro.discovery.index.DiscoveryIndex` incrementally and
warm-starts discovery runs from disk instead of re-indexing the corpus.

Store layout (version 2)
    Objects and profile groups are sharded into 256 hash-prefix
    directories (``objects/ab/<fp>.bin``), each with an advisory
    per-shard manifest, so no directory or manifest grows unboundedly as
    the corpus scales; version-1 flat layouts are read through
    transparently and migrate in place via :meth:`CatalogStore.migrate`
    (CLI: ``repro catalog build --migrate``).

Codec versioning
    Column entries serialize through a versioned
    :class:`~repro.catalog.store.Codec`: version 2 is a packed,
    zlib-deflated binary format several times smaller than version 1's
    JSON, which stays registered as a legacy decoder forever.  Readers
    pick the codec per file, so mixed-codec stores are fine.

Eviction knobs
    Cached profile groups are LRU-tracked (byte size + last-touch time
    in the shard manifests).  ``CatalogStore(profile_budget_bytes=...)``
    enforces a size budget on every flush;
    :meth:`Catalog.evict_profiles` / ``repro catalog gc
    --profile-budget`` enforce it on demand.

Catalog-backed reports
    :meth:`Catalog.corpus_stats` serves the Table-I corpus report
    entirely from disk artifacts (object metadata + stored signatures
    and value sets) — no corpus loading, no column re-signing; only a
    transient LSH over the stored signatures is rebuilt in memory.

Backends and write ownership
    All physical I/O goes through a :class:`StoreBackend`
    (:class:`LocalFSBackend` keeps the byte-identical plain-file layout;
    :class:`SegmentsBackend` packs blobs into immutable append-only
    segment files with a compacting index, syncable to read-only replica
    roots).  Writers hold fencing-token leases
    (:class:`~repro.catalog.leases.LeaseManager`) spanning their
    write→save window, and ``gc`` both skips lease-stamped objects and
    re-checks liveness under the shard lock — closing the race where a
    concurrently written object was reclaimed before its ``save()``
    landed.
"""

from repro.catalog.backend import (
    BACKENDS,
    LocalFSBackend,
    SegmentsBackend,
    StoreBackend,
    backend_for,
)
from repro.catalog.catalog import Catalog, CatalogDiff, ProfileCache
from repro.catalog.leases import Lease, LeaseManager
from repro.catalog.fingerprint import (
    config_fingerprint,
    corpus_fingerprint,
    profile_key,
    registry_fingerprint,
    result_key,
    shard_of,
    table_fingerprint,
)
from repro.catalog.refresh import CatalogRefresher, CatalogSnapshot
from repro.catalog.store import (
    CODECS,
    BinaryCodec,
    CatalogStore,
    CatalogStoreError,
    Codec,
    JsonCodec,
)

__all__ = [
    "Catalog",
    "CatalogDiff",
    "CatalogRefresher",
    "CatalogSnapshot",
    "ProfileCache",
    "CatalogStore",
    "CatalogStoreError",
    "Codec",
    "JsonCodec",
    "BinaryCodec",
    "CODECS",
    "table_fingerprint",
    "config_fingerprint",
    "corpus_fingerprint",
    "profile_key",
    "registry_fingerprint",
    "result_key",
    "shard_of",
    "StoreBackend",
    "LocalFSBackend",
    "SegmentsBackend",
    "BACKENDS",
    "backend_for",
    "Lease",
    "LeaseManager",
]
