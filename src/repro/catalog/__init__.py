"""Persistent catalog: on-disk, incrementally-updatable discovery state.

The Metam paper assumes a pre-built Aurum index; this package is the
production analogue for the reproduction — a content-addressed store of
per-table artifacts (distinct-value sets, MinHash signatures, metadata,
profile vectors) plus a :class:`Catalog` facade that maintains a live
:class:`~repro.discovery.index.DiscoveryIndex` incrementally and
warm-starts discovery runs from disk instead of re-indexing the corpus.
"""

from repro.catalog.catalog import Catalog, CatalogDiff, ProfileCache
from repro.catalog.fingerprint import (
    config_fingerprint,
    profile_key,
    registry_fingerprint,
    table_fingerprint,
)
from repro.catalog.store import CatalogStore, CatalogStoreError

__all__ = [
    "Catalog",
    "CatalogDiff",
    "ProfileCache",
    "CatalogStore",
    "CatalogStoreError",
    "table_fingerprint",
    "config_fingerprint",
    "profile_key",
    "registry_fingerprint",
]
