"""Content fingerprints: the staleness test of the persistent catalog.

A table fingerprint digests the table's identity (name, source) and every
cell, so any change to schema or data produces a new fingerprint and the
catalog knows its persisted signatures/profiles for that table are stale.
Fingerprints also address the on-disk object store: derived artifacts are
stored under the fingerprint of the table they were computed from.
"""

from __future__ import annotations

import hashlib
import json

_MISSING = b"\x00\x00"


def shard_of(key: str) -> str:
    """Two-hex-digit shard prefix for an on-disk artifact key.

    Hashes the whole key instead of slicing it: object ids are
    ``<config fp>-<table fp>`` strings whose leading characters are
    identical for every object of one catalog, so a naive prefix would
    put the entire store in a single shard.  256 shards keep directory
    sizes and per-shard manifests bounded at any corpus scale.
    """
    return hashlib.blake2b(key.encode("utf-8"), digest_size=1).hexdigest()


def table_fingerprint(table) -> str:
    """Hex digest of a table's full content (name, source, schema, cells).

    The name participates because derived artifacts are name-dependent
    (LSH keys are (table, column) pairs and the down-sampling seed mixes
    in the table name), so two identical tables under different names do
    not share catalog objects.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(table.name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(table.source.encode("utf-8"))
    for column in table.column_names:
        digest.update(b"\x00col\x00")
        digest.update(column.encode("utf-8"))
        digest.update(_MISSING)
        # repr() of the whole cell list runs in C and is type-faithful
        # (1 vs 1.0 vs '1' vs None all digest differently); hashing one
        # blob per column keeps fingerprinting out of the warm-start
        # critical path.
        digest.update(repr(table.column(column)).encode("utf-8"))
    return digest.hexdigest()


def corpus_fingerprint(fingerprints: dict) -> str:
    """Hex digest of a whole corpus' content: its sorted ``{table name:
    table fingerprint}`` map.

    This is the content-addressed analogue of the engine's in-process
    corpus epoch — two processes serving the same tables compute the
    same digest, so artifacts stamped with it (persisted run records)
    stay valid across restarts and invalidate exactly when any table's
    content, name, or membership changes.
    """
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(fingerprints):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(fingerprints[name]).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def result_key(
    base_fingerprint: str,
    registry_fp: str,
    descriptor: str,
    corpus_fp: str,
    catalog_config_fp: str,
    version: str,
) -> str:
    """On-disk key of one persisted run record.

    Everything that determines a cacheable request's outcome, content-
    addressed: the base table's content, the profile registry, the
    request's canonical descriptor, the whole corpus' content, the
    catalog index configuration (which governs warm-start discovery),
    and the library version (a new release must never replay records a
    different implementation produced).  Matching keys imply a valid
    replay on any process, which is what lets run records warm-start
    across restarts.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in (
        base_fingerprint,
        registry_fp,
        descriptor,
        corpus_fp,
        catalog_config_fp,
        version,
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_fingerprint(config: dict) -> str:
    """Hex digest of an index/catalog configuration dict."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def _profile_identity(obj) -> str:
    """Recursive identity of a profile (or nested helper object): class
    name plus every public attribute.  Private attributes are skipped —
    they hold memoization caches, not configuration."""
    parts = [type(obj).__name__]
    for attr, value in sorted(vars(obj).items()):
        if attr.startswith("_"):
            continue
        if hasattr(value, "__dict__"):
            parts.append(f"{attr}=<{_profile_identity(value)}>")
        else:
            parts.append(f"{attr}={value!r}")
    return ";".join(parts)


def registry_fingerprint(registry) -> str:
    """Hex digest of a profile registry's full configuration.

    Profile *names* are fixed class attributes, so two registries can
    share names while computing different vectors (different ``dim``,
    ``bins``, seeds, …).  Cached profile vectors must therefore be keyed
    by this digest, which covers every public constructor parameter, in
    registry order.
    """
    digest = hashlib.blake2b(digest_size=8)
    for profile in registry:
        digest.update(_profile_identity(profile).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def profile_key(
    base_fingerprint: str,
    aug_id: str,
    table_fingerprints,
    registry_names,
    sample_size: int,
    seed: int,
) -> str:
    """Cache key of one candidate's profile vector.

    Mixes in the fingerprints of every table on the candidate's join path:
    profile vectors derive deterministically from the base table plus those
    tables, so matching keys imply identical vectors.
    """
    digest = hashlib.blake2b(digest_size=16)
    parts = (
        [base_fingerprint, aug_id]
        + list(table_fingerprints)
        + list(registry_names)
        + [str(sample_size), str(seed)]
    )
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
