"""The multi-tenant discovery service: admission, fairness, lifecycle.

:class:`DiscoveryService` is the transport-agnostic core of
discovery-as-a-service — everything the HTTP layer does that is not
sockets lives here, so tests drive the full serving semantics without a
port.  It fronts one :class:`~repro.api.engine.DiscoveryEngine` per
catalog (sessions naming the same catalog share the engine — that is
the "engine-per-catalog reuse" of the session lifecycle) and adds what
the engine deliberately does not have:

* **Admission control.**  Every submission passes three gates before it
  touches an engine: the service must not be draining, the tenant's
  token bucket (:mod:`repro.server.quota`) must admit it, and the
  catalog's queue of undispatched runs must be under budget.  A refusal
  is a typed :class:`~repro.api.errors.Overloaded` carrying
  ``retry_after`` — the HTTP layer turns it into 429 + ``Retry-After``.
  Quota refusals never consume queue capacity, so a noisy tenant cannot
  starve the queue for the others.
* **Fair scheduling with priorities.**  The engine's pool is FIFO; the
  service keeps its own per-tenant queues and dispatches round-robin
  across tenants (highest ``priority`` first within a tenant, FIFO
  within a priority) into a slot budget equal to the engine's
  ``max_workers``.  Two tenants at full blast each get half the pool.
* **Run lifecycle and event fan-in.**  Each accepted submission becomes
  a service-scoped run handle (``run-000001``-style ids) whose state
  moves ``queued → running → completed|cancelled|failed``.  The
  engine's typed event stream is buffered per run and re-served to any
  number of subscribers (:meth:`DiscoveryService.events` — the SSE
  source) — a subscriber that disconnects affects nothing, and a run
  cancelled before the engine ever saw it gets a synthesized terminal
  ``run-completed(status="cancelled")`` event so streams always end
  with a terminal event.
* **Graceful drain.**  :meth:`shutdown` stops admitting (new
  submissions get ``Overloaded``), cancels still-queued runs, waits for
  executing runs to finish, and shuts the engines down.

All service metrics are stamped with a ``tenant`` label on the shared
registry; tenant names pass through a validity gate at session creation
and the registry's per-family cardinality guardrail bounds the series
count under tenant churn (overflow collapses into ``_other_``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from repro.api.errors import Internal, InvalidRequest, NotFound, Overloaded
from repro.api.events import RunCancelled, RunCompleted
from repro.api.wire import request_from_wire, run_to_wire
from repro.obs.logcfg import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.server.quota import TenantQuotas

_log = get_logger("server")

#: Characters allowed in tenant names (they become metric label values
#: and appear in URLs; keep them boring).
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


@dataclass(frozen=True)
class ServiceConfig:
    """Admission and scheduling knobs of one :class:`DiscoveryService`.

    Attributes
    ----------
    max_queue_depth:
        Maximum *undispatched* runs per catalog; submissions beyond it
        are refused with :class:`~repro.api.errors.Overloaded`.
    tenant_rate / tenant_burst:
        Token-bucket refill rate (requests/second) and capacity shared
        by every tenant's bucket.  ``rate <= 0`` disables refill.
    overload_retry_after:
        ``Retry-After`` seconds suggested when the refusal has no
        natural deadline (queue full, draining).
    max_sessions:
        Cap on concurrently open sessions across all tenants.
    drain_timeout:
        Default seconds :meth:`DiscoveryService.shutdown` waits for
        executing runs before giving up on a clean drain.
    """

    max_queue_depth: int = 32
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    overload_retry_after: float = 1.0
    max_sessions: int = 1024
    drain_timeout: float = 30.0


@dataclass
class _Session:
    session_id: str
    tenant: str
    catalog: str
    created_at: float

    def describe(self) -> dict:
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "catalog": self.catalog,
        }


@dataclass
class _ServiceRun:
    """Service-side record of one submitted run (all mutable state is
    guarded by the service lock; the event buffer by its own condition)."""

    run_id: str
    session_id: str
    tenant: str
    catalog: str
    priority: int
    request: object
    state: str = "queued"  # queued | running | completed | cancelled | failed
    future: object = None
    cancel_requested: bool = False
    record: Optional[dict] = None
    error: Optional[BaseException] = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # Event fan-in buffer: the engine's progress callback appends, any
    # number of SSE subscribers read.  `_events_done` marks the stream
    # terminal (no further events will ever arrive).
    events: list = field(default_factory=list)
    events_cond: threading.Condition = field(default_factory=threading.Condition)
    events_done: bool = False

    TERMINAL = frozenset({"completed", "cancelled", "failed"})

    @property
    def terminal(self) -> bool:
        return self.state in self.TERMINAL

    def push_event(self, event) -> None:
        with self.events_cond:
            if self.events_done:
                return
            self.events.append(event)
            self.events_cond.notify_all()

    def close_events(self) -> None:
        with self.events_cond:
            self.events_done = True
            self.events_cond.notify_all()

    def describe(self) -> dict:
        out = {
            "run_id": self.run_id,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "catalog": self.catalog,
            "priority": self.priority,
            "state": self.state,
            "events_seen": len(self.events),
        }
        if self.record is not None:
            out["record"] = self.record
        if self.error is not None:
            from repro.api.wire import error_to_wire

            out["error"] = error_to_wire(self.error)["error"]
        return out


class _CatalogEntry:
    """One served catalog: its (lazily built) engine plus the fair
    scheduler state for runs against it."""

    def __init__(
        self, name: str, factory: Callable[[], object], bases: dict = None
    ):
        self.name = name
        self.factory = factory
        # Extra request-base tables by name (scenario bases are not part
        # of the served corpus; candidates never join against them).
        self.bases = dict(bases or {})
        self.engine = None
        # tenant -> deque of queued _ServiceRun (not yet dispatched).
        self.queues: Dict[str, deque] = {}
        # Round-robin pointer: tenants already served this cycle.
        self.rr: deque = deque()
        self.slots = 0  # free engine workers (set when engine is built)
        self.active = 0  # dispatched, not yet resolved

    def queued_count(self) -> int:
        return sum(len(q) for q in self.queues.values())


class DiscoveryService:
    """Session, run, and admission manager over one or more engines.

    Parameters
    ----------
    catalogs:
        ``name -> factory`` of the catalogs this service may serve; the
        factory is called at most once (on the first session naming the
        catalog) and must return a ready
        :class:`~repro.api.engine.DiscoveryEngine` with a corpus
        attached.  Factories receive the service's shared
        ``MetricsRegistry`` via the ``metrics`` keyword when they accept
        one, so ``/metrics`` exposes engine and service families
        together.
    bases:
        Optional ``catalog name -> {table name -> Table}`` of extra
        tables requests may name as their base without the table being
        part of the served corpus (a scenario's input dataset is not a
        join candidate).  The served corpus always resolves first.
    config:
        :class:`ServiceConfig` admission/scheduling knobs.
    metrics:
        Shared registry (``None`` creates a private one).  Pass the
        registry engines were built on to merge expositions.
    clock:
        Injectable monotonic clock for quota buckets (tests).
    """

    def __init__(
        self,
        catalogs: Dict[str, Callable[..., object]],
        *,
        bases: Dict[str, dict] = None,
        config: ServiceConfig = None,
        metrics: MetricsRegistry = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not catalogs:
            raise ValueError("a service needs at least one catalog factory")
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        bases = bases or {}
        self._entries = {
            name: _CatalogEntry(name, factory, bases.get(name))
            for name, factory in catalogs.items()
        }
        self._quotas = TenantQuotas(
            self.config.tenant_rate, self.config.tenant_burst, clock
        )
        self._sessions: Dict[str, _Session] = {}
        self._runs: Dict[str, _ServiceRun] = {}
        self._session_seq = itertools.count(1)
        self._run_seq = itertools.count(1)
        self._draining = False
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._init_metrics()

    def _init_metrics(self) -> None:
        registry = self.metrics
        self._m_requests = registry.counter(
            "repro_server_requests_total",
            "Run submissions by admission outcome",
            labels=("tenant", "outcome"),
        )
        self._m_runs = registry.counter(
            "repro_server_runs_total",
            "Service runs resolved, by terminal state",
            labels=("tenant", "status"),
        )
        self._m_queue_depth = registry.gauge(
            "repro_server_queue_depth",
            "Undispatched runs held by the fair scheduler",
            labels=("catalog",),
        )
        self._m_active = registry.gauge(
            "repro_server_active_runs",
            "Runs dispatched to an engine and not yet resolved",
            labels=("catalog",),
        )
        self._m_sessions = registry.gauge(
            "repro_server_sessions", "Open sessions"
        )
        self._m_queue_wait = registry.histogram(
            "repro_server_queue_wait_seconds",
            "Time from admission to dispatch",
            labels=("tenant",),
            buckets=(0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0),
        )

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def create_session(self, tenant: str, catalog: str = None) -> dict:
        """Open a session for ``tenant`` against ``catalog`` (default:
        the sole catalog when only one is served).

        Sessions naming the same catalog share one engine.  Raises
        :class:`InvalidRequest` on a bad tenant/catalog name and
        :class:`Overloaded` at the session cap or while draining.
        """
        tenant = self._validate_tenant(tenant)
        if catalog is None:
            if len(self._entries) == 1:
                catalog = next(iter(self._entries))
            else:
                raise InvalidRequest(
                    "this service hosts several catalogs; the session "
                    "must name one (field 'catalog')",
                    details={"catalogs": sorted(self._entries)},
                )
        if catalog not in self._entries:
            raise NotFound(
                f"unknown catalog {catalog!r}",
                details={"catalogs": sorted(self._entries)},
            )
        with self._lock:
            if self._draining:
                raise Overloaded(
                    "service is draining; no new sessions",
                    retry_after=self.config.overload_retry_after,
                )
            if len(self._sessions) >= self.config.max_sessions:
                raise Overloaded(
                    f"session cap reached ({self.config.max_sessions})",
                    retry_after=self.config.overload_retry_after,
                )
            session = _Session(
                session_id=f"s-{next(self._session_seq):06d}",
                tenant=tenant,
                catalog=catalog,
                created_at=time.monotonic(),
            )
            self._sessions[session.session_id] = session
            self._m_sessions.set(float(len(self._sessions)))
        # Build the engine outside the lock: catalog factories may do
        # real I/O (opening a persistent store) and must not serialize
        # the whole service behind it.
        self._engine_for(catalog)
        return session.describe()

    def close_session(self, session_id: str) -> dict:
        """Close one session (its already-submitted runs keep running)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise NotFound(f"unknown session {session_id!r}")
            self._m_sessions.set(float(len(self._sessions)))
        return session.describe()

    def get_session(self, session_id: str) -> dict:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise NotFound(f"unknown session {session_id!r}")
            return session.describe()

    def _validate_tenant(self, tenant) -> str:
        if not isinstance(tenant, str) or not tenant:
            raise InvalidRequest(
                "session must name its tenant (field 'tenant')",
                details={"field": "tenant"},
            )
        if len(tenant) > 64 or not set(tenant) <= _TENANT_CHARS:
            raise InvalidRequest(
                f"invalid tenant name {tenant!r} (<= 64 chars from "
                "[A-Za-z0-9._-])",
                details={"field": "tenant"},
            )
        return tenant

    def _engine_for(self, catalog: str):
        entry = self._entries[catalog]
        with self._lock:
            engine = entry.engine
        if engine is not None:
            return engine
        # Factory call outside the service lock (it may open stores,
        # generate corpora, ...); first-build races are settled under
        # the lock below and the loser's engine is shut down.
        try:
            built = entry.factory(metrics=self.metrics)
        except TypeError:
            built = entry.factory()
        except Exception as error:
            raise Internal(
                f"catalog {catalog!r} failed to open: {error}"
            ) from error
        with self._lock:
            if entry.engine is None:
                entry.engine = built
                entry.slots = built.max_workers
                return built
            winner = entry.engine
        built.shutdown(wait=False)
        return winner

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def submit(self, session_id: str, payload: dict, priority: int = 0) -> dict:
        """Admit, queue, and (when a slot is free) dispatch one run.

        Returns the run's description (``state`` is ``queued`` or
        ``running``).  Raises :class:`NotFound` for a bad session,
        :class:`Overloaded` on any admission refusal, and
        :class:`InvalidRequest` when the payload does not parse against
        the session's corpus.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise NotFound(f"unknown session {session_id!r}")
        tenant, catalog = session.tenant, session.catalog
        try:
            priority = int(priority)
        except (TypeError, ValueError):
            raise InvalidRequest(
                f"priority must be an int, got {priority!r}",
                details={"field": "priority"},
            ) from None
        engine = self._engine_for(catalog)
        entry = self._entries[catalog]
        with self._lock:
            if self._draining:
                self._m_requests.labels(
                    tenant=tenant, outcome="rejected_draining"
                ).inc()
                raise Overloaded(
                    "service is draining; run not admitted",
                    retry_after=self.config.overload_retry_after,
                )
        # Quota gate first: a rate-limited tenant must be refused before
        # it can occupy queue capacity (never queue starvation).
        admitted, retry_after = self._quotas.try_acquire(tenant)
        if not admitted:
            self._m_requests.labels(tenant=tenant, outcome="rejected_quota").inc()
            raise Overloaded(
                f"tenant {tenant!r} is over its request quota",
                retry_after=(
                    retry_after
                    if retry_after != float("inf")
                    else self.config.overload_retry_after
                ),
                details={"tenant": tenant},
            )
        # Parse before taking a queue slot: a malformed request must
        # never count against the backpressure budget.  The base table
        # resolves against the served corpus first, then the catalog's
        # registered extra bases (scenario inputs).
        lookup = dict(engine.corpus)
        for base_name, table in entry.bases.items():
            lookup.setdefault(base_name, table)
        try:
            request = request_from_wire(payload, lookup)
        except InvalidRequest:
            self._m_requests.labels(tenant=tenant, outcome="invalid").inc()
            raise
        with self._lock:
            if entry.queued_count() >= self.config.max_queue_depth:
                self._m_requests.labels(
                    tenant=tenant, outcome="rejected_queue"
                ).inc()
                raise Overloaded(
                    f"catalog {catalog!r} queue is full "
                    f"({self.config.max_queue_depth} runs waiting)",
                    retry_after=self.config.overload_retry_after,
                    details={"catalog": catalog},
                )
            run = _ServiceRun(
                run_id=f"run-{next(self._run_seq):06d}",
                session_id=session_id,
                tenant=tenant,
                catalog=catalog,
                priority=priority,
                request=request,
            )
            self._runs[run.run_id] = run
            entry.queues.setdefault(tenant, deque()).append(run)
            if tenant not in entry.rr:
                # A tenant new to the rotation has not had a turn this
                # cycle: it enters at the front, ahead of tenants that
                # were already served.
                entry.rr.appendleft(tenant)
            self._m_requests.labels(tenant=tenant, outcome="accepted").inc()
            self._m_queue_depth.labels(catalog=catalog).set(
                float(entry.queued_count())
            )
        _log.info(
            "run admitted", run_id=run.run_id, tenant=tenant, catalog=catalog
        )
        self._pump(entry)
        with self._lock:
            return run.describe()

    def status(self, run_id: str) -> dict:
        """Current description of one run (terminal states carry the
        full wire run record)."""
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise NotFound(f"unknown run {run_id!r}")
            return run.describe()

    def cancel(self, run_id: str) -> dict:
        """Cooperatively cancel one run at whatever stage it is in.

        Still-queued runs never reach an engine (their event stream gets
        a synthesized terminal cancelled event); executing runs stop at
        their next utility query and resolve through the normal path.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise NotFound(f"unknown run {run_id!r}")
            if run.terminal:
                return run.describe()
            entry = self._entries[run.catalog]
            if run.state == "queued":
                queue = entry.queues.get(run.tenant)
                if queue is not None and run in queue:
                    queue.remove(run)
                self._finalize_locked(run, "cancelled", synthesize=True)
                self._m_queue_depth.labels(catalog=run.catalog).set(
                    float(entry.queued_count())
                )
                return run.describe()
            run.cancel_requested = True
            future = run.future
        # Executing (or racing dispatch): fire the token outside the
        # lock; resolution flows through the future's done callback.  A
        # cancel that lands in the dispatch window (state "running",
        # future not yet attached) is caught by the flag — _pump checks
        # it right after attaching the future.
        if future is not None:
            future.cancel()
        _log.info("run cancel requested", run_id=run_id)
        with self._lock:
            return run.describe()

    # ------------------------------------------------------------------
    # Fair dispatch
    # ------------------------------------------------------------------
    def _pump(self, entry: _CatalogEntry) -> None:
        """Dispatch queued runs into free engine slots, fairly.

        Tenants are served round-robin (the ``rr`` deque rotates); within
        a tenant the highest priority wins, FIFO inside a priority
        level.  Runs are picked under the lock but handed to
        ``engine.submit`` outside it.
        """
        while True:
            with self._lock:
                run = self._pick_locked(entry)
                if run is None:
                    return
                entry.slots -= 1
                entry.active += 1
                run.state = "running"
                run.started_at = time.monotonic()
                self._m_queue_depth.labels(catalog=entry.name).set(
                    float(entry.queued_count())
                )
                self._m_active.labels(catalog=entry.name).set(
                    float(entry.active)
                )
                self._m_queue_wait.labels(tenant=run.tenant).observe(
                    run.started_at - run.submitted_at
                )
                engine = entry.engine
            future = engine.submit(run.request, progress=run.push_event)
            with self._lock:
                run.future = future
                cancel_raced = run.cancel_requested
            if cancel_raced:
                future.cancel()
            future.add_done_callback(
                lambda f, run=run, entry=entry: self._resolve(entry, run, f)
            )

    def _pick_locked(self, entry: _CatalogEntry):
        """Next run to dispatch, or ``None`` (lock held by caller)."""
        if entry.slots <= 0 or entry.engine is None:
            return None
        for _ in range(len(entry.rr)):
            tenant = entry.rr[0]
            entry.rr.rotate(-1)
            queue = entry.queues.get(tenant)
            if not queue:
                continue
            best = max(queue, key=lambda r: r.priority)
            queue.remove(best)
            return best
        return None

    def _resolve(self, entry: _CatalogEntry, run: _ServiceRun, future) -> None:
        """Done-callback of one dispatched run (worker thread)."""
        record = None
        error: Optional[BaseException] = None
        status = "completed"
        try:
            result = future.result(timeout=0)
            status = "cancelled" if result.cancelled else "completed"
            record = run_to_wire(result)
        except RunCancelled:
            # Cancelled while queued inside the engine pool: no engine
            # run ever existed, so the terminal event is synthesized.
            status = "cancelled"
        except Exception as exc:  # noqa: BLE001 - recorded, not swallowed
            status = "failed"
            error = exc
            _log.error("run failed", run_id=run.run_id, error=repr(exc))
        with self._lock:
            entry.slots += 1
            entry.active -= 1
            run.record = record
            run.error = error
            self._finalize_locked(run, status, synthesize=record is None)
            self._m_active.labels(catalog=entry.name).set(float(entry.active))
        self._pump(entry)

    def _finalize_locked(
        self, run: _ServiceRun, status: str, synthesize: bool
    ) -> None:
        """Move a run to its terminal state (lock held by caller)."""
        run.state = status
        run.finished_at = time.monotonic()
        self._m_runs.labels(tenant=run.tenant, status=status).inc()
        if synthesize and status != "completed":
            run.push_event(
                RunCompleted(status=status, utility=0.0, queries=0, seconds=0.0)
            )
        run.close_events()
        self._idle.notify_all()

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    def events(self, run_id: str, timeout: float = None) -> Iterator:
        """Iterate one run's typed events, blocking for new ones until
        the stream is terminal.

        Yields every buffered event from the beginning (late subscribers
        replay the history), then live events as they arrive, and
        returns once the run's stream closes — the last yielded event is
        always terminal (``run-completed``).  ``timeout`` bounds each
        wait; expiry raises ``TimeoutError`` so a serving layer never
        blocks forever on a wedged run.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise NotFound(f"unknown run {run_id!r}")
        index = 0
        while True:
            with run.events_cond:
                while len(run.events) <= index and not run.events_done:
                    if not run.events_cond.wait(timeout=timeout):
                        raise TimeoutError(
                            f"no event from {run_id} within {timeout}s"
                        )
                if len(run.events) <= index and run.events_done:
                    return
                batch = list(run.events[index:])
            for event in batch:
                yield event
            index += len(batch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def list_runs(self, session_id: str = None) -> list:
        with self._lock:
            runs = [
                run.describe()
                for run in self._runs.values()
                if session_id is None or run.session_id == session_id
            ]
        return runs

    def metrics_prometheus(self) -> str:
        """Prometheus exposition of the shared registry (service and
        engine families together; engine gauges refreshed first)."""
        with self._lock:
            engines = [
                e.engine for e in self._entries.values() if e.engine is not None
            ]
        for engine in engines:
            if engine.metrics is self.metrics:
                engine.metrics_snapshot()  # refresh derived gauges
        return self.metrics.to_prometheus()

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "runs": len(self._runs),
                "draining": self._draining,
                "catalogs": {
                    name: {
                        "engine_built": entry.engine is not None,
                        "queued": entry.queued_count(),
                        "active": entry.active,
                        "free_slots": entry.slots,
                    }
                    for name, entry in self._entries.items()
                },
            }

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = None) -> bool:
        """Graceful drain: refuse new work, cancel queued runs, wait for
        executing runs, shut engines down.

        Returns ``True`` when every run reached a terminal state within
        ``timeout`` (default :attr:`ServiceConfig.drain_timeout`).
        Idempotent.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        with self._lock:
            self._draining = True
            # Queued runs never got a slot; they end here, cancelled.
            for entry in self._entries.values():
                for queue in entry.queues.values():
                    while queue:
                        self._finalize_locked(
                            queue.popleft(), "cancelled", synthesize=True
                        )
                self._m_queue_depth.labels(catalog=entry.name).set(0.0)
            deadline = time.monotonic() + max(0.0, timeout)
            clean = True
            while any(e.active for e in self._entries.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._idle.wait(timeout=remaining):
                    clean = False
                    break
            engines = [
                e.engine for e in self._entries.values() if e.engine is not None
            ]
        for engine in engines:
            engine.shutdown(wait=clean)
        _log.info("service drained", clean=clean)
        return clean
