"""Discovery-as-a-service: the multi-tenant serving layer.

:class:`DiscoveryService` (:mod:`repro.server.service`) is the
transport-agnostic core — sessions, admission control, per-tenant
quotas and fair scheduling, run lifecycle, event fan-in, graceful
drain — over one :class:`~repro.api.engine.DiscoveryEngine` per served
catalog.  :func:`serve` (:mod:`repro.server.http`) puts the stdlib
HTTP/JSON + SSE front-end in front of it; ``repro serve`` is the CLI
entry point.  All payloads crossing the wire use the versioned schemas
of :mod:`repro.api.wire` and all failures the typed
:class:`~repro.api.errors.ReproError` taxonomy.
"""

from repro.server.http import DiscoveryHTTPServer, serve
from repro.server.quota import TenantQuotas, TokenBucket
from repro.server.service import DiscoveryService, ServiceConfig

__all__ = [
    "DiscoveryService",
    "ServiceConfig",
    "DiscoveryHTTPServer",
    "serve",
    "TokenBucket",
    "TenantQuotas",
]
