"""Zero-dependency HTTP/JSON front-end over :class:`DiscoveryService`.

Stdlib only — :class:`http.server.ThreadingHTTPServer` with one handler
thread per connection — because the repo's rule is that the serving
stack must run anywhere the library does.  The handler is a thin
translation layer: parse, call the service, serialize; every semantic
decision (admission, fairness, lifecycle) lives in
:mod:`repro.server.service` where tests reach it without a socket.

Routes (all payloads are versioned wire envelopes, see
:mod:`repro.api.wire`)::

    POST   /v1/sessions            open a session  {tenant, catalog?}
    GET    /v1/sessions/{id}       describe a session
    DELETE /v1/sessions/{id}       close a session
    POST   /v1/runs                submit  {session, request, priority?}
    GET    /v1/runs/{id}           status / terminal run record
    DELETE /v1/runs/{id}           cooperative cancel
    GET    /v1/runs/{id}/events    typed event stream as SSE
    GET    /metrics                Prometheus exposition (per-tenant labels)
    GET    /healthz                liveness probe

Failures are typed :class:`~repro.api.errors.ReproError`\\ s; the
handler maps ``http_status`` onto the response line, serializes the
error envelope as the body, and adds ``Retry-After`` for
:class:`~repro.api.errors.Overloaded` — one taxonomy, one mapping.

SSE frames follow the eventsource contract: ``event:`` carries the
event's ``kind``, ``data:`` its wire JSON, ``id:`` its sequence number.
The stream ends after the terminal ``run-completed`` event.  A client
that disconnects mid-stream tears down only its own handler thread —
the run is never cancelled by a lost subscriber; only an explicit
``DELETE`` does that.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.errors import InvalidRequest, NotFound, Overloaded, ReproError
from repro.api.wire import (
    dumps,
    envelope,
    error_to_wire,
    event_to_wire,
    loads,
    open_envelope,
)
from repro.obs.logcfg import get_logger
from repro.server.service import DiscoveryService

_log = get_logger("server.http")

#: Largest request body the server will read (a request is a small JSON
#: description; anything bigger is a mistake or an attack).
MAX_BODY_BYTES = 1 << 20


class DiscoveryHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`DiscoveryService`."""

    daemon_threads = True

    def __init__(self, address, service: DiscoveryService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def drain(self, timeout: float = None) -> bool:
        """Graceful shutdown: stop accepting, drain the service.

        Returns the service's drain verdict (``True`` = every run
        reached a terminal state in time).
        """
        self.shutdown()
        clean = self.service.shutdown(timeout=timeout)
        self.server_close()
        return clean


def serve(
    service: DiscoveryService, host: str = "127.0.0.1", port: int = 0
) -> DiscoveryHTTPServer:
    """Bind and start serving on a daemon thread; returns the server
    (``server.url`` has the bound address — ``port=0`` picks a free
    one).  Call ``server.drain()`` to stop."""
    server = DiscoveryHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    thread.start()
    _log.info("serving", url=server.url)
    return server


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-discovery"

    # -- routing -------------------------------------------------------
    def do_GET(self):  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self):  # noqa: N802
        self._route("POST")

    def do_DELETE(self):  # noqa: N802
        self._route("DELETE")

    def _route(self, method: str) -> None:
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        try:
            if parts == ["healthz"] and method == "GET":
                self._send_json(200, envelope({"status": "ok"}))
            elif parts == ["metrics"] and method == "GET":
                self._send_text(200, service.metrics_prometheus())
            elif parts == ["v1", "sessions"] and method == "POST":
                body = open_envelope(self._read_body())
                session = service.create_session(
                    body.get("tenant"), body.get("catalog")
                )
                self._send_json(201, envelope({"session": session}))
            elif len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                if method == "GET":
                    session = service.get_session(parts[2])
                    self._send_json(200, envelope({"session": session}))
                elif method == "DELETE":
                    session = service.close_session(parts[2])
                    self._send_json(200, envelope({"session": session}))
                else:
                    raise InvalidRequest(f"{method} not supported here")
            elif parts == ["v1", "runs"] and method == "POST":
                body = open_envelope(self._read_body())
                request = body.get("request")
                if not isinstance(request, dict):
                    raise InvalidRequest(
                        "submission must carry its discovery request "
                        "(field 'request')",
                        details={"field": "request"},
                    )
                run = service.submit(
                    str(body.get("session", "")),
                    request,
                    priority=body.get("priority", 0),
                )
                self._send_json(202, envelope({"run": run}))
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                if method == "GET":
                    self._send_json(
                        200, envelope({"run": service.status(parts[2])})
                    )
                elif method == "DELETE":
                    self._send_json(
                        200, envelope({"run": service.cancel(parts[2])})
                    )
                else:
                    raise InvalidRequest(f"{method} not supported here")
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "runs"]
                and parts[3] == "events"
                and method == "GET"
            ):
                self._stream_events(parts[2])
            else:
                raise NotFound(f"no route for {method} {path}")
        except ReproError as error:
            self._send_error(error)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response; its runs are untouched.
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - boundary: 500, not a crash
            _log.error("unhandled", path=path, error=repr(error))
            self._send_error(error)

    # -- SSE -----------------------------------------------------------
    def _stream_events(self, run_id: str) -> None:
        service = self.server.service
        # Fail before committing to the stream: an unknown run must be a
        # clean 404 JSON error, not a broken event stream.
        service.status(run_id)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # No Content-Length: the stream ends when the connection closes.
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        sequence = 0
        try:
            for event in service.events(run_id):
                frame = (
                    f"event: {event.kind}\n"
                    f"id: {sequence}\n"
                    f"data: {dumps(event_to_wire(event)).decode('utf-8')}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sequence += 1
        except (BrokenPipeError, ConnectionResetError):
            # Disconnect mid-stream: drop this subscriber, nothing else.
            _log.info("sse subscriber dropped", run_id=run_id)

    # -- plumbing ------------------------------------------------------
    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise InvalidRequest(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        return loads(self.rfile.read(length))

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_bytes(status, dumps(payload), "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _send_error(self, error: BaseException) -> None:
        wired = error_to_wire(error)
        status = wired["error"]["http_status"]
        extra = {}
        if isinstance(error, Overloaded):
            extra["Retry-After"] = f"{max(0.0, error.retry_after):.3f}"
        self._send_bytes(status, dumps(wired), "application/json", extra)

    def _send_bytes(
        self, status: int, body: bytes, content_type: str, extra: dict = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        # Route access logs through the structured logger instead of
        # raw stderr writes.
        _log.debug("http", detail=format % args)
