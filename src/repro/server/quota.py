"""Per-tenant admission quotas: deterministic token buckets.

A :class:`TokenBucket` meters one tenant's request rate; a
:class:`TenantQuotas` map lazily creates one bucket per tenant and
answers the only question admission control asks: *may this tenant
submit now, and if not, when should it retry?*

The clock is injected (``clock=time.monotonic`` by default) so tests
drive admission decisions deterministically — no sleeping, no flaky
rate assertions.  Buckets are thread-safe; refill is computed lazily on
each acquire from the elapsed clock delta, so an idle bucket costs
nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Tuple


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``
    tokens per second.

    ``try_acquire`` never blocks: it answers ``(admitted, retry_after)``
    where ``retry_after`` is the seconds until one token will be
    available (0.0 when admitted) — exactly what an HTTP 429 needs for
    its ``Retry-After`` header.

    ``rate <= 0`` disables refill: the tenant gets ``burst`` requests
    ever (useful for tests and hard caps).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> Tuple[bool, float]:
        """Take ``n`` tokens if available.

        Returns ``(True, 0.0)`` when admitted, else ``(False,
        retry_after_seconds)``.  ``n`` larger than ``burst`` can never
        be admitted; ``retry_after`` is then ``inf``.
        """
        if n <= 0:
            return True, 0.0
        with self._lock:
            now = self._clock()
            if self.rate > 0:
                elapsed = max(0.0, now - self._stamp)
                self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return True, 0.0
            deficit = n - self._tokens
            if self.rate <= 0 or n > self.burst:
                return False, float("inf")
            return False, deficit / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (refill not applied; diagnostic only)."""
        with self._lock:
            return self._tokens


class TenantQuotas:
    """Lazy per-tenant :class:`TokenBucket` map with shared settings.

    One instance guards one service: every tenant gets an identical
    bucket on first use.  The map is unbounded by design — tenants are
    admitted by the service's session layer, which caps how many exist;
    the *metric* side of tenant cardinality is bounded separately by the
    registry guardrail.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, tenant: str, n: float = 1.0) -> Tuple[bool, float]:
        """Admission decision for one request from ``tenant``."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self._clock)
                self._buckets[tenant] = bucket
        return bucket.try_acquire(n)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
