"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value, name: str):
    """Validate that ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value, name: str):
    """Validate that ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_choices(value, name: str, choices):
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)!r}, got {value!r}")
    return value
