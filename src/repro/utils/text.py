"""Tokenization helpers used by profiles and the discovery index."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def normalize_token(token: str) -> str:
    """Lowercase and strip a token; the canonical form used everywhere."""
    return token.strip().lower()


def tokenize(text: str) -> list:
    """Split ``text`` into normalized alphanumeric tokens.

    Splits on any non-alphanumeric character, so ``"taxi_trips-2019"``
    yields ``["taxi", "trips", "2019"]``.
    """
    if text is None:
        return []
    return [normalize_token(t) for t in _TOKEN_RE.findall(str(text))]
