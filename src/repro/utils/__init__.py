"""Shared utilities: deterministic RNG handling, statistics, text helpers."""

from repro.utils.lru import LruDict
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.stats import (
    pearson,
    spearman,
    mutual_information,
    entropy_discrete,
    fisher_z_pvalue,
    partial_correlation,
)
from repro.utils.text import tokenize, normalize_token
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
    check_in_choices,
)

__all__ = [
    "LruDict",
    "ensure_rng",
    "spawn_rng",
    "pearson",
    "spearman",
    "mutual_information",
    "entropy_discrete",
    "fisher_z_pvalue",
    "partial_correlation",
    "tokenize",
    "normalize_token",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_in_choices",
]
