"""A small bounded mapping with least-recently-used eviction.

Shared by the serving engine's prepared-candidate cache, its result
cache, and the catalog's streaming stats pass, so the eviction policy
(dict insertion order as recency, refresh on read, evict the oldest at
capacity) exists exactly once.
"""

from __future__ import annotations


class LruDict:
    """Mapping bounded to ``capacity`` entries, LRU-evicted.

    Reads refresh recency; putting a new key at capacity evicts the
    least recently touched entry.  ``capacity=None`` disables entry
    counting (an ordinary dict with recency tracking).

    ``max_bytes`` adds an independent size budget: every :meth:`put`
    may carry a ``size`` (the entry's cost in bytes), and entries are
    evicted oldest-first until the total cost fits the budget.  An entry
    whose own size exceeds the budget is not stored at all — admitting
    it would evict the entire cache and still not fit.
    """

    def __init__(self, capacity: int = None, max_bytes: int = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries = {}  # insertion order = recency (moved on touch)
        self._sizes = {}
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, default=None):
        """Value for ``key`` (refreshes its recency), or ``default``."""
        if key not in self._entries:
            return default
        value = self._entries.pop(key)
        self._entries[key] = value
        return value

    def put(self, key, value, size: int = 0) -> bool:
        """Insert ``key``; returns ``False`` when the entry alone
        overflows ``max_bytes`` and was therefore not stored (an
        existing value under ``key`` is left untouched — a hopeless
        insert must not destroy data either)."""
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        self._evict_key(key)
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._evict_key(next(iter(self._entries)))
        if self.max_bytes is not None:
            while self._entries and self.total_bytes + size > self.max_bytes:
                self._evict_key(next(iter(self._entries)))
        self._entries[key] = value
        if size:
            self._sizes[key] = size
            self.total_bytes += size
        return True

    def _evict_key(self, key) -> None:
        self._entries.pop(key, None)
        self.total_bytes -= self._sizes.pop(key, 0)

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.total_bytes = 0
