"""A small bounded mapping with least-recently-used eviction.

Shared by the serving engine's prepared-candidate cache and the
catalog's streaming stats pass, so the eviction policy (dict insertion
order as recency, refresh on read, evict the oldest at capacity) exists
exactly once.
"""

from __future__ import annotations


class LruDict:
    """Mapping bounded to ``capacity`` entries, LRU-evicted.

    Reads refresh recency; putting a new key at capacity evicts the
    least recently touched entry.  ``capacity=None`` disables eviction
    (an ordinary dict with recency tracking).
    """

    def __init__(self, capacity: int = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries = {}  # insertion order = recency (moved on touch)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, default=None):
        """Value for ``key`` (refreshes its recency), or ``default``."""
        if key not in self._entries:
            return default
        value = self._entries.pop(key)
        self._entries[key] = value
        return value

    def put(self, key, value) -> None:
        self._entries.pop(key, None)
        if self.capacity is not None and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()
