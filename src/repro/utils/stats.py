"""Statistical primitives shared by profiles, tasks and causal inference.

Implemented on numpy/scipy only.  All functions are defensive about
degenerate inputs (constant columns, tiny samples, NaNs) because profile
computation runs over noisy open-data-style tables where those cases are
the norm, not the exception.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special


def _clean_pair(x, y):
    """Drop rows where either value is NaN; return float arrays."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    mask = ~(np.isnan(x) | np.isnan(y))
    return x[mask], y[mask]


def pearson(x, y) -> float:
    """Pearson correlation in [-1, 1]; 0.0 for degenerate inputs."""
    x, y = _clean_pair(x, y)
    if x.size < 2:
        return 0.0
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    r = float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))
    return max(-1.0, min(1.0, r))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties handled, like scipy's rankdata."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


def spearman(x, y) -> float:
    """Spearman rank correlation; 0.0 for degenerate inputs."""
    x, y = _clean_pair(x, y)
    if x.size < 2:
        return 0.0
    return pearson(_rankdata(x), _rankdata(y))


def entropy_discrete(labels) -> float:
    """Shannon entropy (nats) of a discrete label sequence."""
    values, counts = np.unique(np.asarray(labels), return_counts=True)
    if counts.size <= 1:
        return 0.0
    p = counts / counts.sum()
    return float(-np.sum(p * np.log(p)))


def mutual_information(x, y, bins: int = 8) -> float:
    """Histogram mutual information estimate (nats), >= 0.

    Continuous inputs are discretized into equal-frequency bins, which is
    robust to skewed open-data distributions.  Returns 0 for degenerate
    inputs.
    """
    x, y = _clean_pair(x, y)
    if x.size < 4:
        return 0.0
    xb = _equal_frequency_bins(x, bins)
    yb = _equal_frequency_bins(y, bins)
    joint = np.zeros((xb.max() + 1, yb.max() + 1), dtype=float)
    np.add.at(joint, (xb, yb), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (px * py), 1.0)
        mi = float(np.sum(np.where(joint > 0, joint * np.log(ratio), 0.0)))
    return max(0.0, mi)


def _equal_frequency_bins(values: np.ndarray, bins: int) -> np.ndarray:
    """Assign each value to an equal-frequency bin index."""
    if np.unique(values).size <= bins:
        # Already discrete enough: map each distinct value to its own bin.
        _, inverse = np.unique(values, return_inverse=True)
        return inverse
    quantiles = np.quantile(values, np.linspace(0, 1, bins + 1)[1:-1])
    return np.searchsorted(quantiles, values, side="right")


def partial_correlation(data: np.ndarray, i: int, j: int, cond: tuple = ()) -> float:
    """Partial correlation of columns ``i`` and ``j`` given columns ``cond``.

    Computed by regressing out the conditioning set via least squares.
    ``data`` is an (n_samples, n_vars) float matrix.
    """
    x = data[:, i].astype(float)
    y = data[:, j].astype(float)
    if cond:
        z = data[:, list(cond)].astype(float)
        z = np.column_stack([np.ones(len(z)), z])
        # Residualize both variables on the conditioning set.
        beta_x, *_ = np.linalg.lstsq(z, x, rcond=None)
        beta_y, *_ = np.linalg.lstsq(z, y, rcond=None)
        x = x - z @ beta_x
        y = y - z @ beta_y
    return pearson(x, y)


def fisher_z_pvalue(r: float, n: int, n_cond: int = 0) -> float:
    """Two-sided p-value for H0: partial correlation == 0 via Fisher's z.

    ``n`` is the sample size and ``n_cond`` the size of the conditioning set.
    """
    dof = n - n_cond - 3
    if dof <= 0:
        return 1.0
    r = max(-0.999999, min(0.999999, r))
    z = 0.5 * math.log((1 + r) / (1 - r)) * math.sqrt(dof)
    return float(2.0 * (1.0 - _std_normal_cdf(abs(z))))


def _std_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + float(special.erf(z / math.sqrt(2.0))))
