"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``.  Centralizing the
coercion here keeps experiments reproducible: a benchmark fixes one seed and
all downstream components derive independent streams from it.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged so streams can be threaded through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed)!r}")


def spawn_rng(rng: np.random.Generator, n: int = 1):
    """Derive ``n`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a single top-level seed
    fans out into reproducible, non-overlapping streams for sub-components.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    children = [np.random.default_rng(int(s)) for s in seeds]
    return children[0] if n == 1 else children
