"""Locking primitives shared by the concurrent engine and catalog store.

Two small tools with one job each:

:class:`KeyedMutex`
    In-process striped locking: one mutex per *key*, created on first
    use and dropped when the last holder releases, so disjoint keys
    never contend and the registry stays bounded by the number of keys
    currently being worked on (not the key history).

:class:`FileLock`
    Advisory inter-process lock on a sidecar file (``fcntl.flock``),
    layered over an in-process re-entrant lock so the same lock path is
    safe to take from many threads of one process *and* from many
    processes at once.  On platforms without ``fcntl`` it degrades to
    the in-process layer only (best-effort, like every advisory lock).
"""

from __future__ import annotations

import os
import threading

try:  # POSIX only; the in-process layer still applies elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX
    fcntl = None


class KeyedMutex:
    """One lock per key, with automatic cleanup.

    ``with mutex(key):`` serializes holders of equal keys while holders
    of different keys proceed concurrently.  Lock objects are created on
    demand and removed when no thread holds or waits on them, so the
    internal registry never grows with the history of keys seen.
    """

    def __init__(self):
        self._guard = threading.Lock()
        self._entries = {}  # key -> [lock, active holders + waiters]

    def __call__(self, key):
        return _KeyedMutexGuard(self, key)

    def __len__(self) -> int:
        """Number of keys currently locked or waited on."""
        with self._guard:
            return len(self._entries)

    def _checkout(self, key):
        with self._guard:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = [threading.Lock(), 0]
            entry[1] += 1
            return entry

    def _checkin(self, key, entry) -> None:
        with self._guard:
            entry[1] -= 1
            if entry[1] == 0:
                self._entries.pop(key, None)


class _KeyedMutexGuard:
    """Context manager for one :class:`KeyedMutex` key."""

    def __init__(self, mutex: KeyedMutex, key):
        self._mutex = mutex
        self._key = key
        self._entry = None

    def __enter__(self):
        self._entry = self._mutex._checkout(self._key)
        self._entry[0].acquire()
        return self

    def __exit__(self, *exc_info):
        entry, self._entry = self._entry, None
        entry[0].release()
        self._mutex._checkin(self._key, entry)
        return False


class _PathEntry:
    """Shared per-path state: the in-process lock plus the flock fd."""

    __slots__ = ("rlock", "fd", "depth", "refs")

    def __init__(self):
        self.rlock = threading.RLock()
        self.fd = None
        self.depth = 0  # re-entrant acquisitions by the owning thread
        self.refs = 0  # threads holding or waiting on this entry


_PATH_GUARD = threading.Lock()
_PATH_ENTRIES: dict = {}  # absolute path -> _PathEntry


class FileLock:
    """Advisory exclusive lock on ``path`` (created if absent).

    Safe across processes (``flock``) and across threads of one process
    (a shared per-path re-entrant lock — two ``FileLock`` instances on
    the same path exclude each other's threads, and the same thread may
    nest acquisitions of the same path freely, which ``flock`` alone
    would self-deadlock on).  Use as a context manager::

        with FileLock(os.path.join(shard_dir, ".lock")):
            ...read-modify-write...
    """

    def __init__(self, path: str):
        self.path = os.path.abspath(str(path))

    def __enter__(self):
        with _PATH_GUARD:
            entry = _PATH_ENTRIES.get(self.path)
            if entry is None:
                entry = _PATH_ENTRIES[self.path] = _PathEntry()
            entry.refs += 1
        entry.rlock.acquire()
        # Only the holding thread reaches here; depth tracks re-entry so
        # the process-level flock is taken exactly once per path.
        entry.depth += 1
        if entry.depth == 1 and fcntl is not None:
            try:
                os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
                fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            except OSError:
                # Unlockable location (read-only store, exotic fs): fall
                # back to in-process exclusion only — advisory locking
                # must never turn a working store into a failing one.
                fd = None
            if fd is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:  # pragma: no cover - fs without flock
                    os.close(fd)
                    fd = None
            entry.fd = fd
        self._entry = entry
        return self

    def __exit__(self, *exc_info):
        entry = self._entry
        entry.depth -= 1
        if entry.depth == 0 and entry.fd is not None:
            try:
                os.close(entry.fd)  # closing releases the flock
            except OSError:  # pragma: no cover - double close cannot happen
                pass
            entry.fd = None
        entry.rlock.release()
        with _PATH_GUARD:
            entry.refs -= 1
            if entry.refs == 0:
                _PATH_ENTRIES.pop(self.path, None)
        return False
