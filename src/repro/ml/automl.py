"""MiniAutoML — a small model searcher standing in for TPOT/autosklearn.

Greedily evaluates several model families with a few hyperparameter
settings each on a holdout split and keeps the best.  From METAM's point
of view this is exactly what the paper's AutoML task is: an expensive
black-box whose score improves when informative features are augmented.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression, RidgeRegression
from repro.ml.metrics import accuracy, mean_absolute_error
from repro.ml.model_selection import train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.validation import check_in_choices


def _classifier_space(seed):
    return [
        ("rf_small", lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=seed)),
        ("rf_deep", lambda: RandomForestClassifier(n_estimators=8, max_depth=10, seed=seed)),
        ("tree", lambda: DecisionTreeClassifier(max_depth=8, seed=seed)),
        ("logreg", lambda: LogisticRegression(n_iter=150)),
        ("gnb", lambda: GaussianNB()),
        ("knn", lambda: KNeighborsClassifier(n_neighbors=5)),
    ]


def _regressor_space(seed):
    return [
        ("rf_small", lambda: RandomForestRegressor(n_estimators=5, max_depth=6, seed=seed)),
        ("rf_deep", lambda: RandomForestRegressor(n_estimators=8, max_depth=10, seed=seed)),
        ("tree", lambda: DecisionTreeRegressor(max_depth=8, seed=seed)),
        ("ridge", lambda: RidgeRegression(alpha=1.0)),
        ("ridge_strong", lambda: RidgeRegression(alpha=10.0)),
    ]


class MiniAutoML:
    """Search over model families and return the best holdout score.

    Parameters
    ----------
    mode:
        ``"classification"`` (maximize accuracy) or ``"regression"``
        (minimize MAE — reported as the raw MAE; tasks convert to utility).
    budget:
        Number of candidate pipelines to evaluate (in listed order).
    """

    def __init__(self, mode: str = "classification", budget: int = 6, seed=0):
        check_in_choices(mode, "mode", {"classification", "regression"})
        self.mode = mode
        self.budget = max(1, budget)
        self.seed = seed
        self.best_model_ = None
        self.best_name_ = None
        self.best_score_ = None

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, test_fraction=0.3, seed=self.seed
        )
        if self.mode == "classification":
            space = _classifier_space(self.seed)
            better = lambda a, b: a > b
            evaluate = lambda m: accuracy(y_te, m.predict(x_te))
            worst = -np.inf
        else:
            space = _regressor_space(self.seed)
            better = lambda a, b: a < b
            evaluate = lambda m: mean_absolute_error(y_te, m.predict(x_te))
            worst = np.inf

        self.best_score_ = worst
        for name, factory in space[: self.budget]:
            model = factory()
            try:
                model.fit(x_tr, y_tr)
            except ValueError:
                # E.g. logistic regression on >2 classes; skip that family.
                continue
            score = evaluate(model)
            if better(score, self.best_score_):
                self.best_score_ = score
                self.best_model_ = model
                self.best_name_ = name
        if self.best_model_ is None:
            raise RuntimeError("no AutoML candidate could be fitted")
        return self

    def predict(self, x) -> np.ndarray:
        if self.best_model_ is None:
            raise RuntimeError("predict called before fit")
        return self.best_model_.predict(x)
