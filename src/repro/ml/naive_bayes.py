"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np


class GaussianNB:
    """Per-class Gaussian likelihoods with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self._means = None
        self._vars = None
        self._priors = None

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._means = []
        self._vars = []
        self._priors = []
        epsilon = self.var_smoothing * max(float(x.var()), 1e-12)
        for cls in self.classes_:
            rows = x[y == cls]
            self._means.append(rows.mean(axis=0))
            self._vars.append(rows.var(axis=0) + epsilon)
            self._priors.append(len(rows) / len(x))
        self._means = np.array(self._means)
        self._vars = np.array(self._vars)
        self._priors = np.array(self._priors)
        return self

    def _joint_log_likelihood(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.empty((len(x), len(self.classes_)))
        for i in range(len(self.classes_)):
            log_prob = -0.5 * np.sum(
                np.log(2.0 * np.pi * self._vars[i])
                + ((x - self._means[i]) ** 2) / self._vars[i],
                axis=1,
            )
            out[:, i] = np.log(self._priors[i]) + log_prob
        return out

    def predict(self, x) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("predict called before fit")
        return self.classes_[np.argmax(self._joint_log_likelihood(x), axis=1)]

    def predict_proba(self, x) -> np.ndarray:
        jll = self._joint_log_likelihood(x)
        jll -= jll.max(axis=1, keepdims=True)
        prob = np.exp(jll)
        return prob / prob.sum(axis=1, keepdims=True)
