"""Random forests built on the CART trees.

Also exposes per-feature *importances* (total impurity-weighted split
counts), which the ARDA-style task-specific profile uses for ranking
augmentations.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.rng import ensure_rng, spawn_rng


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        seed=None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_ = []
        self._n_features = None

    def _make_tree(self, seed):
        raise NotImplementedError

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = x.shape[1]
        rng = ensure_rng(self.seed)
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree_rng = spawn_rng(rng)
            indices = tree_rng.integers(0, len(x), size=len(x))
            tree = self._make_tree(int(tree_rng.integers(0, 2**31 - 1)))
            tree.fit(x[indices], y[indices])
            self.trees_.append(tree)
        return self

    def feature_importances(self) -> np.ndarray:
        """Normalized split-frequency importance per feature."""
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        counts = np.zeros(self._n_features)

        def _walk(node):
            if node.is_leaf:
                return
            counts[node.feature] += 1.0
            _walk(node.left)
            _walk(node.right)

        for tree in self.trees_:
            _walk(tree._root)
        total = counts.sum()
        return counts / total if total > 0 else counts


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated CART classifier with majority voting."""

    def _make_tree(self, seed):
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def fit(self, x, y):
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        return super().fit(x, y)

    def predict(self, x) -> np.ndarray:
        votes = np.stack([tree.predict(x) for tree in self.trees_])
        out = []
        for j in range(votes.shape[1]):
            values, counts = np.unique(votes[:, j], return_counts=True)
            out.append(values[int(np.argmax(counts))])
        return np.array(out)

    def predict_proba(self, x) -> np.ndarray:
        index = {c: i for i, c in enumerate(self.classes_)}
        probs = np.zeros((len(np.asarray(x)), len(self.classes_)))
        for tree in self.trees_:
            for i, p in enumerate(tree.predict(x)):
                probs[i, index[p]] += 1.0
        return probs / len(self.trees_)


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated CART regressor averaging tree outputs."""

    def _make_tree(self, seed):
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=seed,
        )

    def predict(self, x) -> np.ndarray:
        preds = np.stack([tree.predict(x) for tree in self.trees_])
        return preds.mean(axis=0)
