"""From-scratch ML substrate (scikit-learn substitute).

Implements the models the paper's tasks rely on: CART decision trees,
random forests (classifier and regressor), linear models, Gaussian naive
Bayes, k-NN, k-means, the usual metrics, preprocessing, model selection,
and a small AutoML searcher standing in for TPOT/autosklearn/PyCaret.
"""

from repro.ml.metrics import (
    accuracy,
    precision_recall_f1,
    f1_score,
    mean_absolute_error,
    root_mean_squared_error,
    r2_score,
    confusion_matrix,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    Imputer,
    prepare_features,
)
from repro.ml.model_selection import train_test_split, kfold_indices, cross_val_score
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import RidgeRegression, LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.knn import KNeighborsClassifier
from repro.ml.kmeans import KMeans
from repro.ml.automl import MiniAutoML

__all__ = [
    "accuracy",
    "precision_recall_f1",
    "f1_score",
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "confusion_matrix",
    "LabelEncoder",
    "StandardScaler",
    "Imputer",
    "prepare_features",
    "train_test_split",
    "kfold_indices",
    "cross_val_score",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RidgeRegression",
    "LogisticRegression",
    "GaussianNB",
    "KNeighborsClassifier",
    "KMeans",
    "MiniAutoML",
]
