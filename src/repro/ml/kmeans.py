"""k-means clustering with k-means++ initialization."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and multi-restart.

    ``n_init`` independent initializations are run and the solution with
    the lowest inertia kept, which avoids the local optima single-shot
    Lloyd is prone to.
    """

    def __init__(self, n_clusters: int = 3, n_iter: int = 50, n_init: int = 1, seed=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = n_clusters
        self.n_iter = n_iter
        self.n_init = n_init
        self.seed = seed
        self.centers_ = None
        self.labels_ = None
        self.inertia_ = None

    def _init_centers(self, x, rng):
        """k-means++ seeding."""
        n = len(x)
        centers = [x[int(rng.integers(0, n))]]
        while len(centers) < self.n_clusters:
            dists = np.min(
                [np.sum((x - c) ** 2, axis=1) for c in centers], axis=0
            )
            total = dists.sum()
            if total == 0:
                centers.append(x[int(rng.integers(0, n))])
                continue
            probs = dists / total
            centers.append(x[int(rng.choice(n, p=probs))])
        return np.array(centers)

    def fit(self, x):
        x = np.asarray(x, dtype=float)
        if len(x) == 0:
            raise ValueError("cannot cluster an empty dataset")
        if len(x) < self.n_clusters:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds {len(x)} samples"
            )
        rng = ensure_rng(self.seed)
        best = None
        for _restart in range(self.n_init):
            self._fit_once(x, rng)
            if best is None or self.inertia_ < best[2]:
                best = (self.centers_, self.labels_, self.inertia_)
        self.centers_, self.labels_, self.inertia_ = best
        return self

    def _fit_once(self, x, rng):
        centers = self._init_centers(x, rng)
        labels = np.zeros(len(x), dtype=int)
        for iteration in range(self.n_iter):
            dists = np.stack([np.sum((x - c) ** 2, axis=1) for c in centers])
            new_labels = np.argmin(dists, axis=0)
            if iteration > 0 and np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for i in range(self.n_clusters):
                members = x[labels == i]
                if len(members):
                    centers[i] = members.mean(axis=0)
        self.centers_ = centers
        self.labels_ = labels
        dists = np.stack([np.sum((x - c) ** 2, axis=1) for c in centers])
        self.inertia_ = float(np.sum(np.min(dists, axis=0)))

    def predict(self, x) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        dists = np.stack([np.sum((x - c) ** 2, axis=1) for c in self.centers_])
        return np.argmin(dists, axis=0)

    def max_cluster_radius(self, x) -> float:
        """Largest distance from a point to its assigned center — the
        clustering task's quality measure (inverted into a utility)."""
        x = np.asarray(x, dtype=float)
        labels = self.predict(x)
        radius = 0.0
        for i in range(self.n_clusters):
            members = x[labels == i]
            if len(members):
                d = np.sqrt(np.max(np.sum((members - self.centers_[i]) ** 2, axis=1)))
                radius = max(radius, float(d))
        return radius
