"""CART decision trees (classification via Gini, regression via variance).

The split search evaluates a bounded number of candidate thresholds per
feature (quantiles of the node's sample), which keeps training fast enough
for METAM's hundreds of interventional queries while preserving accuracy on
the small-to-medium tables of the evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class _Node:
    """Internal tree node; leaves have ``value`` set and no children."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, feature=None, threshold=None, left=None, right=None, value=None):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class _BaseDecisionTree:
    """Shared recursive builder for the classifier and the regressor."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        n_thresholds: int = 16,
        seed=None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.seed = seed
        self._root = None
        self._n_features = None

    # -- subclass hooks -------------------------------------------------
    def _leaf_value(self, y):
        raise NotImplementedError

    def _impurity(self, y) -> float:
        raise NotImplementedError

    def _prepare_target(self, y):
        return np.asarray(y)

    # -- fitting ---------------------------------------------------------
    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        y = self._prepare_target(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(x)):
            raise ValueError("x contains NaN/inf; impute before fitting")
        self._n_features = x.shape[1]
        rng = ensure_rng(self.seed)
        self._root = self._build(x, y, depth=0, rng=rng)
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self._n_features)))
        return max(1, min(int(self.max_features), self._n_features))

    def _build(self, x, y, depth, rng) -> _Node:
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or self._impurity(y) == 0.0
        ):
            return _Node(value=self._leaf_value(y))

        feature, threshold = self._best_split(x, y, rng)
        if feature is None:
            return _Node(value=self._leaf_value(y))

        mask = x[:, feature] <= threshold
        left = self._build(x[mask], y[mask], depth + 1, rng)
        right = self._build(x[~mask], y[~mask], depth + 1, rng)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _boundaries(self, sorted_col: np.ndarray) -> np.ndarray:
        """Candidate split positions: indices after which the sorted value
        changes, subsampled to at most ``n_thresholds`` and filtered by the
        leaf-size constraint."""
        n = len(sorted_col)
        positions = np.nonzero(sorted_col[1:] != sorted_col[:-1])[0]
        if positions.size == 0:
            return positions
        if positions.size > self.n_thresholds:
            picks = np.linspace(0, positions.size - 1, self.n_thresholds).astype(int)
            positions = positions[picks]
        sizes_left = positions + 1
        valid = (sizes_left >= self.min_samples_leaf) & (
            n - sizes_left >= self.min_samples_leaf
        )
        return positions[valid]

    def _scan_splits(self, sorted_col, sorted_y, positions):
        """Weighted child impurity per candidate position (subclass hook)."""
        raise NotImplementedError

    def _best_split(self, x, y, rng):
        n_feats = self._n_candidate_features()
        if n_feats < self._n_features:
            features = rng.choice(self._n_features, size=n_feats, replace=False)
        else:
            features = range(self._n_features)

        parent = self._impurity(y)
        best_gain = 1e-12
        best = (None, None)
        for feature in features:
            column = x[:, feature]
            order = np.argsort(column, kind="quicksort")
            sorted_col = column[order]
            positions = self._boundaries(sorted_col)
            if positions.size == 0:
                continue
            impurities = self._scan_splits(sorted_col, y[order], positions)
            local_best = int(np.argmin(impurities))
            gain = parent - float(impurities[local_best])
            if gain > best_gain:
                best_gain = gain
                pos = int(positions[local_best])
                best = (
                    int(feature),
                    float((sorted_col[pos] + sorted_col[pos + 1]) / 2.0),
                )
        return best

    # -- prediction -------------------------------------------------------
    def _predict_one(self, row):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def predict(self, x) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self._n_features:
            raise ValueError(
                f"x must have shape (n, {self._n_features}), got {x.shape}"
            )
        return np.array([self._predict_one(row) for row in x])

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def _depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise RuntimeError("depth called before fit")
        return _depth(self._root)


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier over integer-encoded labels."""

    def _prepare_target(self, y):
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        return y

    def _impurity(self, y) -> float:
        _, counts = np.unique(y, return_counts=True)
        return _gini(counts.astype(float))

    def _leaf_value(self, y):
        values, counts = np.unique(y, return_counts=True)
        return values[int(np.argmax(counts))]

    def _scan_splits(self, sorted_col, sorted_y, positions):
        """Vectorized Gini scan via cumulative class counts."""
        n = len(sorted_y)
        _, codes = np.unique(sorted_y, return_inverse=True)
        n_classes = codes.max() + 1
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), codes] = 1.0
        cum = np.cumsum(one_hot, axis=0)
        left = cum[positions]                      # (b, c)
        right = cum[-1] - left
        n_left = (positions + 1).astype(float)
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right / n_right[:, None]) ** 2, axis=1)
        return (n_left * gini_left + n_right * gini_right) / n

    def predict_proba(self, x) -> np.ndarray:
        """Hard class-membership probabilities (0/1 per leaf vote)."""
        preds = self.predict(x)
        out = np.zeros((len(preds), len(self.classes_)))
        index = {c: i for i, c in enumerate(self.classes_)}
        for i, p in enumerate(preds):
            out[i, index[p]] = 1.0
        return out


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor minimizing within-node variance."""

    def _prepare_target(self, y):
        return np.asarray(y, dtype=float)

    def _impurity(self, y) -> float:
        if y.size == 0:
            return 0.0
        return float(np.var(y))

    def _leaf_value(self, y):
        return float(np.mean(y))

    def _scan_splits(self, sorted_col, sorted_y, positions):
        """Vectorized variance scan via cumulative sums of y and y²."""
        n = len(sorted_y)
        cum_y = np.cumsum(sorted_y)
        cum_y2 = np.cumsum(sorted_y**2)
        n_left = (positions + 1).astype(float)
        n_right = n - n_left
        sum_left = cum_y[positions]
        sum_right = cum_y[-1] - sum_left
        sum2_left = cum_y2[positions]
        sum2_right = cum_y2[-1] - sum2_left
        var_left = np.maximum(0.0, sum2_left / n_left - (sum_left / n_left) ** 2)
        var_right = np.maximum(
            0.0, sum2_right / n_right - (sum_right / n_right) ** 2
        )
        return (n_left * var_left + n_right * var_right) / n
