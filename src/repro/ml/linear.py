"""Linear models: ridge regression (closed form) and logistic regression.

Ridge is also the estimator behind METAM's profile-importance weights
(Lemma 4 analyzes exactly this closed-form estimator).
"""

from __future__ import annotations

import numpy as np


class RidgeRegression:
    """L2-regularized least squares, solved in closed form."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean()
            xc = x - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(x.shape[1])
            y_mean = 0.0
            xc, yc = x, y
        gram = xc.T @ xc + self.alpha * np.eye(x.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        return np.asarray(x, dtype=float) @ self.coef_ + self.intercept_


class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iter: int = 200,
        l2: float = 1e-3,
        fit_intercept: bool = True,
    ):
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.coef_ = None
        self.intercept_ = 0.0
        self.classes_ = None

    @staticmethod
    def _sigmoid(z):
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def fit(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError(
                f"LogisticRegression is binary; got {len(self.classes_)} classes"
            )
        target = (y == self.classes_[1]).astype(float)
        # Standardize internally for stable gradients.
        self._mu = x.mean(axis=0)
        std = x.std(axis=0)
        self._sigma = np.where(std == 0, 1.0, std)
        xs = (x - self._mu) / self._sigma

        n, d = xs.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            p = self._sigmoid(xs @ w + b)
            grad_w = xs.T @ (p - target) / n + self.l2 * w
            w -= self.learning_rate * grad_w
            if self.fit_intercept:
                b -= self.learning_rate * float(np.mean(p - target))
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict_proba(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        xs = (np.asarray(x, dtype=float) - self._mu) / self._sigma
        p1 = self._sigmoid(xs @ self.coef_ + self.intercept_)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, x) -> np.ndarray:
        p = self.predict_proba(x)[:, 1]
        return np.where(p >= 0.5, self.classes_[1], self.classes_[0])
