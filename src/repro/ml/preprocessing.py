"""Feature preprocessing: imputation, scaling, label/feature encoding."""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import Table


class LabelEncoder:
    """Map arbitrary labels to contiguous integer codes (deterministic)."""

    def __init__(self):
        self.classes_ = None
        self._index = None

    def fit(self, labels):
        self.classes_ = sorted({str(v) for v in labels})
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, labels) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("LabelEncoder.transform called before fit")
        return np.array([self._index[str(v)] for v in labels], dtype=int)

    def fit_transform(self, labels) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes):
        return [self.classes_[int(c)] for c in codes]


class Imputer:
    """Replace NaN by the column mean (numeric) computed at fit time.

    Columns that are entirely NaN impute to 0.0 so downstream models always
    receive finite matrices.
    """

    def __init__(self):
        self.fill_values_ = None

    def fit(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        finite = ~np.isnan(matrix)
        counts = finite.sum(axis=0)
        sums = np.where(finite, matrix, 0.0).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
        self.fill_values_ = np.where(counts == 0, 0.0, means)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.fill_values_ is None:
            raise RuntimeError("Imputer.transform called before fit")
        matrix = np.asarray(matrix, dtype=float).copy()
        for j in range(matrix.shape[1]):
            col = matrix[:, j]
            col[np.isnan(col)] = self.fill_values_[j]
        return matrix

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns stay constant."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        self.scale_ = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(matrix, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


def prepare_features(table: Table, feature_columns, target_column=None):
    """Encode a table into a finite float feature matrix (and target).

    Numeric columns pass through; categorical/text columns get deterministic
    integer codes; missing values are mean-imputed.  Returns ``X`` or
    ``(X, y)`` when ``target_column`` is given (``y`` is the raw column).
    """
    feature_columns = [c for c in feature_columns if c != target_column]
    matrix = table.to_matrix(feature_columns)
    x = Imputer().fit_transform(matrix) if matrix.size else matrix
    if target_column is None:
        return x
    return x, table.column(target_column)
