"""Train/test splitting and cross-validation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def train_test_split(x, y, test_fraction: float = 0.3, seed=None):
    """Shuffle and split into train/test; returns (x_tr, x_te, y_tr, y_te)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    rng = ensure_rng(seed)
    perm = rng.permutation(len(x))
    n_test = max(1, int(round(test_fraction * len(x))))
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]


def group_train_test_split(x, y, groups, test_fraction: float = 0.3, seed=None):
    """Split so that no group appears in both train and test.

    Prevents key leakage when several rows share a join key: a random
    per-key column can otherwise memorize key → label associations that
    spuriously "generalize" to test rows with the same key.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    groups = np.asarray([str(g) for g in groups])
    if not (len(x) == len(y) == len(groups)):
        raise ValueError(
            f"length mismatch: {len(x)}, {len(y)}, {len(groups)}"
        )
    rng = ensure_rng(seed)
    unique = np.unique(groups)
    perm = rng.permutation(len(unique))
    n_test_groups = max(1, int(round(test_fraction * len(unique))))
    test_groups = set(unique[perm[:n_test_groups]].tolist())
    test_mask = np.array([g in test_groups for g in groups])
    if test_mask.all() or not test_mask.any():
        raise ValueError("group split produced an empty train or test set")
    return x[~test_mask], x[test_mask], y[~test_mask], y[test_mask]


def kfold_indices(n: int, k: int, seed=None):
    """Yield (train_indices, test_indices) for k roughly equal folds."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    rng = ensure_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train_idx, test_idx


def cross_val_score(model_factory, x, y, metric, k: int = 3, seed=None):
    """Mean metric over k folds; ``model_factory()`` returns a fresh model
    exposing ``fit(x, y)`` and ``predict(x)``."""
    x = np.asarray(x)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in kfold_indices(len(x), k, seed=seed):
        model = model_factory()
        model.fit(x[train_idx], y[train_idx])
        scores.append(metric(y[test_idx], model.predict(x[test_idx])))
    return float(np.mean(scores))
