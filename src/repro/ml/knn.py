"""k-nearest-neighbours classifier (brute force, Euclidean)."""

from __future__ import annotations

import numpy as np


class KNeighborsClassifier:
    """Majority vote over the k nearest training points."""

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._x = None
        self._y = None

    def fit(self, x, y):
        self._x = np.asarray(x, dtype=float)
        self._y = np.asarray(y)
        if len(self._x) != len(self._y):
            raise ValueError(f"length mismatch: {len(self._x)} vs {len(self._y)}")
        if len(self._x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        return self

    def predict(self, x) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("predict called before fit")
        x = np.asarray(x, dtype=float)
        k = min(self.n_neighbors, len(self._x))
        out = []
        for row in x:
            dists = np.sum((self._x - row) ** 2, axis=1)
            nearest = np.argpartition(dists, k - 1)[:k]
            values, counts = np.unique(self._y[nearest], return_counts=True)
            out.append(values[int(np.argmax(counts))])
        return np.array(out)
