"""Evaluation metrics for classification, regression and clustering."""

from __future__ import annotations

import numpy as np


def _as_arrays(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts matrix with rows = true label, columns = predicted label."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {lab: i for i, lab in enumerate(labels)}
    out = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred, strict=True):
        out[index[t], index[p]] += 1
    return out


def precision_recall_f1(y_true, y_pred, positive=1):
    """Binary precision/recall/F1 treating ``positive`` as the positive class."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


def f1_score(y_true, y_pred, average: str = "binary", positive=1) -> float:
    """F1 score; ``average`` is ``"binary"`` or ``"macro"``."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if average == "binary":
        return precision_recall_f1(y_true, y_pred, positive=positive)[2]
    if average == "macro":
        labels = np.unique(y_true)
        scores = [precision_recall_f1(y_true, y_pred, positive=lab)[2] for lab in labels]
        return float(np.mean(scores)) if scores else 0.0
    raise ValueError(f"unknown average {average!r}")


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean |error|."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(y_true.astype(float) - y_pred.astype(float))))


def root_mean_squared_error(y_true, y_pred) -> float:
    """sqrt(mean squared error)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true.astype(float) - y_pred.astype(float)) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 0.0 when the target is constant."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    y_true = y_true.astype(float)
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0
    ss_res = float(np.sum((y_true - y_pred.astype(float)) ** 2))
    return 1.0 - ss_res / ss_tot
