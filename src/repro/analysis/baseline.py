"""Committed-baseline support: pre-existing findings ratchet down.

A baseline entry fingerprints a finding by **what** it is, not where it
currently sits: ``(check, path, hash of the stripped source line,
occurrence index among identical triples)``.  Line numbers are left out
on purpose — unrelated edits that shift a finding up or down must not
invalidate the baseline — while any edit to the offending line itself
does invalidate it, forcing a fresh look.

Semantics are strictly ratchet-down:

* A finding matching a baseline entry is reported as ``baselined`` and
  does not fail the run.
* A *new* finding (no matching entry) fails the run — the baseline
  never grows implicitly; ``--update-baseline`` is an explicit act.
* A baseline entry with no matching finding is **stale**: the debt was
  paid, so the entry must be deleted (``--update-baseline``).  The
  ``check_stale`` mode turns stale entries into failures, which is what
  CI runs — deleting a baseline entry while the violation still exists
  simply resurfaces the violation as a new finding, so both directions
  of drift fail.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def _line_text(lines: List[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _content_hash(check: str, path: str, line_text: str) -> str:
    digest = hashlib.sha256(
        f"{check}\x00{path}\x00{line_text}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def finding_keys(
    findings: List[Finding], sources: Dict[str, List[str]]
) -> List[Tuple[str, str, str, int]]:
    """Stable keys, one per finding (ordered like ``findings``):
    ``(check, path, content_hash, occurrence_index)``.  ``sources`` maps
    repo-relative path → source lines."""
    seen: Dict[Tuple[str, str, str], int] = {}
    keys = []
    for finding in findings:
        text = _line_text(sources.get(finding.path, []), finding.line)
        digest = _content_hash(finding.check, finding.path, text)
        triple = (finding.check, finding.path, digest)
        index = seen.get(triple, 0)
        seen[triple] = index + 1
        keys.append((finding.check, finding.path, digest, index))
    return keys


def load_baseline(path: Path) -> List[dict]:
    """Entries from a baseline file; a missing file is an empty
    baseline.  Raises ``ValueError`` on malformed content."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"unreadable baseline {path}: {error}") from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a version-{BASELINE_VERSION} reprolint "
            "baseline"
        )
    return payload["entries"]


def write_baseline(
    path: Path, findings: List[Finding], sources: Dict[str, List[str]]
) -> int:
    """Rewrite ``path`` to baseline exactly ``findings``; returns the
    entry count."""
    entries = [
        {"check": check, "path": rel, "hash": digest, "index": index}
        for check, rel, digest, index in sorted(
            finding_keys(findings, sources)
        )
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def apply_baseline(
    findings: List[Finding],
    entries: List[dict],
    sources: Dict[str, List[str]],
) -> Tuple[List[Finding], List[dict]]:
    """Mark findings covered by ``entries`` as baselined.

    Returns ``(findings, stale_entries)`` where ``findings`` preserves
    order (covered ones flagged ``baselined=True``) and
    ``stale_entries`` are baseline entries that matched nothing — fixed
    debt whose entries should be removed.
    """
    available: Dict[Tuple[str, str, str, int], dict] = {}
    for entry in entries:
        try:
            key = (
                str(entry["check"]),
                str(entry["path"]),
                str(entry["hash"]),
                int(entry.get("index", 0)),
            )
        except (KeyError, TypeError, ValueError):
            continue
        available[key] = entry
    out: List[Finding] = []
    for finding, key in zip(
        findings, finding_keys(findings, sources), strict=True
    ):
        if key in available:
            del available[key]
            out.append(finding.with_baselined())
        else:
            out.append(finding)
    stale = sorted(
        available.values(),
        key=lambda entry: (
            str(entry.get("path")),
            str(entry.get("check")),
            int(entry.get("index", 0) or 0),
        ),
    )
    return out, stale


def default_baseline_path(root: Optional[Path] = None) -> Path:
    return (root or Path.cwd()) / "reprolint-baseline.json"
