"""The reprolint driver: collect files, parse in parallel, run every
checker, apply suppressions and the baseline."""

from __future__ import annotations

import ast
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    ProjectContext,
    all_checkers,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    stale_baseline: List[dict] = field(default_factory=list)
    #: repo-relative path → source lines (for baseline fingerprints).
    sources: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def active(self) -> List[Finding]:
        """Findings that fail the run (errors, not baselined)."""
        return [
            f
            for f in self.findings
            if not f.baselined and f.severity == "error"
        ]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    def ok(self, check_stale: bool = False) -> bool:
        if self.active:
            return False
        if check_stale and self.stale_baseline:
            return False
        return True


def collect_files(paths: Iterable[Path], root: Path) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through, dirs
    recurse; cache/VCS directories skipped), sorted by path."""
    out = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            out.append(candidate)
    return sorted(set(out))


def _parse_one(
    path: Path, root: Path
) -> Tuple[Optional[FileContext], Optional[Finding]]:
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return None, Finding(
            check="parse-error",
            path=rel,
            line=line,
            col=0,
            message=f"could not parse: {error}",
        )
    return FileContext(path, rel, source, tree), None


def lint_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    checks: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    baseline_entries: Optional[List[dict]] = None,
) -> LintResult:
    """Lint ``paths`` with the registered checkers.

    ``root`` anchors repo-relative paths (default: cwd).  ``checks``
    restricts to named checkers.  ``baseline_entries`` (from
    :func:`repro.analysis.baseline.load_baseline`) marks pre-existing
    findings as baselined and reports stale entries.
    """
    root = (root or Path.cwd()).resolve()
    files = collect_files([Path(p) for p in paths], root)
    checkers = all_checkers(checks)
    result = LintResult()

    contexts: List[FileContext] = []
    findings: List[Finding] = []
    workers = jobs or min(8, len(files) or 1)
    with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
        for ctx, parse_finding in pool.map(
            lambda p: _parse_one(p, root), files
        ):
            if parse_finding is not None:
                findings.append(parse_finding)
            if ctx is not None:
                contexts.append(ctx)

    def run_file(ctx: FileContext) -> List[Finding]:
        out: List[Finding] = []
        for checker in checkers:
            out.extend(checker.check_file(ctx))
        return out

    with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
        for file_findings in pool.map(run_file, contexts):
            findings.extend(file_findings)

    project = ProjectContext(contexts)
    for checker in checkers:
        findings.extend(checker.finish(project))

    by_rel = {ctx.rel: ctx for ctx in contexts}
    kept: List[Finding] = []
    for finding in findings:
        ctx = by_rel.get(finding.path)
        if ctx is not None and ctx.suppressions.covers(
            finding.check, finding.line
        ):
            result.suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.check, f.message))

    result.sources = {ctx.rel: ctx.lines for ctx in contexts}
    if baseline_entries:
        kept, stale = baseline_mod.apply_baseline(
            kept, baseline_entries, result.sources
        )
        result.stale_baseline = stale
    result.findings = kept
    result.files_checked = len(contexts)
    return result


def self_check_paths(root: Path) -> List[Path]:
    """The paths a plain ``repro lint`` run covers by default."""
    src = root / "src"
    return [src if src.is_dir() else root]


__all__ = [
    "Checker",
    "LintResult",
    "collect_files",
    "lint_paths",
    "self_check_paths",
]
