"""reprolint — invariant-aware static analysis for this codebase.

The checkers encode the contracts the concurrent catalog/engine stack
depends on (lock ordering, the StoreBackend VFS boundary, atomic-write
durability, metrics hygiene); the driver runs them over the source
tree with inline suppressions and a ratchet-down baseline.  Entry
points: :func:`repro.analysis.driver.lint_paths` programmatically, or
``repro lint`` on the command line.
"""

from repro.analysis.baseline import (
    apply_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Checker,
    Finding,
    all_checkers,
    checker_catalogue,
    register,
)
from repro.analysis.driver import LintResult, collect_files, lint_paths
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "all_checkers",
    "apply_baseline",
    "checker_catalogue",
    "collect_files",
    "default_baseline_path",
    "lint_paths",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
