"""Core model for reprolint: findings, file contexts, the checker
registry, and inline suppressions.

reprolint is an AST-based lint pass for *this* codebase's invariants —
the conventions the concurrent catalog/engine stack relies on but no
generic tool enforces (lock ordering, the StoreBackend VFS boundary,
atomic-rename durability, metrics hygiene).  Checkers are small classes
registered by name; the driver (:mod:`repro.analysis.driver`) parses
files in parallel, runs every checker, and applies suppressions and the
committed baseline (:mod:`repro.analysis.baseline`).

Suppressions are inline comments::

    something_flagged()  # reprolint: disable=blocking-under-lock

suppress the named check(s) on that line (comma-separated, or ``all``).
A ``# reprolint: disable-file=<check>`` comment anywhere in a file
suppresses the check for the whole file.  Suppressions are deliberate,
visible exemptions; the baseline is for pre-existing debt that should
ratchet down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

#: Severities, mildest last.  ``error`` findings fail the lint run
#: (unless baselined); ``warning`` findings are reported but advisory.
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_\-,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, addressed by repo-relative path + line."""

    check: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    severity: str = "error"
    baselined: bool = False

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "baselined": self.baselined,
        }

    def with_baselined(self) -> "Finding":
        return replace(self, baselined=True)


@dataclass
class Suppressions:
    """Parsed ``# reprolint: disable=...`` comments for one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def covers(self, check: str, line: int) -> bool:
        if "all" in self.file_wide or check in self.file_wide:
            return True
        names = self.by_line.get(line)
        return names is not None and ("all" in names or check in names)


def parse_suppressions(source: str) -> Suppressions:
    out = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        names = {
            name.strip() for name in match.group(2).split(",") if name.strip()
        }
        if match.group(1) == "disable-file":
            out.file_wide |= names
        else:
            out.by_line.setdefault(lineno, set()).update(names)
    return out


class FileContext:
    """One parsed source file as seen by checkers."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.AST):
        self.path = path
        self.rel = rel  # posix-style, relative to the lint root
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(source)
        self.module = module_name(rel)

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""

    def finding(
        self,
        check: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            check=check,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity,
        )


def module_name(rel: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` layout
    aware): ``src/repro/catalog/store.py`` → ``repro.catalog.store``.
    Paths outside a package layout fall back to slash→dot of the stem.
    """
    parts = Path(rel).parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    stem = list(parts[:-1]) + [Path(parts[-1]).stem]
    if stem[-1] == "__init__":
        stem = stem[:-1]
    return ".".join(stem)


class ProjectContext:
    """Everything the project-level (``finish``) pass sees: all file
    contexts, keyed both by relative path and by module name."""

    def __init__(self, files: List[FileContext]):
        self.files = list(files)
        self.by_rel = {ctx.rel: ctx for ctx in self.files}
        self.by_module = {ctx.module: ctx for ctx in self.files if ctx.module}


class Checker:
    """Base class for reprolint checkers.

    Subclasses set ``name``/``description`` and override
    :meth:`check_file` (per-file, runs in parallel) and/or
    :meth:`finish` (project-level, runs once after every file parsed —
    the inter-procedural passes live here).
    """

    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers(only: Optional[Iterable[str]] = None) -> List[Checker]:
    """Fresh instances of every registered checker (or the named
    subset).  Importing :mod:`repro.analysis.checkers` populates the
    registry."""
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    if only is None:
        names = sorted(_REGISTRY)
    else:
        names = []
        for name in only:
            if name not in _REGISTRY:
                known = ", ".join(sorted(_REGISTRY))
                raise KeyError(f"unknown check {name!r} (known: {known})")
            names.append(name)
    return [_REGISTRY[name]() for name in names]


def checker_catalogue() -> List[Tuple[str, str]]:
    """(name, description) for every registered checker, sorted."""
    import repro.analysis.checkers  # noqa: F401

    return [
        (name, _REGISTRY[name].description) for name in sorted(_REGISTRY)
    ]


# ---------------------------------------------------------------------------
# Shared AST helpers used by several checkers
# ---------------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """Last component of a Name/Attribute chain (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_root(node: ast.AST) -> Optional[str]:
    """First component of a Name/Attribute chain (``a`` for ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None
