"""Metrics-hygiene checker.

Three drift modes the telemetry layer (PR 6) cannot catch at runtime
without being exercised on exactly the right path:

* **Conflicting family registration** — ``registry.counter/gauge/
  histogram("name", ...)`` is get-or-create, so two registrations of
  one family name with different kinds or label schemas only explode
  when both run in one process.  This checker compares every literal
  registration across the whole source tree.
* **Unbounded label values** — an f-string / ``str(...)`` /
  string-concatenation label value injects request-scoped data into a
  label, blowing up time-series cardinality (the registry clamps to
  ``_other_`` at runtime, silently losing the signal).  ``**kwargs``
  label expansion hides the schema entirely.
* **print() drift** — the ruff ``T20`` ban covers committed code, but
  reprolint re-checks so the invariant also holds when ruff is not
  installed (and in files ruff is configured to skip).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    ProjectContext,
    register,
    terminal_name,
)

_FAMILY_KINDS = {"counter", "gauge", "histogram"}

#: Modules where print() is the UI, mirroring ruff's per-file-ignores.
_PRINT_ALLOWED_MODULES = {"repro.cli"}


def _registrations(
    ctx: FileContext,
) -> List[Tuple[str, str, Optional[Tuple[str, ...]], ast.Call]]:
    """``(family name, kind, labels or None-if-dynamic, node)`` for
    every literal metric-family registration in the file."""
    out = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = terminal_name(node.func)
        if kind not in _FAMILY_KINDS or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            continue
        labels: Optional[Tuple[str, ...]] = ()
        label_node = None
        if len(node.args) >= 3:
            label_node = node.args[2]
        for kw in node.keywords:
            if kw.arg == "labels":
                label_node = kw.value
        if label_node is not None:
            labels = _literal_str_tuple(label_node)
        out.append((first.value, kind, labels, node))
    return out


def _literal_str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                values.append(element.value)
            else:
                return None
        return tuple(values)
    return None


@register
class MetricsHygieneChecker(Checker):
    name = "metrics-hygiene"
    description = (
        "conflicting metric-family registrations, unbounded label "
        "values, and print() drift outside the CLI"
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # print() drift (only inside the repro package; fixture and
            # script trees keep their own rules via ruff).
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and ctx.module.startswith("repro")
                and ctx.module not in _PRINT_ALLOWED_MODULES
            ):
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        "print() in library code; use the structured "
                        "logger (repro.obs.logcfg) instead",
                    )
                )
            # Unbounded label values.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "labels"
            ):
                for kw in node.keywords:
                    if kw.arg is None:
                        findings.append(
                            ctx.finding(
                                self.name,
                                node,
                                ".labels(**...) hides the label "
                                "schema; pass each label explicitly",
                            )
                        )
                        continue
                    reason = _unbounded_reason(kw.value)
                    if reason is not None:
                        findings.append(
                            ctx.finding(
                                self.name,
                                node,
                                f"label {kw.arg!r} gets {reason} — an "
                                "unbounded value; label values must "
                                "come from a small fixed set",
                            )
                        )
        return findings

    def finish(self, project: ProjectContext) -> List[Finding]:
        seen: Dict[
            str, Tuple[str, Optional[Tuple[str, ...]], str, int]
        ] = {}
        findings: List[Finding] = []
        for ctx in sorted(project.files, key=lambda c: c.rel):
            for name, kind, labels, node in _registrations(ctx):
                previous = seen.get(name)
                if previous is None:
                    seen[name] = (kind, labels, ctx.rel, node.lineno)
                    continue
                prev_kind, prev_labels, prev_rel, prev_line = previous
                if kind != prev_kind:
                    findings.append(
                        ctx.finding(
                            self.name,
                            node,
                            f"metric family {name!r} registered as "
                            f"{kind} here but as {prev_kind} at "
                            f"{prev_rel}:{prev_line}",
                        )
                    )
                elif (
                    labels is not None
                    and prev_labels is not None
                    and labels != prev_labels
                ):
                    findings.append(
                        ctx.finding(
                            self.name,
                            node,
                            f"metric family {name!r} registered with "
                            f"labels {labels!r} here but "
                            f"{prev_labels!r} at {prev_rel}:{prev_line}",
                        )
                    )
        return findings


def _unbounded_reason(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, ast.BinOp):
        return "a string-concatenation expression"
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in {"str", "repr", "format"}:
            return f"a {name}() conversion"
    return None
