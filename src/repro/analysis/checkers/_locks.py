"""Shared lock recognition for the concurrency checkers.

The codebase has two families of locks with very different rules:

* **In-process mutexes** (``threading.Lock``/``RLock``/``Condition``
  attributes) — short critical sections; blocking I/O under one stalls
  every thread in the process.  These are the attributes named
  ``_lock``, ``_catalog_lock``, ``_state_lock``, ``_writer_lease_guard``,
  ``_prepare_gate``, ``_refresh_lock`` (and anything matching the
  ``*_lock``/``*_guard``/``*_gate`` suffix convention).
* **Cross-process critical-section locks** (``FileLock`` and the
  context-manager factories ``_dir_lock(...)``, ``_ilock()``,
  ``root_lock()``, ``backend.lock(...)``, striped ``_prepare_keys``
  guards) — they exist precisely to serialize file I/O, so I/O under
  them is the intended idiom.

Both families participate in lock-ordering analysis; only the first is
checked for blocking calls.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.analysis.core import call_root, dotted_name, terminal_name

#: Known in-process mutex attribute names (threading primitives).
IN_PROCESS_ATTRS = {
    "_lock",
    "_catalog_lock",
    "_state_lock",
    "_writer_lease_guard",
    "_prepare_gate",
    "_refresh_lock",
}

#: Attribute-name suffixes that mark an in-process lock by convention.
IN_PROCESS_SUFFIXES = ("_lock", "_guard", "_gate", "_mutex")

#: Context-manager *calls* that yield a lock guard.  These are
#: cross-process / striped critical-section locks: holding one while
#: doing file I/O is by design.
FILE_LOCK_CALLS = {
    "_dir_lock",
    "_ilock",
    "root_lock",
    "lock",  # backend.lock(path)
    "FileLock",
    "_prepare_keys",  # KeyedMutex striped guard: single-flight compute
}

#: ``(module prefix, lock name)`` pairs where holding the (in-process)
#: lock across blocking work is an audited, intentional design choice.
#: Each entry needs a justification here — this list is the allowlist
#: the blocking-under-lock checker honors.
BLOCKING_ALLOWLIST = {
    # The refresher serializes whole re-sign cycles (scan → refresh →
    # save → gc) under one lock on purpose: cycles must never overlap,
    # and only the daemon thread and explicit poke() contend on it.
    ("repro.catalog.refresh", "_refresh_lock"),
    # The engine deliberately holds the catalog lock across catalog
    # refresh/save: catalog mutations must be serialized with snapshot
    # swaps, and every reader path takes a snapshot reference instead
    # of this lock.
    ("repro.api.engine", "_catalog_lock"),
}


@dataclass(frozen=True)
class LockRef:
    """One recognized lock acquisition site."""

    name: str  # lock identifier (attribute or factory name)
    in_process: bool  # True → threading mutex, False → file/striped lock
    node: ast.AST  # the with-item context expression (or acquire call)


def classify_with_item(item: ast.withitem) -> Optional[LockRef]:
    """Recognize ``with <lock>:`` / ``with <lock-factory>(...):`` items."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        name = terminal_name(expr.func)
        if name in FILE_LOCK_CALLS:
            return LockRef(name=name, in_process=False, node=expr)
        # ``self._lock()`` — a factory named like a mutex attribute
        # (LeaseManager._lock) returns a backend file lock.
        if name is not None and _looks_in_process(name):
            return LockRef(name=name, in_process=False, node=expr)
        return None
    name = terminal_name(expr)
    if name is not None and _looks_in_process(name):
        return LockRef(name=name, in_process=True, node=expr)
    return None


def _looks_in_process(name: str) -> bool:
    return name in IN_PROCESS_ATTRS or name.endswith(IN_PROCESS_SUFFIXES)


def is_lock_expr(node: ast.AST) -> bool:
    """True for expressions denoting a known lock object (used to spot
    bare ``.acquire()`` calls)."""
    name = terminal_name(node)
    return name is not None and (
        _looks_in_process(name) or name in FILE_LOCK_CALLS
    )


def blocking_reason(node: ast.Call) -> Optional[str]:
    """Why ``node`` is a blocking call, or ``None`` if it is not.

    Recognizes raw I/O (builtin ``open``, ``os.*`` file ops,
    ``tempfile``/``shutil``/``subprocess``/``socket`` use,
    ``time.sleep``) and this project's own I/O seams (``*.backend.*``
    VFS methods, ``*.leases.*`` lease-file operations).
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "builtin open()"
        return None
    root = call_root(func)
    name = terminal_name(func)
    dotted = dotted_name(func) or ""
    if root == "time" and name == "sleep":
        return "time.sleep()"
    if root in {"subprocess", "shutil", "socket"}:
        return f"{root}.{name}()"
    if root == "mmap":
        return f"mmap.{name}() (page-mapping syscall)"
    if name in MMAP_LIFECYCLE_METHODS:
        # Mapping an artifact under an in-process lock is doubly wrong:
        # the map syscall blocks, and the page faults it sets up are
        # deferred disk I/O that outlives the critical section.
        return f"{name}() (maps artifact pages; faults are deferred I/O)"
    if root == "tempfile" and name in {
        "mkstemp",
        "mkdtemp",
        "NamedTemporaryFile",
        "TemporaryFile",
        "TemporaryDirectory",
    }:
        return f"tempfile.{name}()"
    if root == "os" and name in OS_IO_FUNCS and not dotted.startswith(
        "os.path."
    ):
        return f"os.{name}()"
    parts = dotted.split(".")
    if len(parts) >= 2:
        receiver = parts[-2]
        if receiver == "backend" and name in BACKEND_IO_METHODS:
            return f"backend.{name}() (store VFS I/O)"
        if receiver == "leases" and name in LEASE_IO_METHODS:
            return f"leases.{name}() (lease-file I/O)"
    return None


#: ``os`` functions that hit the filesystem (``os.path.*`` is pure).
OS_IO_FUNCS = {
    "open",
    "fdopen",
    "close",
    "read",
    "write",
    "replace",
    "rename",
    "remove",
    "unlink",
    "makedirs",
    "mkdir",
    "rmdir",
    "removedirs",
    "listdir",
    "scandir",
    "walk",
    "stat",
    "lstat",
    "fsync",
    "truncate",
    "chmod",
    "utime",
    "link",
    "symlink",
}

#: Calls that create or read through a memory mapping.  Flagged under
#: in-process locks regardless of receiver: ``open_mmap`` is the
#: backend seam, ``_read_artifact`` is the store helper that calls it.
MMAP_LIFECYCLE_METHODS = {"open_mmap", "_read_artifact"}

#: StoreBackend methods that perform I/O.
BACKEND_IO_METHODS = {
    "open_read",
    "open_mmap",
    "read_bytes",
    "write_bytes",
    "append_bytes",
    "remove",
    "exists",
    "isdir",
    "listdir",
    "makedirs",
    "size",
    "mtime",
    "disk_bytes",
    "sync_into",
}

#: LeaseManager methods that read/write lease files.
LEASE_IO_METHODS = {"acquire", "renew", "release", "active", "active_tokens"}
