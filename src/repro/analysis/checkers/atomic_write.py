"""Atomic-write discipline for durable catalog files.

The store's crash-safety story rests on two write shapes: *atomic
replace* (write a temp file, ``os.replace`` over the target — what
``StoreBackend.write_bytes`` does) and *atomic append* (``O_APPEND``
single-write — ``StoreBackend.append_bytes``).  Durable files —
manifests, ``index.json``, snapshots, tombstone logs, the lease
sequence counter — must only ever be produced by one of those shapes;
a plain ``open(path, "w")`` can tear on crash and leave a reader with
half a manifest.

This checker flags direct writes to paths whose expression mentions a
durable-file name.  The temp-file side of the replace idiom never
matches (temp names derive from ``mkstemp``/``.tmp`` suffixes), and
``os.open`` with ``O_APPEND`` in its flags is the sanctioned append
shape.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    register,
    terminal_name,
)

#: Substrings identifying durable catalog files.  Matching is on the
#: *source text* of the path argument, so both literals
#: (``"manifest.json"``) and helper calls (``self._manifest_path()``)
#: are caught.
DURABLE_MARKERS = (
    "manifest",
    "index.json",
    "snapshot",
    "tombstone",
    ".seq",
    "lease",
)

_WRITE_METHODS = {"write_text", "write_bytes"}


@register
class AtomicWriteChecker(Checker):
    name = "atomic-write"
    description = (
        "direct (non-atomic) writes to durable files "
        "(manifest/index.json/snapshot/tombstone/lease paths) — use "
        "the write-then-rename or O_APPEND helpers"
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(ctx, node)
            if message is not None:
                findings.append(ctx.finding(self.name, node, message))
        return findings

    def _violation(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[str]:
        func = node.func
        # open(path, "w"/"a") on a durable path.
        if isinstance(func, ast.Name) and func.id == "open":
            if not node.args:
                return None
            mode = self._mode(node)
            if mode is None or not any(c in mode for c in "wa+x"):
                return None
            marker = self._durable_marker(ctx, node.args[0])
            if marker is not None:
                return (
                    f"non-atomic open(..., {mode!r}) on durable "
                    f"{marker!r} path; write a temp file and "
                    "os.replace() it (or use the backend helpers)"
                )
            return None
        attr = terminal_name(func)
        # os.open(path, flags) without O_APPEND on a durable path.
        if (
            isinstance(func, ast.Attribute)
            and attr == "open"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            if len(node.args) < 2:
                return None
            flags_src = ctx.segment(node.args[1])
            if "O_APPEND" in flags_src or "O_RDONLY" in flags_src:
                return None
            marker = self._durable_marker(ctx, node.args[0])
            if marker is not None:
                return (
                    f"os.open() without O_APPEND on durable {marker!r} "
                    "path; durable files take atomic replace or atomic "
                    "append only"
                )
            return None
        # Path(...).write_text / write_bytes on a durable path.
        if attr in _WRITE_METHODS and isinstance(func, ast.Attribute):
            marker = self._durable_marker(ctx, func.value)
            if marker is not None:
                return (
                    f".{attr}() on durable {marker!r} path is not "
                    "atomic; write a temp file and os.replace() it"
                )
        return None

    @staticmethod
    def _mode(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            mode = next(
                (
                    kw.value
                    for kw in node.keywords
                    if kw.arg == "mode"
                ),
                None,
            )
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        if mode is None:
            return "r"  # default mode: read-only, never flagged
        return None  # dynamic mode expression: give it the benefit

    @staticmethod
    def _durable_marker(ctx: FileContext, node: ast.AST) -> Optional[str]:
        text = ctx.segment(node).lower()
        if not text or ".tmp" in text or "mkstemp" in text:
            return None
        for marker in DURABLE_MARKERS:
            if marker in text:
                return marker
        return None
