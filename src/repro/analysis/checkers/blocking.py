"""Blocking-under-lock checker.

Flags blocking work — file I/O, subprocesses, sleeps, sockets, and the
project's own I/O seams (``backend.*`` VFS methods, ``leases.*``
lease-file operations) — performed while an **in-process mutex** is
held.  Every thread contending on that mutex stalls for the duration
of the I/O, which is exactly the latency cliff the engine's
short-critical-section design avoids.

Cross-process critical-section locks (``FileLock``, ``_dir_lock``,
``_ilock``, ``root_lock``, striped ``_prepare_keys`` guards) exist to
serialize I/O and are never flagged.  In-process locks that are
*documented* to guard long sections are allowlisted in
:data:`repro.analysis.checkers._locks.BLOCKING_ALLOWLIST`; anything
else needs an inline ``# reprolint: disable=blocking-under-lock`` with
a justification, or a fix that moves the work outside the critical
section.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.checkers._locks import (
    BLOCKING_ALLOWLIST,
    blocking_reason,
    classify_with_item,
)
from repro.analysis.core import Checker, FileContext, Finding, register


@register
class BlockingUnderLockChecker(Checker):
    name = "blocking-under-lock"
    description = (
        "file/subprocess/sleep/network or store-VFS calls while an "
        "in-process mutex is held"
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []

        def allowed(lock: str) -> bool:
            return any(
                ctx.module.startswith(prefix) and lock == name
                for prefix, name in BLOCKING_ALLOWLIST
            )

        def visit_stmts(stmts: List[ast.stmt], held: List[str]) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    # A nested def's body runs later, not under the
                    # locks currently held at its definition site.
                    visit_stmts(stmt.body, [])
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired = []
                    for item in stmt.items:
                        check_calls(item.context_expr, held, stmt)
                        ref = classify_with_item(item)
                        if (
                            ref is not None
                            and ref.in_process
                            and not allowed(ref.name)
                        ):
                            acquired.append(ref.name)
                    held.extend(acquired)
                    visit_stmts(stmt.body, held)
                    if acquired:
                        del held[-len(acquired):]
                    continue
                check_calls(stmt, held, stmt)
                for body in _bodies(stmt):
                    visit_stmts(body, held)

        def check_calls(
            node: ast.AST, held: List[str], stmt: ast.stmt
        ) -> None:
            if not held:
                return
            for call in (
                n
                for n in _walk_shallow(node)
                if isinstance(n, ast.Call)
            ):
                reason = blocking_reason(call)
                if reason is None:
                    continue
                findings.append(
                    ctx.finding(
                        self.name,
                        call,
                        f"blocking call {reason} while holding "
                        f"in-process lock {held[-1]!r}; move the work "
                        "outside the critical section",
                    )
                )

        def _walk_shallow(node: ast.AST):
            """ast.walk that does not descend into nested defs or
            with-bodies (those are visited with their own held-stack)."""
            stack = [node]
            while stack:
                current = stack.pop()
                yield current
                for child in ast.iter_child_nodes(current):
                    if isinstance(
                        child,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                            ast.With,
                            ast.AsyncWith,
                        ),
                    ):
                        continue
                    if isinstance(child, ast.stmt):
                        continue
                    stack.append(child)

        def _bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
            out = []
            for attr in ("body", "orelse", "finalbody"):
                value = getattr(stmt, attr, None)
                if (
                    isinstance(value, list)
                    and value
                    and isinstance(value[0], ast.stmt)
                ):
                    out.append(value)
            for handler in getattr(stmt, "handlers", []) or []:
                out.append(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                out.append(case.body)
            return out

        visit_stmts(ctx.tree.body, [])
        return findings
