"""Lock-discipline checker: lock-order inversions and bare ``acquire``.

Builds an inter-procedural lock-acquisition graph from ``with``
statements over the repo's known lock objects (see
:mod:`repro.analysis.checkers._locks`).  Nodes are ``(owner, lock)``
pairs — the class (or module) whose attribute the lock is — and an edge
``A → B`` means "somewhere, B is acquired while A is held", either
directly (nested ``with``) or transitively through a call to a method
of the same class / function of the same module.  Two locks reachable
from each other can deadlock under the right interleaving; every edge
that closes such a cycle is reported with the witness edge for the
opposite direction.

Separately, per file, it flags bare ``<lock>.acquire()`` calls that are
not paired with a ``finally: <lock>.release()`` — an exception between
acquire and release leaks the lock forever.  Guard-object internals
(``__enter__``/``__exit__``/``acquire``/``release`` methods, classes
named like locks) are exempt: implementing a lock requires touching the
primitive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.checkers._locks import classify_with_item, is_lock_expr
from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    ProjectContext,
    register,
    terminal_name,
)

_GUARD_CLASS_MARKERS = ("Lock", "Mutex", "Guard", "Gate", "Semaphore")
_GUARD_METHODS = {
    "__enter__",
    "__exit__",
    "acquire",
    "release",
    "_acquire",
    "_release",
    "locked",
}


@dataclass
class _FuncScan:
    """Lock-relevant facts about one function."""

    key: Tuple[str, str, str]  # (module, class or "", func name)
    rel: str = ""  # repo-relative path of the defining file
    acquired: Set[str] = field(default_factory=set)
    #: (held lock, acquired lock, line) for nested with-statements.
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Callee names invoked as ``self.m()`` / ``m()``.
    calls: Set[str] = field(default_factory=set)
    #: (callee, held locks, line) for calls made while holding a lock.
    calls_held: List[Tuple[str, Tuple[str, ...], int]] = field(
        default_factory=list
    )


def _scan_function(
    module: str, class_name: str, func: ast.AST
) -> _FuncScan:
    scan = _FuncScan(key=(module, class_name, func.name))

    def visit_expr(node: ast.AST, held: List[str]) -> None:
        for call in (
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ):
            callee = None
            if isinstance(call.func, ast.Name):
                callee = call.func.id
            elif isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                if call.func.value.id in {"self", "cls"}:
                    callee = call.func.attr
            if callee is None:
                continue
            scan.calls.add(callee)
            if held:
                scan.calls_held.append(
                    (callee, tuple(held), call.lineno)
                )

    def visit_stmts(stmts: List[ast.stmt], held: List[str]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Nested definitions run on their own schedule; they
                # are scanned as separate functions by the caller.
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired_here = []
                for item in stmt.items:
                    ref = classify_with_item(item)
                    visit_expr(item.context_expr, held)
                    if ref is None:
                        continue
                    scan.acquired.add(ref.name)
                    for holder in held:
                        if holder != ref.name:
                            scan.edges.append(
                                (holder, ref.name, stmt.lineno)
                            )
                    acquired_here.append(ref.name)
                held.extend(acquired_here)
                visit_stmts(stmt.body, held)
                if acquired_here:
                    del held[-len(acquired_here):]
                continue
            for expr in _stmt_exprs(stmt):
                visit_expr(expr, held)
            for body in _stmt_bodies(stmt):
                visit_stmts(body, held)

    visit_stmts(func.body, [])
    return scan


def _stmt_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """Expression children of ``stmt`` itself (not its nested bodies)."""
    out = []
    for fname, value in ast.iter_fields(stmt):
        if fname in {
            "body",
            "orelse",
            "finalbody",
            "handlers",
            "cases",
            "items",
        }:
            continue
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return out


def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    out = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            out.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        out.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        out.append(case.body)
    return out


def _iter_functions(tree: ast.AST):
    """Yield ``(class_name, func_node)`` for every function in a
    module, including methods and (named) nested functions."""

    def walk(nodes, class_name):
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                yield from walk(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield class_name, node
                # Nested defs (done-callbacks and friends) keep the
                # enclosing class so self-calls still resolve.
                yield from walk(node.body, class_name)

    yield from walk(tree.body, "")


@register
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "lock-order inversions in the inter-procedural acquisition "
        "graph, and bare .acquire() without try/finally release"
    )

    # ------------------------------------------------------------------
    # Per-file: bare .acquire() without a paired release
    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []

        def visit(
            stmts: List[ast.stmt],
            class_name: str,
            func_name: str,
            protected: Set[str],
        ) -> None:
            for index, stmt in enumerate(stmts):
                if isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, stmt.name, func_name, set())
                    continue
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    visit(stmt.body, class_name, stmt.name, set())
                    continue
                next_releases: Set[str] = set()
                if index + 1 < len(stmts):
                    next_releases = _released_in_finally(stmts[index + 1])
                for call in (
                    n
                    for n in ast.walk(stmt)
                    if isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "acquire"
                    and is_lock_expr(n.func.value)
                ):
                    lock = terminal_name(call.func.value) or "<lock>"
                    if _is_guard_internals(class_name, func_name):
                        continue
                    if lock in protected or lock in next_releases:
                        continue
                    findings.append(
                        ctx.finding(
                            self.name,
                            call,
                            f"bare {lock}.acquire() without a paired "
                            "finally-release; use 'with "
                            f"{lock}:' (an exception here leaks the "
                            "lock)",
                        )
                    )
                if isinstance(stmt, ast.Try):
                    inner = protected | _released_in_finally(stmt)
                    visit(stmt.body, class_name, func_name, inner)
                    for handler in stmt.handlers:
                        visit(
                            handler.body, class_name, func_name, protected
                        )
                    visit(stmt.orelse, class_name, func_name, protected)
                    visit(stmt.finalbody, class_name, func_name, protected)
                else:
                    for body in _stmt_bodies(stmt):
                        visit(body, class_name, func_name, protected)

        visit(ctx.tree.body, "", "", set())
        return findings

    # ------------------------------------------------------------------
    # Project-level: the acquisition graph and its cycles
    # ------------------------------------------------------------------
    def finish(self, project: ProjectContext) -> List[Finding]:
        scans: Dict[Tuple[str, str, str], _FuncScan] = {}
        for ctx in project.files:
            for class_name, func in _iter_functions(ctx.tree):
                scan = _scan_function(ctx.module, class_name, func)
                # Re-defined names (overloads across branches) merge.
                existing = scans.get(scan.key)
                if existing is None:
                    scans[scan.key] = scan
                    scan.rel = ctx.rel
                else:
                    existing.acquired |= scan.acquired
                    existing.edges += scan.edges
                    existing.calls |= scan.calls
                    existing.calls_held += scan.calls_held

        def resolve(
            module: str, class_name: str, callee: str
        ) -> Optional[_FuncScan]:
            if class_name:
                hit = scans.get((module, class_name, callee))
                if hit is not None:
                    return hit
            return scans.get((module, "", callee))

        # Fixpoint: locks acquired anywhere beneath each function.
        closure: Dict[Tuple[str, str, str], Set[str]] = {
            key: set(scan.acquired) for key, scan in scans.items()
        }
        changed = True
        while changed:
            changed = False
            for key, scan in scans.items():
                module, class_name, _ = key
                for callee in scan.calls:
                    target = resolve(module, class_name, callee)
                    if target is None:
                        continue
                    before = len(closure[key])
                    closure[key] |= closure[target.key]
                    if len(closure[key]) != before:
                        changed = True

        # Edge set over (owner, lock) nodes with provenance.
        edges: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}

        def owner_of(key: Tuple[str, str, str]) -> str:
            module, class_name, _ = key
            return f"{module}.{class_name}" if class_name else module

        for key, scan in scans.items():
            owner = owner_of(key)
            rel = getattr(scan, "rel", "")
            for held, acquired, line in scan.edges:
                edges.setdefault(
                    (f"{owner}:{held}", f"{owner}:{acquired}"), []
                ).append((rel, line, "nested with"))
            module, class_name, _ = key
            for callee, held_locks, line in scan.calls_held:
                target = resolve(module, class_name, callee)
                if target is None:
                    continue
                for acquired in closure[target.key]:
                    for held in held_locks:
                        if held == acquired:
                            continue
                        edges.setdefault(
                            (f"{owner}:{held}", f"{owner}:{acquired}"),
                            [],
                        ).append((rel, line, f"via call to {callee}()"))

        adjacency: Dict[str, Set[str]] = {}
        for (src, dst) in edges:
            adjacency.setdefault(src, set()).add(dst)

        def reaches(start: str, goal: str) -> bool:
            seen = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        findings: List[Finding] = []
        reported: Set[FrozenSet[str]] = set()
        for (src, dst), sites in sorted(edges.items()):
            if src == dst or frozenset((src, dst)) in reported:
                continue
            if not reaches(dst, src):
                continue
            reported.add(frozenset((src, dst)))
            witness = self._witness(edges, adjacency, dst, src)
            rel, line, how = sites[0]
            findings.append(
                Finding(
                    check=self.name,
                    path=rel,
                    line=line,
                    col=0,
                    message=(
                        f"lock-order inversion: {dst.split(':')[1]!r} "
                        f"acquired while holding "
                        f"{src.split(':')[1]!r} ({how}), but the "
                        f"opposite order exists at {witness}"
                    ),
                )
            )
        return findings

    @staticmethod
    def _witness(edges, adjacency, start: str, goal: str) -> str:
        """A concrete site on some ``start → … → goal`` path."""
        direct = edges.get((start, goal))
        if direct:
            rel, line, how = direct[0]
            return f"{rel}:{line} ({how})"
        for middle in sorted(adjacency.get(start, ())):
            hop = edges.get((start, middle))
            if hop:
                rel, line, how = hop[0]
                return f"{rel}:{line} ({how}, transitively)"
        return "<unknown>"


def _released_in_finally(stmt: ast.stmt) -> Set[str]:
    """Lock names released in ``stmt``'s ``finally`` block (empty when
    ``stmt`` is not a try/finally)."""
    if not isinstance(stmt, ast.Try):
        return set()
    released: Set[str] = set()
    for node in stmt.finalbody:
        for call in (
            n
            for n in ast.walk(node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "release"
        ):
            name = terminal_name(call.func.value)
            if name is not None:
                released.add(name)
    return released


def _is_guard_internals(class_name: str, func_name: str) -> bool:
    if func_name in _GUARD_METHODS:
        return True
    return any(marker in class_name for marker in _GUARD_CLASS_MARKERS)
