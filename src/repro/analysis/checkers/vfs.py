"""Backend-VFS enforcement for ``repro.catalog``.

PR 7 routed every byte the catalog store reads or writes through the
:class:`~repro.catalog.backend.StoreBackend` interface so that the
``segments`` backend (and future remote backends) see *all* traffic.
That invariant only survives if no new code quietly calls ``open``/
``os.*``/``pathlib``/``tempfile``/``shutil`` inside ``repro.catalog``
— this checker bans raw filesystem I/O everywhere in the package
except ``backend.py`` itself, which is the one module allowed to touch
the real filesystem.

Pure path arithmetic (``os.path.*``, ``os.sep``) and non-I/O ``os``
helpers (``os.getpid``, ``os.environ``, ``os._exit``) are fine.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.checkers._locks import OS_IO_FUNCS
from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    call_root,
    dotted_name,
    register,
    terminal_name,
)

_SCOPE_PREFIX = "repro.catalog"
_EXEMPT_MODULES = {"repro.catalog.backend"}

# Method names unique to pathlib's I/O surface.  Names the StoreBackend
# interface shares (read_bytes, write_bytes, remove, ...) are left out:
# calls on a backend are exactly what this checker steers code toward.
_PATHLIB_IO_METHODS = {
    "write_text",
    "read_text",
    "touch",
    "iterdir",
    "rglob",
}


@register
class CatalogVfsChecker(Checker):
    name = "catalog-vfs"
    description = (
        "raw open/os/pathlib/tempfile/shutil I/O inside repro.catalog "
        "outside backend.py (all store I/O must go through the "
        "StoreBackend VFS)"
    )

    def check_file(self, ctx: FileContext) -> List[Finding]:
        if (
            not ctx.module.startswith(_SCOPE_PREFIX)
            or ctx.module in _EXEMPT_MODULES
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = self._raw_io_reason(node)
            if reason is not None:
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        f"raw filesystem I/O ({reason}) in "
                        f"{ctx.module}; route it through the "
                        "StoreBackend VFS (backend.py)",
                    )
                )
        return findings

    @staticmethod
    def _raw_io_reason(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "builtin open()"
            return None
        dotted = dotted_name(func) or ""
        root = call_root(func)
        name = terminal_name(func)
        if dotted.startswith("os.path."):
            return None
        if root == "os" and name in OS_IO_FUNCS:
            return f"os.{name}()"
        if root in {"tempfile", "shutil"}:
            return f"{root}.{name}()"
        if root == "io" and name == "open":
            return "io.open()"
        if root == "Path" or dotted.startswith("pathlib."):
            return f"{dotted}()"
        if name in _PATHLIB_IO_METHODS:
            return f".{name}() (pathlib-style I/O)"
        return None
