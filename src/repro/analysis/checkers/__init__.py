"""reprolint checkers.  Importing this package registers every
built-in checker with :mod:`repro.analysis.core`'s registry."""

from repro.analysis.checkers.atomic_write import AtomicWriteChecker
from repro.analysis.checkers.blocking import BlockingUnderLockChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.metrics_hygiene import MetricsHygieneChecker
from repro.analysis.checkers.vfs import CatalogVfsChecker

__all__ = [
    "AtomicWriteChecker",
    "BlockingUnderLockChecker",
    "CatalogVfsChecker",
    "LockDisciplineChecker",
    "MetricsHygieneChecker",
]
