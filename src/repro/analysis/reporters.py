"""Text and JSON reporters for reprolint results."""

from __future__ import annotations

from typing import List

from repro.analysis.driver import LintResult


def render_text(result: LintResult, verbose_baselined: bool = False) -> str:
    """Human-readable report: one line per active finding, then a
    summary.  Baselined findings are folded into the summary unless
    ``verbose_baselined``."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.baselined and not verbose_baselined:
            continue
        tag = " (baselined)" if finding.baselined else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"[{finding.check}] {finding.message}{tag}"
        )
    active = result.active
    summary = (
        f"reprolint: {len(active)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entr"
            + ("y" if len(result.stale_baseline) == 1 else "ies")
        )
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.get('path')} "
            f"[{entry.get('check')}] — the finding is gone; run "
            "--update-baseline to drop it"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> dict:
    """Machine-readable report (the CI artifact)."""
    return {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [f.as_dict() for f in result.findings],
        "stale_baseline": list(result.stale_baseline),
        "summary": {
            "active": len(result.active),
            "baselined": len(result.baselined),
        },
    }


__all__ = ["render_json", "render_text"]
