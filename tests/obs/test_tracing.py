"""Trace trees: span scoping, serialization, and off-mode cost paths."""

import threading

from repro.obs.tracing import MAX_CHILDREN, Tracer, active_span, mark, span


class TestTracer:
    def test_trace_yields_root_span(self):
        tracer = Tracer()
        with tracer.trace("request", run_id=7) as root:
            assert root is not None
            assert active_span() is root
        assert active_span() is None

    def test_disabled_tracer_yields_none(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("request") as root:
            assert root is None
            assert active_span() is None

    def test_span_without_active_trace_is_free_noop(self):
        # No trace live: span() must not create anything.
        with span("orphan", key="v") as s:
            assert s is None
        mark("orphan-mark")  # must not raise either
        assert active_span() is None


class TestTree:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with span("prepare"):
                pass
            with span("search") as search:
                assert active_span() is search
                mark("round", index=1)
        record = root.to_record()
        assert record["name"] == "request"
        names = [child["name"] for child in record["children"]]
        assert names == ["prepare", "search"]
        round_mark = record["children"][1]["children"][0]
        assert round_mark["name"] == "round"
        assert round_mark["attrs"]["index"] == 1

    def test_record_has_relative_ms_offsets(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with span("child"):
                pass
        record = root.to_record()
        assert record["start_ms"] == 0.0
        assert record["duration_ms"] >= 0.0
        child = record["children"][0]
        assert child["start_ms"] >= 0.0
        assert child["duration_ms"] >= 0.0

    def test_exception_annotates_span(self):
        tracer = Tracer()
        try:
            with tracer.trace("request") as root:
                with span("search"):
                    raise ValueError("boom")
        except ValueError:
            pass
        child = root.to_record()["children"][0]
        assert child["attrs"]["error"] == "ValueError"

    def test_child_cap_counts_drops(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            for i in range(MAX_CHILDREN + 5):
                mark("m", i=i)
        record = root.to_record()
        assert len(record["children"]) == MAX_CHILDREN
        assert record["dropped_children"] == 5

    def test_non_serializable_attrs_are_stringified(self):
        tracer = Tracer()
        with tracer.trace("request", obj=object()) as root:
            pass
        attrs = root.to_record()["attrs"]
        assert isinstance(attrs["obj"], str)


class TestIsolation:
    def test_threads_do_not_share_active_span(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["active"] = active_span()

        with tracer.trace("request"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # contextvars do not propagate into a bare Thread: the worker
        # must not observe (or attach children to) this trace.
        assert seen["active"] is None

    def test_concurrent_traces_stay_separate(self):
        tracer = Tracer()
        records = {}

        def run(name):
            with tracer.trace(name) as root:
                with span(f"{name}-child"):
                    pass
            records[name] = root.to_record()

        threads = [
            threading.Thread(target=run, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            record = records[f"t{i}"]
            assert record["name"] == f"t{i}"
            assert [c["name"] for c in record["children"]] == [f"t{i}-child"]
