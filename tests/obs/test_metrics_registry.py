"""MetricsRegistry: instruments, labels, exposition, and thread safety."""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Runs.")
        runs.inc()
        runs.inc(4)
        assert registry.value("runs_total") == 5.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Runs.")
        with pytest.raises(MetricsError):
            runs.inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Runs.", labels=("status",))
        runs.labels(status="completed").inc(3)
        runs.labels(status="failed").inc()
        assert registry.value("runs_total", status="completed") == 3.0
        assert registry.value("runs_total", status="failed") == 1.0

    def test_get_or_create_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("runs_total", "Runs.")
        second = registry.counter("runs_total", "Runs.")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Runs.")
        with pytest.raises(MetricsError):
            registry.gauge("runs_total", "Not a gauge.")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Runs.", labels=("status",))
        with pytest.raises(MetricsError):
            registry.counter("runs_total", "Runs.", labels=("other",))

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("bad name!", "Nope.")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth", "Depth.")
        depth.set(7)
        depth.inc()
        depth.dec(3)
        assert registry.value("queue_depth") == 5.0


class TestHistogram:
    def test_observe_and_state(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", "L.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        bounds, counts, total, count = h.state()
        assert bounds == (0.1, 1.0, 10.0)
        assert counts == [1, 1, 1, 1]  # one observation per bucket + +Inf
        assert count == 4
        assert total == pytest.approx(55.55)

    def test_quantile_estimates(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", "L.", buckets=(1.0, 2.0, 4.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(3.0)
        assert h.quantile(0.5) <= 1.0
        # The tail estimate lands in the 2..4 bucket.
        assert 2.0 <= h.quantile(0.999) <= 4.0

    def test_quantile_empty_is_zero(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", "L.")
        assert h.quantile(0.99) == 0.0

    def test_timer_context(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", "L.", buckets=DEFAULT_BUCKETS)
        with h.time():
            pass
        assert h.state()[3] == 1


class TestCardinalityGuardrail:
    def test_overflow_collapses_to_other(self):
        registry = MetricsRegistry(max_series_per_metric=3)
        family = registry.counter("hits", "H.", labels=("key",))
        for i in range(10):
            family.labels(key=f"k{i}").inc()
        series = family.series()
        label_values = {key[0] for key, _instrument in series}
        assert "_other_" in label_values
        # Bounded: 3 real series plus the overflow bucket.
        assert len(series) == 4
        assert family.overflowed == 7
        assert registry.value("hits", key="_other_") == 7.0

    def test_existing_series_keep_working_after_overflow(self):
        registry = MetricsRegistry(max_series_per_metric=2)
        family = registry.counter("hits", "H.", labels=("key",))
        family.labels(key="a").inc()
        family.labels(key="b").inc()
        family.labels(key="c").inc()  # overflow
        family.labels(key="a").inc()  # still the real series
        assert registry.value("hits", key="a") == 2.0


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        runs = registry.counter("repro_runs_total", "Served runs.", labels=("status",))
        runs.labels(status="completed").inc(2)
        registry.gauge("repro_depth", "Queue depth.").set(3)
        registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# HELP repro_runs_total Served runs." in text
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{status="completed"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_latency_seconds_bucket{le="1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_latency_seconds_sum 0.5" in text
        assert "repro_latency_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "C.", labels=("path",))
        family.labels(path='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_snapshot_and_json_round_trip(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        assert snapshot["repro_depth"]["series"][0]["value"] == 3.0
        hist = snapshot["repro_latency_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["+Inf"] == 1
        assert "p99" in hist
        parsed = json.loads(registry.to_json())
        assert parsed.keys() == snapshot.keys()


class TestNullRegistry:
    def test_null_registry_is_inert(self):
        null = NullRegistry()
        counter = null.counter("x_total", "X.")
        counter.inc()
        counter.labels(status="a").inc()
        null.gauge("g", "G.").set(5)
        with null.histogram("h", "H.").time():
            pass
        assert null.snapshot() == {}
        assert null.to_prometheus() == ""
        assert NULL_REGISTRY.names() == []


class TestConcurrency:
    def test_concurrent_writers_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", labels=("worker",))
        gauge = registry.gauge("level", "Level.")
        hist = registry.histogram("obs", "Obs.", buckets=(0.5, 1.5))
        n_threads, n_iter = 8, 2000
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int):
            series = counter.labels(worker=str(worker % 2))
            barrier.wait()
            for i in range(n_iter):
                series.inc()
                gauge.inc()
                hist.observe(1.0)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_iter
        assert registry.value("ops_total", worker="0") == total / 2
        assert registry.value("ops_total", worker="1") == total / 2
        assert registry.value("level") == total
        _bounds, counts, observed_sum, count = hist.state()
        assert count == total
        assert sum(counts) == total
        assert observed_sum == pytest.approx(float(total))

    def test_snapshot_consistent_under_writers(self):
        registry = MetricsRegistry()
        hist = registry.histogram("obs", "Obs.", buckets=(1.0,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.observe(0.5)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                _bounds, counts, _sum, count = hist.state()
                # state() is taken under the lock: the per-bucket counts
                # must always add up to the total, mid-hammer included.
                assert sum(counts) == count
                series = registry.snapshot()["obs"]["series"][0]
                assert series["buckets"]["+Inf"] == series["count"]
        finally:
            stop.set()
            thread.join()
