"""Structured logging: formatters, ambient context, idempotent config."""

import io
import json
import logging

import pytest

from repro.obs.logcfg import (
    ROOT_LOGGER,
    configure_logging,
    context_fields,
    get_logger,
    log_context,
)


@pytest.fixture(autouse=True)
def _restore_logging():
    yield
    # Leave the suite's default behind, whatever a test configured.
    configure_logging("warning")


def _capture(level="debug", fmt="text") -> io.StringIO:
    stream = io.StringIO()
    configure_logging(level, stream=stream, fmt=fmt)
    return stream


class TestConfigure:
    def test_idempotent_no_duplicate_handlers(self):
        configure_logging("info")
        configure_logging("debug")
        configure_logging("warning")
        logger = logging.getLogger(ROOT_LOGGER)
        assert len(logger.handlers) == 1
        assert logger.propagate is False

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_level_threshold_applies(self):
        stream = _capture(level="warning")
        log = get_logger("threshold")
        log.debug("hidden")
        log.warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "warning: shown" in out


class TestTextFormat:
    def test_level_message_shape(self):
        stream = _capture()
        get_logger("shape").error("something broke")
        assert stream.getvalue().startswith("error: something broke")

    def test_fields_rendered_as_suffix(self):
        stream = _capture()
        get_logger("shape").info("served", run_id=3, tier="memory")
        assert "info: served [run_id=3 tier=memory]" in stream.getvalue()


class TestJsonFormat:
    def test_one_object_per_line(self):
        stream = _capture(fmt="json")
        log = get_logger("jsonfmt")
        log.info("first", a=1)
        log.warning("second")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["msg"] == "first"
        assert first["level"] == "info"
        assert first["a"] == 1
        assert first["logger"] == "repro.jsonfmt"
        assert "ts" in first

    def test_exception_payload(self):
        stream = _capture(fmt="json")
        log = get_logger("jsonfmt")
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            log.exception("failed")
        payload = json.loads(stream.getvalue().strip())
        assert "kaboom" in payload["exc"]

    def test_non_serializable_fields_stringified(self):
        stream = _capture(fmt="json")
        get_logger("jsonfmt").info("odd", obj=object())
        payload = json.loads(stream.getvalue().strip())
        assert "object object" in payload["obj"]


class TestContext:
    def test_ambient_fields_merge(self):
        stream = _capture(fmt="json")
        log = get_logger("ctx")
        with log_context(run_id=9, searcher="metam"):
            log.info("inside")
        log.info("outside")
        inside, outside = (
            json.loads(line) for line in stream.getvalue().strip().splitlines()
        )
        assert inside["run_id"] == 9 and inside["searcher"] == "metam"
        assert "run_id" not in outside

    def test_explicit_fields_win_over_ambient(self):
        with log_context(tier="memory"):
            stream = _capture(fmt="json")
            get_logger("ctx").info("hit", tier="store")
        assert json.loads(stream.getvalue().strip())["tier"] == "store"

    def test_nested_contexts_stack_and_unwind(self):
        with log_context(a=1):
            with log_context(b=2):
                assert context_fields() == {"a": 1, "b": 2}
            assert context_fields() == {"a": 1}
        assert context_fields() == {}


class TestLoggerNames:
    def test_names_are_rooted(self):
        assert get_logger("x")._logger.name == "repro.x"
        assert get_logger("repro.api.engine")._logger.name == "repro.api.engine"
