"""Differential tests for the coercion kernels (float arrays,
categorical codes, type inference) on adversarial cells."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from tests.kernels.util import differential

any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)
mixed_cell = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    any_float,
    st.text(max_size=10),
)

ADVERSARIAL_COLUMNS = [
    [],
    [None, None],
    [float("nan"), float("inf"), float("-inf"), -0.0],
    [True, False, 1, 0],
    ["1", " 2.5 ", "1e3", "-inf", "nan", "0x10"],
    ["", "   ", "\t", None],
    ["a", "b", "a", ""],
    ["a\x00b", "a", "a\x00b"],
    [1, "1", 1.0, "1.0"],
    [np.float64(2.5), np.int64(3), np.bool_(True)],
    ["café", "CAFÉ", "é中\U0001f600"],
    [10**40, -(10**40)],
    ["1_000", "+5", "-0", ".5", "5.", "infinity"],
]


def assert_float_arrays_equal(vec, ref):
    assert vec.shape == ref.shape
    assert np.array_equal(vec, ref, equal_nan=True)


class TestToFloatArray:
    @settings(max_examples=150, deadline=None)
    @given(cells=st.lists(mixed_cell, max_size=50))
    def test_matches_reference(self, cells):
        vec, ref = differential(kernels.to_float_array, cells)
        assert_float_arrays_equal(vec, ref)

    def test_adversarial_columns(self, differential):
        for cells in ADVERSARIAL_COLUMNS:
            vec, ref = differential(kernels.to_float_array, cells)
            assert_float_arrays_equal(vec, ref)


class TestEncodeCategorical:
    @settings(max_examples=150, deadline=None)
    @given(cells=st.lists(st.one_of(st.text(max_size=10)), max_size=50))
    def test_all_str_matches_reference(self, cells):
        vec, ref = differential(kernels.encode_categorical, cells)
        assert_float_arrays_equal(vec, ref)

    @settings(max_examples=100, deadline=None)
    @given(cells=st.lists(mixed_cell, max_size=40))
    def test_mixed_matches_reference(self, cells):
        vec, ref = differential(kernels.encode_categorical, cells)
        assert_float_arrays_equal(vec, ref)

    def test_adversarial_columns(self, differential):
        for cells in ADVERSARIAL_COLUMNS:
            vec, ref = differential(kernels.encode_categorical, cells)
            assert_float_arrays_equal(vec, ref)

    def test_codes_are_sorted_distinct_order(self):
        codes = kernels.encode_categorical(["b", "a", "c", "a"])
        assert codes.tolist() == [1.0, 0.0, 2.0, 0.0]


class TestInferColumnType:
    @settings(max_examples=150, deadline=None)
    @given(
        cells=st.lists(mixed_cell, max_size=50),
        threshold=st.sampled_from((1, 20)),
    )
    def test_matches_reference(self, cells, threshold):
        vec, ref = differential(kernels.infer_column_type, cells, threshold)
        assert vec == ref

    def test_adversarial_columns(self, differential):
        for cells in ADVERSARIAL_COLUMNS:
            vec, ref = differential(kernels.infer_column_type, cells)
            assert vec == ref, cells

    def test_numeric_fast_path_classification(self, differential):
        vec, ref = differential(
            kernels.infer_column_type, [1, 2.5, None, float("nan")]
        )
        assert vec == ref == "numeric"
        vec, ref = differential(
            kernels.infer_column_type, [None, float("nan")]
        )
        assert vec == ref == "empty"
