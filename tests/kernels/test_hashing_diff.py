"""Differential + golden tests for the stable-hash kernels.

The vectorized v2 tabulation path must agree bit-for-bit with the
scalar :func:`repro.kernels.reference.stable_hash_v2` on every string,
and the v1 compatibility shim must reproduce the pinned blake2b hash
every stored signature was computed with — across the 3-seed matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from tests.kernels.util import differential
from repro.kernels import reference

# Any unicode including surrogate-free astral chars, NULs, combining
# marks — everything a real CSV cell can smuggle in.
adversarial_text = st.text(
    alphabet=st.characters(codec="utf-8"), min_size=0, max_size=64
)


class TestHashStringsDifferential:
    @settings(max_examples=150, deadline=None)
    @given(values=st.lists(adversarial_text, max_size=50))
    def test_v1_matches_reference(self, values):
        vec, ref = differential(kernels.hash_strings, values, 1)
        assert np.array_equal(vec, ref)
        assert vec.dtype == np.uint64

    @settings(max_examples=150, deadline=None)
    @given(
        values=st.lists(adversarial_text, max_size=50),
        seed=st.sampled_from((0, 1, 2)),
    )
    def test_v2_matches_reference(self, values, seed):
        vec, ref = differential(kernels.hash_strings, values, 2, seed=seed)
        assert np.array_equal(vec, ref)

    def test_empty_column(self, differential, hash_seed):
        for version in kernels.HASH_VERSIONS:
            vec, ref = differential(
                kernels.hash_strings, [], version, seed=hash_seed
            )
            assert vec.shape == ref.shape == (0,)

    def test_adversarial_fixed_columns(self, differential, hash_seed):
        columns = [
            ["", "", ""],
            ["\x00", "a\x00b", "\x00" * 8],
            ["café", "CAFÉ", "café"],
            ["é中\U0001f600", "  ", "﻿"],
            ["x" * 10_000],
            [str(v) for v in (0.0, -0.0, float("inf"), float("-inf"))],
        ]
        for column in columns:
            for version in kernels.HASH_VERSIONS:
                vec, ref = differential(
                    kernels.hash_strings, column, version, seed=hash_seed
                )
                assert np.array_equal(vec, ref), (column, version)

    def test_output_domain_is_32_bit(self, hash_seed):
        values = [f"v{i}" for i in range(200)]
        for version in kernels.HASH_VERSIONS:
            hashes = kernels.hash_strings(values, version, seed=hash_seed)
            assert int(hashes.max()) <= kernels.MAX_HASH

    def test_scalar_stable_hash_matches_column_kernel(self, hash_seed):
        values = ["", "a", "metam", "café"]
        for version in kernels.HASH_VERSIONS:
            column = kernels.hash_strings(values, version, seed=hash_seed)
            scalar = [
                kernels.stable_hash(v, version, seed=hash_seed)
                for v in values
            ]
            assert column.tolist() == scalar


class TestGoldenHashes:
    """Literal pinned values: a change to either hash family silently
    invalidates every stored signature, so these must break loudly."""

    V1_GOLDEN = {
        "": 309448485,
        "a": 3391310933,
        "metam": 2574110867,
        "café": 755221974,
        "é中\U0001f600": 1907318065,
        "x" * 1000: 3164373473,
    }
    V2_GOLDEN = {
        0: {"": 0, "a": 3299835821, "metam": 281631832, "café": 2245890220},
        1: {"": 0, "a": 913848103, "metam": 2790774127, "café": 2116416092},
        2: {"": 0, "a": 3846884741, "metam": 871735469, "café": 848138404},
    }

    def test_v1_blake2b_compatibility_pinned(self):
        for value, expected in self.V1_GOLDEN.items():
            assert reference.stable_hash_v1(value) == expected
            assert kernels.stable_hash(value, 1) == expected

    def test_v2_tabulation_pinned_across_seed_matrix(self):
        for seed, golden in self.V2_GOLDEN.items():
            for value, expected in golden.items():
                assert kernels.stable_hash(value, 2, seed=seed) == expected

    def test_tabulation_tables_pinned(self):
        import hashlib

        tables = kernels.tabulation_tables(0)
        assert tables.shape == (8, 256)
        digest = hashlib.sha256(
            np.ascontiguousarray(tables, dtype="<u8").tobytes()
        ).hexdigest()
        assert digest.startswith("f6ee748a8dd07ebe")

    def test_tables_differ_across_seeds(self):
        assert not np.array_equal(
            kernels.tabulation_tables(0), kernels.tabulation_tables(1)
        )


class TestHashVersionRegistry:
    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="hash_version"):
            kernels.check_hash_version(3)
        with pytest.raises(ValueError, match="hash_version"):
            kernels.hash_strings(["a"], hash_version=0)

    def test_registered_versions(self):
        assert kernels.HASH_VERSIONS == (1, 2)
        for version in kernels.HASH_VERSIONS:
            assert kernels.check_hash_version(version) == version
