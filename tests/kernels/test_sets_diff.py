"""Differential tests for the set-shaped kernels: distinct values,
missing counts, normalization, containment estimation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from tests.kernels.util import differential
from repro.kernels import reference

any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)
mixed_cell = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    any_float,
    st.text(max_size=12),
)


class TestDistinctStrings:
    @settings(max_examples=150, deadline=None)
    @given(cells=st.lists(st.text(max_size=12), max_size=60))
    def test_all_str_matches_reference(self, cells):
        vec, ref = differential(kernels.distinct_strings, cells)
        assert vec == ref

    @settings(max_examples=150, deadline=None)
    @given(
        cells=st.lists(
            st.one_of(st.none(), any_float), max_size=60
        )
    )
    def test_float_none_matches_reference(self, cells):
        """The numpy float64→str fast path: dragon4 shortest round-trip
        formatting must equal Python str() on every bit pattern."""
        vec, ref = differential(kernels.distinct_strings, cells)
        assert vec == ref

    @settings(max_examples=100, deadline=None)
    @given(cells=st.lists(mixed_cell, max_size=40))
    def test_mixed_type_matches_reference(self, cells):
        vec, ref = differential(kernels.distinct_strings, cells)
        assert vec == ref

    def test_adversarial_fixed_columns(self, differential):
        columns = [
            [],
            [None, None, float("nan")],
            [0.0, -0.0, float("inf"), float("-inf"), 5e-324, 1.7976e308],
            [1, 1.0, True],  # equal across types, different strings
            ["", "  ", "\t", "a"],
            ["café", "CAFÉ", "a\x00b"],
            [0, -0, 10**30],
        ]
        for cells in columns:
            vec, ref = differential(kernels.distinct_strings, cells)
            assert vec == ref, cells

    def test_million_row_float_column(self, differential):
        rng = np.random.default_rng(0)
        cells = rng.integers(0, 1 << 64, size=1_000_000, dtype=np.uint64)
        cells = cells.view(np.float64).tolist()
        vec, ref = differential(kernels.distinct_strings, cells)
        assert vec == ref


class TestCountNonMissing:
    @settings(max_examples=100, deadline=None)
    @given(cells=st.lists(mixed_cell, max_size=60))
    def test_matches_reference(self, cells):
        vec, ref = differential(kernels.count_non_missing, cells)
        assert vec == ref

    def test_unhashable_cells_fall_back(self, differential):
        cells = [[1, 2], None, "x", [1, 2]]
        vec, ref = differential(kernels.count_non_missing, cells)
        assert vec == ref == 3

    def test_missing_shapes(self, differential):
        cells = [None, float("nan"), "", "   ", "\t\n", 0, 0.0, "0"]
        vec, ref = differential(kernels.count_non_missing, cells)
        assert vec == ref == 3


class TestNormalize:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.text(max_size=16), max_size=40))
    def test_matches_reference(self, values):
        vec, ref = differential(kernels.normalize_strings, values)
        assert vec == ref

    def test_normalize_many_is_elementwise(self):
        collections = [{"A ", " b"}, set(), {"Ç", "ß"}]
        assert kernels.normalize_many(collections) == [
            reference.normalize_strings(c) for c in collections
        ]


class TestContainment:
    @settings(max_examples=150, deadline=None)
    @given(
        query=st.sets(st.text(min_size=1, max_size=8), max_size=40),
        candidate=st.sets(st.text(min_size=1, max_size=8), max_size=40),
    )
    def test_array_path_matches_set_path(self, query, candidate):
        # ``sorted_unique_array`` returns None for values outside the
        # unicode fast path (NUL bytes) — callers must keep the set.
        q_arr = kernels.sorted_unique_array(query)
        c_arr = kernels.sorted_unique_array(candidate)
        exact = reference.containment_count(query, candidate)
        assert kernels.containment_count(query, candidate) == exact
        if q_arr is not None and c_arr is not None:
            assert kernels.containment_count_arrays(q_arr, c_arr) == exact
            assert kernels.containment_count(q_arr, c_arr) == exact
        # Mixed set/array invocations agree too.
        if c_arr is not None:
            assert kernels.containment_count(query, c_arr) == exact
        if q_arr is not None:
            assert kernels.containment_count(q_arr, candidate) == exact

    def test_empty_sides(self):
        empty = kernels.sorted_unique_array([])
        some = kernels.sorted_unique_array(["a", "b"])
        assert kernels.containment_count_arrays(empty, some) == 0
        assert kernels.containment_count_arrays(some, empty) == 0

    def test_nul_values_degrade_to_reference(self, differential):
        assert kernels.sorted_unique_array(["a\x00", "b"]) is None
        vec, ref = differential(
            kernels.containment_count, {"a\x00", "b"}, {"a\x00", "c"}
        )
        assert vec == ref == 1

    def test_sorted_unique_array_shape(self):
        arr = kernels.sorted_unique_array(["b", "a", "b", "é"])
        assert arr.tolist() == ["a", "b", "é"]
