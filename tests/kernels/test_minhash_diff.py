"""Differential tests for batch MinHash signing.

The in-place Mersenne-reduction permutation and the reduceat-batched
many-column path must reproduce the reference matrix expression
``(h*a + b) mod p mod 2^32`` bit-for-bit, including the chunking
boundaries and empty-column edges.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from tests.kernels.util import differential
from repro.kernels.minhash import _CHUNK_ELEMENTS
from repro.utils.rng import ensure_rng

uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


def make_perms(num_perm: int, seed: int):
    """The exact (a, b) construction MinHasher uses."""
    rng = ensure_rng(seed)
    a = rng.integers(1, kernels.MERSENNE, size=num_perm, dtype=np.uint64)
    b = rng.integers(0, kernels.MERSENNE, size=num_perm, dtype=np.uint64)
    return a, b


class TestMinhashFromHashes:
    @settings(max_examples=150, deadline=None)
    @given(
        hashes=st.lists(uint64s, max_size=200),
        num_perm=st.sampled_from((4, 7, 64)),
        seed=st.sampled_from((0, 1, 2)),
    )
    def test_matches_reference(self, hashes, num_perm, seed):
        a, b = make_perms(num_perm, seed)
        arr = np.array(hashes, dtype=np.uint64)
        vec, ref = differential(kernels.minhash_from_hashes, arr, a, b)
        assert np.array_equal(vec, ref)
        assert vec.dtype == np.uint64

    def test_empty_input_is_max_filled(self, differential, hash_seed):
        a, b = make_perms(16, hash_seed)
        empty = np.empty(0, dtype=np.uint64)
        vec, ref = differential(kernels.minhash_from_hashes, empty, a, b)
        assert np.array_equal(vec, ref)
        assert np.all(vec == kernels.MAX_HASH)
        assert np.array_equal(kernels.empty_signature(16), vec)

    def test_uint64_extremes(self, differential, hash_seed):
        a, b = make_perms(8, hash_seed)
        extremes = np.array(
            [
                0,
                1,
                kernels.MERSENNE - 1,
                kernels.MERSENNE,
                kernels.MERSENNE + 1,
                kernels.MAX_HASH,
                (1 << 64) - 1,
            ],
            dtype=np.uint64,
        )
        vec, ref = differential(kernels.minhash_from_hashes, extremes, a, b)
        assert np.array_equal(vec, ref)

    def test_chunk_boundary_sizes(self, differential, hash_seed):
        """Sizes straddling the chunk budget so the chunked min-reduce
        path is exercised on both sides of every split."""
        num_perm = 16
        step = max(1, _CHUNK_ELEMENTS // num_perm)
        rng = np.random.default_rng(hash_seed)
        a, b = make_perms(num_perm, hash_seed)
        for size in (step - 1, step, step + 1, 2 * step + 3):
            hashes = rng.integers(0, 1 << 64, size=size, dtype=np.uint64)
            vec, ref = differential(kernels.minhash_from_hashes, hashes, a, b)
            assert np.array_equal(vec, ref), size

    def test_million_row_column(self, differential):
        """The 10^6-row adversarial case: a column far past every chunk
        boundary still matches the reference's one-shot matrix."""
        rng = np.random.default_rng(0)
        hashes = rng.integers(0, 1 << 64, size=1_000_000, dtype=np.uint64)
        a, b = make_perms(4, 0)
        vec, ref = differential(kernels.minhash_from_hashes, hashes, a, b)
        assert np.array_equal(vec, ref)


class TestMinhashMany:
    @settings(max_examples=75, deadline=None)
    @given(
        columns=st.lists(st.lists(uint64s, max_size=60), max_size=12),
        seed=st.sampled_from((0, 1, 2)),
    )
    def test_matches_per_column_reference(self, columns, seed):
        a, b = make_perms(8, seed)
        arrays = [np.array(c, dtype=np.uint64) for c in columns]
        vec, ref = differential(kernels.minhash_many, arrays, a, b)
        assert vec.shape == ref.shape == (len(columns), 8)
        assert np.array_equal(vec, ref)

    def test_rows_equal_single_column_kernel(self, hash_seed):
        a, b = make_perms(16, hash_seed)
        rng = np.random.default_rng(hash_seed)
        arrays = [
            rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
            for n in (0, 1, 5, 1000, 0, 3)
        ]
        many = kernels.minhash_many(arrays, a, b)
        for row, hashes in zip(many, arrays, strict=True):
            assert np.array_equal(
                row, kernels.minhash_from_hashes(hashes, a, b)
            )

    def test_no_columns(self, differential, hash_seed):
        a, b = make_perms(8, hash_seed)
        vec, ref = differential(kernels.minhash_many, [], a, b)
        assert vec.shape == ref.shape == (0, 8)

    def test_all_empty_columns(self, differential, hash_seed):
        a, b = make_perms(8, hash_seed)
        empties = [np.empty(0, dtype=np.uint64)] * 3
        vec, ref = differential(kernels.minhash_many, empties, a, b)
        assert np.array_equal(vec, ref)
        assert np.all(vec == kernels.MAX_HASH)

    def test_column_exceeding_group_budget(self, differential, hash_seed):
        """One column bigger than the whole chunk budget forces the
        flush-then-chunk path between grouped small columns."""
        num_perm = 8
        budget = max(1, _CHUNK_ELEMENTS // num_perm)
        rng = np.random.default_rng(hash_seed)
        arrays = [
            rng.integers(0, 1 << 64, size=3, dtype=np.uint64),
            rng.integers(0, 1 << 64, size=budget + 17, dtype=np.uint64),
            rng.integers(0, 1 << 64, size=5, dtype=np.uint64),
        ]
        a, b = make_perms(num_perm, hash_seed)
        vec, ref = differential(kernels.minhash_many, arrays, a, b)
        assert np.array_equal(vec, ref)


class TestPermuteExactness:
    def test_matches_pinned_integer_expression(self, hash_seed):
        """The kernel against the written-out integer math, not just the
        reference implementation — so both cannot drift together."""
        a, b = make_perms(4, hash_seed)
        rng = np.random.default_rng(hash_seed)
        hashes = rng.integers(0, 1 << 64, size=64, dtype=np.uint64)
        signature = kernels.minhash_from_hashes(hashes, a, b)
        mersenne, modulus = kernels.MERSENNE, kernels.MAX_HASH + 1
        for j in range(4):
            expected = min(
                ((int(h) * int(a[j]) + int(b[j])) & ((1 << 64) - 1))
                % mersenne
                % modulus
                for h in hashes.tolist()
            )
            assert int(signature[j]) == expected
