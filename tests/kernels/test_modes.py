"""Kernel mode dispatch: env parsing, runtime forcing, cache gating."""

import subprocess
import sys

import pytest

from repro import kernels


class TestModeControls:
    def test_default_mode_is_vectorized(self):
        assert kernels.active_mode() in kernels.KERNEL_MODES

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel mode"):
            kernels.set_mode("simd")

    def test_force_mode_restores_on_exit(self):
        before = kernels.active_mode()
        with kernels.force_mode("reference"):
            assert kernels.active_mode() == "reference"
        assert kernels.active_mode() == before

    def test_force_mode_restores_on_error(self):
        before = kernels.active_mode()
        with pytest.raises(RuntimeError):
            with kernels.force_mode("reference"):
                raise RuntimeError("boom")
        assert kernels.active_mode() == before

    def test_caching_disabled_in_reference_mode(self):
        with kernels.force_mode("reference"):
            assert not kernels.caching_enabled()
        with kernels.force_mode("vectorized"):
            assert kernels.caching_enabled()


class TestEnvironmentSelection:
    @staticmethod
    def _mode_under_env(value):
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        code = "import repro.kernels as k; print(k.active_mode())"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(root, "src"),
                "REPRO_KERNELS": value,
            },
            check=True,
        )
        return out.stdout.strip()

    def test_env_reference(self):
        assert self._mode_under_env("reference") == "reference"

    def test_env_case_and_whitespace_tolerant(self):
        assert self._mode_under_env("  Reference ") == "reference"

    def test_env_unknown_falls_back_to_vectorized(self):
        assert self._mode_under_env("turbo") == "vectorized"
