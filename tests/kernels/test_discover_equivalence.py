"""Seed-matrix equivalence gate for the end-to-end pipeline.

``discover()`` must produce byte-identical results whether the library
runs on the vectorized kernels or the scalar reference — across a
matrix of seeds, so no single RNG stream can mask a divergence.  This
is the whole-pipeline backstop over the per-kernel differential tests:
any exactness break in hashing, signing, profiling, or candidate
scoring surfaces here as a changed selection or utility.
"""

import numpy as np
import pytest

from repro import kernels
from repro.api import DiscoveryEngine, DiscoveryRequest
from repro.core.config import MetamConfig
from repro.data import clustering_scenario

SEED_MATRIX = (0, 1, 2)


@pytest.fixture(scope="module")
def scenario():
    return clustering_scenario(seed=0)


def run_pipeline(scenario, seed, mode):
    """One full prepare + discover in a fresh engine under ``mode``."""
    with kernels.force_mode(mode):
        engine = DiscoveryEngine(corpus=scenario.corpus)
        run = engine.discover(
            DiscoveryRequest(
                base=scenario.base,
                task=scenario.task,
                searcher="metam",
                config=MetamConfig(
                    theta=0.6, query_budget=25, epsilon=0.1, seed=seed
                ),
            )
        )
    assert run.completed
    return run


@pytest.mark.parametrize("seed", SEED_MATRIX)
def test_discover_identical_across_kernel_modes(scenario, seed):
    vectorized = run_pipeline(scenario, seed, "vectorized")
    reference = run_pipeline(scenario, seed, "reference")

    assert vectorized.selected == reference.selected
    assert vectorized.result.utility == reference.result.utility
    assert vectorized.result.base_utility == reference.result.base_utility
    assert vectorized.result.queries == reference.result.queries
    assert vectorized.result.trace == reference.result.trace
    assert vectorized.n_candidates == reference.n_candidates


@pytest.mark.parametrize("seed", SEED_MATRIX)
def test_prepared_candidates_identical(scenario, seed):
    def prepare(mode):
        with kernels.force_mode(mode):
            engine = DiscoveryEngine(corpus=scenario.corpus)
            return engine.prepare(scenario.base, seed=seed)

    vectorized = prepare("vectorized")
    reference = prepare("reference")
    assert len(vectorized) == len(reference)
    for vec, ref in zip(vectorized, reference, strict=True):
        assert vec.aug_id == ref.aug_id
        assert vec.overlap == ref.overlap
        assert vec.values == ref.values
        assert np.array_equal(
            vec.profile_vector, ref.profile_vector, equal_nan=True
        )


def test_signatures_identical_across_modes_seed_matrix():
    """Index-level signatures (what artifacts persist) match across
    modes for every seed and both hash versions."""
    from repro.discovery import MinHasher

    value_sets = [
        set(),
        {"a", "b", "c"},
        {str(v) for v in range(100)},
        {"café", "", " ", "x" * 200},
    ]
    for seed in SEED_MATRIX:
        for hash_version in kernels.HASH_VERSIONS:
            with kernels.force_mode("vectorized"):
                hasher = MinHasher(64, seed=seed, hash_version=hash_version)
                vec = [hasher.signature(s) for s in value_sets]
                vec_batch = hasher.signatures(value_sets)
            with kernels.force_mode("reference"):
                hasher = MinHasher(64, seed=seed, hash_version=hash_version)
                ref = [hasher.signature(s) for s in value_sets]
            for one, batch_row, other in zip(vec, vec_batch, ref, strict=True):
                assert np.array_equal(one, other)
                assert np.array_equal(batch_row, other)
